"""Solver fallback chains: degrade MIP → LP → approx → greedy under deadlines.

A production control plane cannot block a request on a branch-and-bound
solve that may take minutes.  :class:`FallbackChain` wraps an ordered
list of schedulers (fastest-to-worst-quality last) and runs each under a
wall-clock deadline with bounded retries:

* a tier that **times out** moves straight to the next tier (repeating a
  deterministic solve against the same deadline would waste the budget);
* a tier that raises a :class:`~repro.utils.errors.ReproError` is
  retried up to ``retries`` times with exponential backoff, then skipped;
* the first tier that returns a schedule serves the request, and the
  served tier is recorded in telemetry
  (``fallback_served_total{tier=...}``) and in the returned
  :class:`~repro.algorithms.base.SolveInfo`;
* if every tier is exhausted, :class:`FallbackExhaustedError` is raised —
  the server's admission layer converts that into a 503.

Deadlines are enforced by running the solve in a daemon worker thread and
abandoning it on timeout (pure-Python solvers cannot be interrupted);
the orphaned thread finishes in the background and its result is
discarded.  Schedulers that support a cooperative limit (the MIP's
``time_limit``) should additionally be constructed with one so abandoned
work is bounded.

Every deadline miss bumps the uniform ``solver_timeouts_total{solver=...}``
counter — one timeout metric for all tiers, whether or not the underlying
solver has its own internal limit accounting (the MIP's
``mip_timeouts_total`` keeps counting cooperative in-solver limit hits).
"""

from __future__ import annotations

import contextvars
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..telemetry import get_collector
from ..utils.errors import FallbackExhaustedError, ReproError, SolverTimeoutError
from ..utils.validation import check_positive, require

__all__ = ["FallbackTier", "FallbackChain", "run_with_deadline", "DEFAULT_TIERS"]

#: Tier names of :meth:`FallbackChain.default`, best quality first.
DEFAULT_TIERS: Tuple[str, ...] = ("mip", "lp", "approx", "greedy-energy")


def run_with_deadline(fn, deadline_seconds: Optional[float], *, solver: str = "solver"):
    """Run ``fn()`` under a wall-clock deadline; returns its result.

    Executes ``fn`` in a daemon thread under a *copy* of the caller's
    context (``contextvars.copy_context``), so the active telemetry
    collector, trace id and open-span chain all carry across the thread
    hop — spans opened by the solver keep their parent links and trace
    id.  On timeout the worker is abandoned, the uniform
    ``solver_timeouts_total{solver=...}`` counter is bumped and
    :class:`SolverTimeoutError` is raised.  Exceptions raised by ``fn``
    propagate to the caller unchanged.  ``deadline_seconds=None`` runs
    inline with no deadline.
    """
    if deadline_seconds is None:
        return fn()
    check_positive(deadline_seconds, "deadline_seconds")
    context = contextvars.copy_context()
    outcome: dict = {}
    done = threading.Event()

    def worker() -> None:
        try:
            outcome["result"] = context.run(fn)
        except BaseException as exc:  # noqa: BLE001 — relayed to the caller
            outcome["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(target=worker, name=f"repro-solve-{solver}", daemon=True)
    thread.start()
    if not done.wait(deadline_seconds):
        get_collector().counter("solver_timeouts_total", solver=solver).inc()
        raise SolverTimeoutError(
            f"solver {solver!r} exceeded its {deadline_seconds:g}s deadline"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


@dataclass(frozen=True)
class FallbackTier:
    """One rung of a fallback chain.

    ``deadline_seconds`` overrides the chain-wide deadline for this tier
    (``None`` inherits it); ``retries`` is the number of *extra* attempts
    after a :class:`ReproError` failure (timeouts are never retried).
    """

    name: str
    scheduler: Scheduler
    deadline_seconds: Optional[float] = None
    retries: int = 0

    def __post_init__(self) -> None:
        require(self.retries >= 0, f"retries must be >= 0, got {self.retries}")
        if self.deadline_seconds is not None:
            check_positive(self.deadline_seconds, "deadline_seconds")


class FallbackChain(Scheduler):
    """Scheduler that degrades through a chain of tiers under deadlines.

    Parameters
    ----------
    tiers:
        Ordered schedulers (or :class:`FallbackTier`, or ``(name,
        scheduler)`` pairs), best quality first.  Plain schedulers get
        the chain-wide ``deadline_seconds``/``retries``.
    deadline_seconds:
        Wall-clock deadline applied to each tier without its own
        override; ``None`` disables deadlines (tiers then only advance on
        solver errors).
    retries:
        Default extra attempts per tier after a ``ReproError`` failure.
    backoff_seconds:
        Initial sleep before a retry; doubles per extra attempt.
    """

    name = "FALLBACK-CHAIN"

    def __init__(
        self,
        tiers: Sequence[Union[Scheduler, FallbackTier, Tuple[str, Scheduler]]],
        *,
        deadline_seconds: Optional[float] = None,
        retries: int = 0,
        backoff_seconds: float = 0.05,
    ):
        require(len(tiers) >= 1, "a fallback chain needs at least one tier")
        require(retries >= 0, f"retries must be >= 0, got {retries}")
        require(backoff_seconds >= 0, f"backoff_seconds must be >= 0, got {backoff_seconds}")
        if deadline_seconds is not None:
            check_positive(deadline_seconds, "deadline_seconds")
        normalised: List[FallbackTier] = []
        for tier in tiers:
            if isinstance(tier, FallbackTier):
                normalised.append(tier)
            elif isinstance(tier, Scheduler):
                normalised.append(FallbackTier(tier.name.lower(), tier, retries=retries))
            else:
                tier_name, scheduler = tier
                normalised.append(FallbackTier(str(tier_name), scheduler, retries=retries))
        names = [t.name for t in normalised]
        require(len(names) == len(set(names)), f"tier names must be unique, got {names}")
        self.tiers: Tuple[FallbackTier, ...] = tuple(normalised)
        self.deadline_seconds = deadline_seconds
        self.retries = int(retries)
        self.backoff_seconds = float(backoff_seconds)
        self.name = "FALLBACK(" + "→".join(names) + ")"

    @classmethod
    def default(
        cls,
        *,
        deadline_seconds: Optional[float] = None,
        retries: int = 0,
        first: Optional[str] = None,
    ) -> "FallbackChain":
        """The canonical MIP → LP → approx → greedy degradation ladder.

        ``first`` pins a different scheduler name to the front (the rest
        of the ladder follows, minus duplicates) — the shape the CLI's
        ``--fallback`` flag builds around ``--scheduler``.  When a
        deadline is set, the MIP tier is built with a matching
        cooperative ``time_limit`` so abandoned solves stop on their own.
        """
        from ..algorithms.registry import make_scheduler

        names = list(DEFAULT_TIERS)
        if first is not None:
            key = first.lower()
            names = [key] + [n for n in names if n != key]
        tiers = []
        for tier_name in names:
            kwargs = {}
            if tier_name == "mip" and deadline_seconds is not None:
                kwargs["time_limit"] = deadline_seconds
            tiers.append(FallbackTier(tier_name, make_scheduler(tier_name, **kwargs), retries=retries))
        return cls(tiers, deadline_seconds=deadline_seconds, retries=retries)

    # -- solving ---------------------------------------------------------------

    def solve(self, instance: ProblemInstance) -> Schedule:
        return self.solve_with_info(instance).schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        """Try each tier in order; returns the first tier's result that lands.

        The returned info records the served tier (``extra["tier"]`` /
        ``extra["tier_index"]``), total attempts, and per-tier failure
        reasons for the tiers that were skipped.
        """
        tele = get_collector()
        attempts = 0
        skipped: List[dict] = []
        start = time.perf_counter()
        with tele.span("fallback.solve"):
            for index, tier in enumerate(self.tiers):
                deadline = tier.deadline_seconds if tier.deadline_seconds is not None else self.deadline_seconds
                attempt_budget = 1 + tier.retries
                for attempt in range(attempt_budget):
                    attempts += 1
                    tele.counter("fallback_attempts_total", tier=tier.name).inc()
                    try:
                        with tele.span("fallback.tier", tier=tier.name):
                            result = run_with_deadline(
                                # Bind the tier now: on a timeout the worker
                                # thread outlives this loop iteration.
                                lambda t=tier: t.scheduler.solve_with_info(instance),
                                deadline,
                                solver=tier.name,
                            )
                    except SolverTimeoutError as exc:
                        # counted by run_with_deadline; a rerun would hit
                        # the same wall — move straight down the ladder.
                        skipped.append({"tier": tier.name, "reason": "timeout", "detail": str(exc)})
                        break
                    except ReproError as exc:
                        tele.counter("solver_failures_total", solver=tier.name).inc()
                        if attempt + 1 < attempt_budget:
                            tele.counter("solver_retries_total", solver=tier.name).inc()
                            time.sleep(self.backoff_seconds * (2**attempt))
                            continue
                        skipped.append({"tier": tier.name, "reason": "error", "detail": str(exc)})
                        break
                    else:
                        if index > 0:
                            tele.counter("fallback_degraded_total").inc()
                        tele.counter("fallback_served_total", tier=tier.name).inc()
                        info = SolveInfo(
                            solver=self.name,
                            optimal=result.info.optimal,
                            status=result.info.status,
                            runtime_seconds=time.perf_counter() - start,
                            extra={
                                **result.info.extra,
                                "tier": tier.name,
                                "tier_index": index,
                                "tier_solver": result.info.solver,
                                "attempts": attempts,
                                "skipped": skipped,
                            },
                        )
                        return SolveResult(result.schedule, info)
        tele.counter("fallback_exhausted_total").inc()
        reasons = ", ".join(f"{s['tier']}: {s['reason']}" for s in skipped)
        raise FallbackExhaustedError(
            f"all {len(self.tiers)} fallback tiers failed after {attempts} attempt(s) ({reasons})"
        )
