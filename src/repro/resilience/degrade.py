"""Graceful degradation under energy pressure: compress harder, then shed.

When realised energy spend runs ahead of plan (slowdowns stretch busy
time, replans burn budget, traffic bursts), a serving system should not
fail whole windows — it should *degrade*: compressible inference tasks
can simply be compressed harder (tightened per-task work caps), and only
under extreme pressure should the lowest-value tasks be shed.

:class:`DegradationPolicy` encodes that as budget-fraction watermarks::

    policy = DegradationPolicy((
        Watermark(0.70, work_cap_scale=0.75),
        Watermark(0.85, work_cap_scale=0.50),
        Watermark(0.95, work_cap_scale=0.35, shed_fraction=0.25),
    ))
    degraded = policy.apply(instance, spent_fraction=0.9)

Crossing a watermark truncates every task's accuracy curve at
``work_cap_scale × f_max`` — the scheduler then cannot spend more than
the cap on any task, i.e. every task runs a harder-compressed model.
The deepest watermark may also set ``shed_fraction``: that fraction of
tasks (lowest marginal accuracy per FLOP first, i.e. smallest θ) is
dropped from the instance entirely.  At least one task always survives —
degradation never sheds the whole window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.accuracy import PiecewiseLinearAccuracy
from ..core.instance import ProblemInstance
from ..core.task import Task, TaskSet
from ..telemetry import get_collector
from ..utils.validation import check_fraction, require

__all__ = ["Watermark", "DegradeDecision", "DegradationPolicy", "truncate_accuracy", "expand_times"]


def truncate_accuracy(acc: PiecewiseLinearAccuracy, cap_flops: float) -> PiecewiseLinearAccuracy:
    """Cap an accuracy curve at ``cap_flops`` of work.

    The truncated curve agrees with ``acc`` on ``[0, cap]`` and ends
    there, so a scheduler consuming it cannot allocate more than ``cap``
    FLOP to the task.  A cap at or beyond ``f_max`` returns the curve
    unchanged.
    """
    require(cap_flops > 0, f"cap_flops must be > 0, got {cap_flops}")
    if cap_flops >= acc.f_max:
        return acc
    keep = acc.breakpoints < cap_flops * (1.0 - 1e-12)
    points = np.concatenate([acc.breakpoints[keep], [cap_flops]])
    values = np.concatenate([acc.breakpoint_accuracies[keep], [acc.value(cap_flops)]])
    return PiecewiseLinearAccuracy(points, values)


@dataclass(frozen=True)
class Watermark:
    """One degradation level, active from ``budget_fraction`` spend on."""

    budget_fraction: float  #: activates when spent/total >= this
    work_cap_scale: float  #: per-task work caps become scale × f_max
    shed_fraction: float = 0.0  #: fraction of tasks to shed (lowest θ first)

    def __post_init__(self) -> None:
        check_fraction(self.budget_fraction, "budget_fraction")
        require(0.0 < self.work_cap_scale <= 1.0, f"work_cap_scale must lie in (0, 1], got {self.work_cap_scale}")
        require(0.0 <= self.shed_fraction < 1.0, f"shed_fraction must lie in [0, 1), got {self.shed_fraction}")

    def to_dict(self) -> dict:
        """JSON-ready form (journaled by repro.durability)."""
        return {
            "budget_fraction": self.budget_fraction,
            "work_cap_scale": self.work_cap_scale,
            "shed_fraction": self.shed_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Watermark":
        return cls(
            budget_fraction=float(data["budget_fraction"]),
            work_cap_scale=float(data["work_cap_scale"]),
            shed_fraction=float(data.get("shed_fraction", 0.0)),
        )


@dataclass(frozen=True)
class DegradeDecision:
    """What a policy did to one instance."""

    instance: ProblemInstance
    kept: np.ndarray  #: original task indices surviving in ``instance``
    level: int  #: watermark index applied (−1: no degradation)
    work_cap_scale: float
    shed: Tuple[int, ...]  #: original task indices shed

    @property
    def degraded(self) -> bool:
        return self.level >= 0


class DegradationPolicy:
    """Budget-watermark ladder mapping energy pressure to instance edits."""

    def __init__(self, watermarks: Sequence[Watermark]):
        marks = sorted(watermarks, key=lambda w: w.budget_fraction)
        fractions = [w.budget_fraction for w in marks]
        require(len(fractions) == len(set(fractions)), "watermark budget fractions must be distinct")
        self.watermarks: Tuple[Watermark, ...] = tuple(marks)

    @classmethod
    def default(cls) -> "DegradationPolicy":
        """Compress at 70 %, harder at 85 %, shed a quarter at 95 %."""
        return cls(
            (
                Watermark(0.70, work_cap_scale=0.75),
                Watermark(0.85, work_cap_scale=0.50),
                Watermark(0.95, work_cap_scale=0.35, shed_fraction=0.25),
            )
        )

    def to_dict(self) -> dict:
        """JSON-ready form, so a restarted run can restore the policy."""
        return {"watermarks": [w.to_dict() for w in self.watermarks]}

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationPolicy":
        return cls(tuple(Watermark.from_dict(w) for w in data["watermarks"]))

    def level_for(self, spent_fraction: float) -> int:
        """Deepest watermark index active at this spend fraction (−1: none)."""
        level = -1
        for i, mark in enumerate(self.watermarks):
            if spent_fraction >= mark.budget_fraction:
                level = i
        return level

    def apply(self, instance: ProblemInstance, spent_fraction: float) -> DegradeDecision:
        """Degrade ``instance`` for the current energy pressure.

        Returns the (possibly) transformed instance plus the task-index
        bookkeeping needed to map a schedule of the degraded instance
        back onto the original task list (:func:`expand_times`).
        """
        n = instance.n_tasks
        level = self.level_for(spent_fraction)
        if level < 0:
            return DegradeDecision(instance, np.arange(n), -1, 1.0, ())
        mark = self.watermarks[level]
        tele = get_collector()
        tele.counter("degrade_applied_total", level=str(level)).inc()

        kept = np.arange(n)
        shed: Tuple[int, ...] = ()
        if mark.shed_fraction > 0.0 and n > 1:
            n_shed = min(int(mark.shed_fraction * n), n - 1)
            if n_shed > 0:
                thetas = np.array([t.efficiency_theta for t in instance.tasks])
                # Lowest marginal accuracy per FLOP goes first; ties break
                # on the later deadline (more slack to give up).
                order = np.lexsort((-instance.tasks.deadlines, thetas))
                shed = tuple(sorted(int(j) for j in order[:n_shed]))
                kept = np.array([j for j in range(n) if j not in set(shed)])
                tele.counter("degrade_shed_tasks_total").add(n_shed)

        tasks: List[Task] = []
        for j in kept:
            task = instance.tasks[int(j)]
            acc = truncate_accuracy(task.accuracy, mark.work_cap_scale * task.f_max)
            tasks.append(Task(deadline=task.deadline, accuracy=acc, name=task.name))
        degraded = ProblemInstance(
            TaskSet(tasks, assume_sorted=True), instance.cluster, instance.budget
        )
        return DegradeDecision(degraded, kept, level, mark.work_cap_scale, shed)


def expand_times(times: np.ndarray, kept: np.ndarray, n_total: int) -> np.ndarray:
    """Lift a degraded instance's ``t_jr`` back to the full task list.

    Rows of shed tasks are zero — they received no work.
    """
    times = np.asarray(times, dtype=float)
    out = np.zeros((n_total, times.shape[1]))
    out[np.asarray(kept, dtype=int)] = times
    return out
