"""Server-side admission control: bounded concurrency and a circuit breaker.

The HTTP scheduling service must protect itself the way any serving tier
does:

* **bounded in-flight solves** — each ``/solve`` takes a slot from a
  fixed pool; with the pool exhausted the request is rejected up front
  (HTTP 503 + ``Retry-After``) instead of queueing unboundedly behind
  slow solves;
* a **circuit breaker** — consecutive solver failures (timeouts,
  exhausted fallback chains, backend errors) trip the breaker *open*;
  while open, requests are rejected immediately without touching the
  solvers.  After ``reset_seconds`` one probe request is let through
  (*half-open*): success closes the breaker, failure re-opens it.

:class:`AdmissionController` bundles both; the server calls
:meth:`~AdmissionController.try_begin` before solving and
:meth:`~AdmissionController.finish` after.  The clock is injectable so
breaker timing is testable without sleeping.

Threading model
---------------

Both classes are called concurrently from the HTTP server's handler
threads (``ThreadingHTTPServer``).  Each protects its own state with a
single internal lock; no method holds both locks at once, so there is no
lock-ordering hazard between controller and breaker.  The admission
protocol is strict: an *admitted* ``try_begin`` must be paired with
exactly one ``finish``; a *rejected* one must not call ``finish``.  The
one cross-object subtlety is the half-open probe: ``try_begin`` may
consume the breaker's single probe slot via :meth:`CircuitBreaker.allow`
and then reject on capacity — it must hand the probe back
(:meth:`CircuitBreaker.cancel_probe`), otherwise no request would ever
reach a solver again and the breaker could never close.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..telemetry import get_collector
from ..utils.validation import check_positive, require

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "AdmissionDecision",
    "AdmissionController",
    "LoadSignal",
]

#: A pluggable load signal consulted on every admission attempt.  Called
#: with the request's priority class (or None); returns ``None`` to
#: admit, or ``(reason, retry_after_seconds)`` to reject.  This is how
#: the cluster front-end plugs its adaptive queue-delay controller into
#: the same admission object the plain HTTP server uses — the static
#: in-flight bound stays as a backstop, the signal supplies the
#: closed-loop part.
LoadSignal = Callable[[Optional[str]], Optional[Tuple[str, float]]]


class BreakerState:
    """Breaker state names (plain strings, compared by identity)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a reset probe.

    Thread-safe; ``clock`` defaults to :func:`time.monotonic` and is
    injectable for tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        require(failure_threshold >= 1, f"failure_threshold must be >= 1, got {failure_threshold}")
        check_positive(reset_seconds, "reset_seconds")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False

    @property
    def state(self) -> str:
        """Current state, with open → half-open promotion applied."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == BreakerState.OPEN and self._clock() - self._opened_at >= self.reset_seconds:
            self._state = BreakerState.HALF_OPEN
            self._probe_outstanding = False
        return self._state

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        In half-open state only the first caller gets through (the
        probe); further callers are rejected until the probe's verdict
        arrives via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            state = self._state_locked()
            if state == BreakerState.CLOSED:
                return True
            if state == BreakerState.HALF_OPEN and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def cancel_probe(self) -> None:
        """Return an unused half-open probe.

        For callers that took the probe via :meth:`allow` but then
        rejected the request downstream (e.g. on capacity) without ever
        running it: the probe produced no verdict, so the next request
        must be allowed to try again.
        """
        with self._lock:
            if self._state == BreakerState.HALF_OPEN:
                self._probe_outstanding = False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._state = BreakerState.CLOSED
            self._probe_outstanding = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            was_probing = self._state != BreakerState.CLOSED
            if was_probing or self._consecutive_failures >= self.failure_threshold:
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self._probe_outstanding = False
                get_collector().counter("breaker_opened_total").inc()

    def retry_after(self) -> float:
        """Seconds until the next probe would be admitted (>= 0)."""
        with self._lock:
            if self._state != BreakerState.OPEN:
                return 0.0
            return max(self.reset_seconds - (self._clock() - self._opened_at), 0.0)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = "ok"  #: "ok" | "capacity" | "breaker_open"
    retry_after_seconds: float = 0.0


class AdmissionController:
    """Bounded in-flight solves plus a circuit breaker, for the server."""

    def __init__(
        self,
        *,
        max_in_flight: int = 8,
        breaker: Optional[CircuitBreaker] = None,
        retry_after_seconds: float = 1.0,
        load_signal: Optional[LoadSignal] = None,
    ):
        require(max_in_flight >= 1, f"max_in_flight must be >= 1, got {max_in_flight}")
        check_positive(retry_after_seconds, "retry_after_seconds")
        self.max_in_flight = int(max_in_flight)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.retry_after_seconds = float(retry_after_seconds)
        self.load_signal = load_signal
        self._lock = threading.Lock()
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def try_begin(self, *, priority: Optional[str] = None) -> AdmissionDecision:
        """Claim a solve slot; a rejected request must NOT call finish()."""
        tele = get_collector()
        if not self.breaker.allow():
            tele.counter("admission_rejected_total", reason="breaker_open").inc()
            return AdmissionDecision(
                admitted=False,
                reason="breaker_open",
                retry_after_seconds=max(math.ceil(self.breaker.retry_after()), 1),
            )
        if self.load_signal is not None:
            verdict = self.load_signal(priority)
            if verdict is not None:
                reason, retry_after = verdict
                # The breaker probe (if we took it) never ran: hand it back.
                self.breaker.cancel_probe()
                tele.counter("admission_rejected_total", reason=reason).inc()
                return AdmissionDecision(
                    admitted=False,
                    reason=reason,
                    retry_after_seconds=float(retry_after),
                )
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                rejected = True
            else:
                rejected = False
                self._in_flight += 1
                tele.gauge("server_in_flight_solves").set(self._in_flight)
        if rejected:
            # allow() may have consumed the half-open probe; this request
            # never ran, so hand the probe back or the breaker jams.
            self.breaker.cancel_probe()
            tele.counter("admission_rejected_total", reason="capacity").inc()
            return AdmissionDecision(
                admitted=False,
                reason="capacity",
                retry_after_seconds=self.retry_after_seconds,
            )
        return AdmissionDecision(admitted=True)

    def finish(self, *, failure: bool = False) -> None:
        """Release the slot claimed by a successful try_begin()."""
        with self._lock:
            self._in_flight = max(self._in_flight - 1, 0)
            get_collector().gauge("server_in_flight_solves").set(self._in_flight)
        if failure:
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
