"""Fault-tolerant serving: fallback chains, replanning, degradation, admission.

The paper's schedules assume machines never fail and solvers always
return in time.  This subsystem gives the runtime paths a resilience
layer:

* :mod:`~repro.resilience.fallback` — :class:`FallbackChain` runs
  solvers under wall-clock deadlines and degrades MIP → LP → approx →
  greedy on timeout or error, recording the served tier in telemetry;
* :mod:`~repro.resilience.replan` — :func:`replay_with_replanning`
  re-batches unfinished work onto surviving machines against the
  remaining energy budget when an outage or slowdown strikes mid-plan;
* :mod:`~repro.resilience.degrade` — :class:`DegradationPolicy` maps
  energy pressure (budget-fraction watermarks) to tightened per-task
  work caps and, in extremis, shedding of the lowest-θ tasks;
* :mod:`~repro.resilience.admission` — :class:`AdmissionController`
  bounds the server's in-flight solves and trips a circuit breaker
  (503 + ``Retry-After``) when the fallback chain keeps failing.
"""

from .admission import AdmissionController, AdmissionDecision, BreakerState, CircuitBreaker
from .degrade import (
    DegradationPolicy,
    DegradeDecision,
    Watermark,
    expand_times,
    truncate_accuracy,
)
from .fallback import DEFAULT_TIERS, FallbackChain, FallbackTier, run_with_deadline
from .replan import (
    ReplanComparison,
    ReplanReport,
    compare_replanning,
    replay_with_replanning,
    residual_accuracy,
)

__all__ = [
    "FallbackChain",
    "FallbackTier",
    "DEFAULT_TIERS",
    "run_with_deadline",
    "ReplanReport",
    "ReplanComparison",
    "replay_with_replanning",
    "compare_replanning",
    "residual_accuracy",
    "Watermark",
    "DegradationPolicy",
    "DegradeDecision",
    "truncate_accuracy",
    "expand_times",
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "BreakerState",
]
