"""Failure-aware replanning: re-batch unfinished work onto survivors.

:func:`~repro.simulator.failures.replay_with_failures` measures what a
*stale* plan loses to an outage — the dead machine's queue simply never
runs.  A production scheduler replans instead: at each failure event the
remaining work is re-batched as a fresh DSCT-EA instance over the
surviving machines against the *remaining* energy budget, and execution
continues from the new plan.

:func:`replay_with_replanning` implements that loop on the replay
substrate:

* execution advances machine queues (back-to-back, EDF order, exactly
  the :func:`replay_with_failures` semantics) up to the next failure
  event;
* an **outage** kills the machine: the share in flight is truncated with
  partial credit, the rest of its queue becomes *disrupted* work;
* a **slowdown** rescales the machine's speed from the event on;
* with ``replan=True`` every event triggers a global preemptive replan:
  each unfinished task whose deadline has not passed re-enters a
  *residual* instance — its accuracy curve shifted by the work already
  credited, its deadline reduced by the current time, the cluster
  reduced to survivors at their effective (slowed) speeds, and the
  budget reduced to what the original budget has left — which the
  scheduler solves to produce the new queues.

The report credits work across all plan generations, so the realised
accuracy of a replanned run is directly comparable to the stale replay
on the same instance and failure model (:func:`compare_replanning`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import Scheduler
from ..core.accuracy import PiecewiseLinearAccuracy
from ..core.instance import ProblemInstance
from ..core.machine import Cluster, Machine
from ..core.schedule import Schedule
from ..core.task import Task, TaskSet
from ..simulator.failures import FailureModel, FailureReport, Outage, replay_with_failures
from ..telemetry import get_collector
from ..utils.errors import ReproError
from ..utils.validation import require

__all__ = [
    "ReplanReport",
    "ReplanComparison",
    "replay_with_replanning",
    "compare_replanning",
    "residual_accuracy",
]

#: Deadlines with less slack than this are not worth replanning for.
_MIN_RESIDUAL_DEADLINE = 1e-6
#: Residual work below this many FLOP is treated as already complete.
_MIN_RESIDUAL_WORK = 1e-6


def residual_accuracy(acc: PiecewiseLinearAccuracy, f_done: float) -> Optional[PiecewiseLinearAccuracy]:
    """The accuracy curve of a task that already received ``f_done`` FLOP.

    ``a~(g) = a(f_done + g)`` — the original concave curve shifted left,
    starting at the accuracy already achieved.  Returns ``None`` when the
    task is (numerically) complete, i.e. no residual work remains.
    """
    require(f_done >= 0, f"f_done must be >= 0, got {f_done}")
    if f_done <= 0.0:
        return acc
    remaining = acc.f_max - f_done
    if remaining <= _MIN_RESIDUAL_WORK:
        return None
    keep = acc.breakpoints > f_done + _MIN_RESIDUAL_WORK
    points = np.concatenate([[0.0], acc.breakpoints[keep] - f_done])
    values = np.concatenate([[acc.value(f_done)], acc.breakpoint_accuracies[keep]])
    return PiecewiseLinearAccuracy(points, values)


@dataclass
class _MachineState:
    """Execution state of one machine between failure events."""

    queue: List[Tuple[int, float]] = field(default_factory=list)  # (task, remaining FLOP)
    clock: float = 0.0
    factor: float = 1.0  # slowdown speed multiplier
    alive: bool = True


@dataclass(frozen=True)
class ReplanReport:
    """Realised outcome of a (re)planned execution under failures."""

    task_flops: np.ndarray
    task_accuracies: np.ndarray
    task_completion: np.ndarray
    machine_busy: np.ndarray
    energy: float
    deadline_misses: tuple
    disrupted_tasks: tuple  #: tasks whose queued work an outage destroyed
    n_replans: int
    dead_machines: tuple

    @property
    def mean_accuracy(self) -> float:
        return float(self.task_accuracies.mean())

    @property
    def total_accuracy(self) -> float:
        return float(self.task_accuracies.sum())


@dataclass(frozen=True)
class ReplanComparison:
    """Stale-plan replay vs. failure-aware replanning on one scenario."""

    stale: FailureReport
    replanned: ReplanReport
    nominal_accuracy: float  #: total accuracy of the failure-free plan

    @property
    def accuracy_recovered(self) -> float:
        """Total accuracy the replan won back over the stale plan."""
        return self.replanned.total_accuracy - self.stale.total_accuracy

    @property
    def stale_retention(self) -> float:
        """Stale realised / nominal total accuracy."""
        return self.stale.total_accuracy / max(self.nominal_accuracy, 1e-12)

    @property
    def replanned_retention(self) -> float:
        """Replanned realised / nominal total accuracy."""
        return self.replanned.total_accuracy / max(self.nominal_accuracy, 1e-12)


def _advance(
    state: _MachineState,
    r: int,
    until: float,
    speeds: np.ndarray,
    flops: np.ndarray,
    busy: np.ndarray,
    completion: np.ndarray,
) -> None:
    """Run machine ``r``'s queue forward to time ``until`` (inclusive)."""
    if not state.alive:
        return
    while state.queue and state.clock < until - 1e-15:
        j, work = state.queue[0]
        speed = speeds[r] * state.factor
        duration = work / speed
        if state.clock + duration <= until + 1e-15:
            state.clock += duration
            flops[j] += work
            busy[r] += duration
            completion[j] = max(completion[j], state.clock)
            state.queue.pop(0)
        else:
            done_wall = until - state.clock
            done_work = done_wall * speed
            flops[j] += done_work
            busy[r] += done_wall
            completion[j] = max(completion[j], until)
            state.queue[0] = (j, work - done_work)
            state.clock = until


def _queues_from_schedule(schedule: Schedule, speeds: np.ndarray) -> List[List[Tuple[int, float]]]:
    times = schedule.times
    n, m = times.shape
    queues: List[List[Tuple[int, float]]] = []
    for r in range(m):
        queues.append([(j, float(times[j, r]) * float(speeds[r])) for j in range(n) if times[j, r] > 0.0])
    return queues


def replay_with_replanning(
    instance: ProblemInstance,
    scheduler: Scheduler,
    failures: FailureModel,
    *,
    replan: bool = True,
    schedule: Optional[Schedule] = None,
) -> ReplanReport:
    """Execute a plan under failures, replanning survivors at each event.

    ``scheduler`` produces both the initial plan (unless ``schedule`` is
    given) and every replan — pass a
    :class:`~repro.resilience.fallback.FallbackChain` to bound replan
    latency.  With ``replan=False`` the stale plan runs to the end
    (matching :func:`replay_with_failures` semantics), which is the
    baseline the headline experiment compares against.
    """
    n, m = instance.n_tasks, instance.n_machines
    for o in failures.outages:
        require(0 <= o.machine < m, f"outage references machine {o.machine} (m = {m})")
    for s in failures.slowdowns:
        require(0 <= s.machine < m, f"slowdown references machine {s.machine} (m = {m})")

    tele = get_collector()
    if schedule is None:
        schedule = scheduler.solve(instance)
    speeds = instance.cluster.speeds
    powers = instance.cluster.powers
    deadlines = instance.tasks.deadlines

    flops = np.zeros(n)
    completion = np.zeros(n)
    busy = np.zeros(m)
    disrupted: set = set()
    dead: List[int] = []
    n_replans = 0

    states = [_MachineState(queue=q) for q in _queues_from_schedule(schedule, speeds)]

    def advance_all(until: float) -> None:
        for r, state in enumerate(states):
            _advance(state, r, until, speeds, flops, busy, completion)

    with tele.span("replan.replay"):
        for event in failures.events():
            advance_all(event.at)
            if isinstance(event, Outage):
                state = states[event.machine]
                if state.alive:
                    state.alive = False
                    dead.append(event.machine)
                    disrupted.update(j for j, _ in state.queue)
                    state.queue.clear()
                    tele.counter("replan_outages_total").inc()
            else:  # Slowdown
                states[event.machine].factor = event.factor
            if replan:
                n_replans += _replan_at(
                    event.at, instance, scheduler, states, flops, busy, powers, deadlines
                )
        # Drain what remains of the final plan.
        advance_all(float("inf"))

    accuracies = instance.tasks.accuracies(flops)
    misses = tuple(
        int(j) for j in range(n) if flops[j] > 0 and completion[j] > deadlines[j] * (1.0 + 1e-9)
    )
    if n_replans:
        tele.counter("replans_total").add(n_replans)
    return ReplanReport(
        task_flops=flops,
        task_accuracies=accuracies,
        task_completion=completion,
        machine_busy=busy,
        energy=float(busy @ powers),
        deadline_misses=misses,
        disrupted_tasks=tuple(sorted(disrupted)),
        n_replans=n_replans,
        dead_machines=tuple(dead),
    )


def _replan_at(
    now: float,
    instance: ProblemInstance,
    scheduler: Scheduler,
    states: List[_MachineState],
    flops: np.ndarray,
    busy: np.ndarray,
    powers: np.ndarray,
    deadlines: np.ndarray,
) -> int:
    """Rebuild every queue from a residual solve at time ``now``.

    Returns 1 when a replan was performed, 0 when nothing could be done
    (no survivors, no residual work, or the residual solve failed — in
    the failure case the stale queues keep running, which is the safest
    degraded behaviour).
    """
    tele = get_collector()
    alive = [r for r, s in enumerate(states) if s.alive]
    if not alive:
        return 0

    # Residual task pool: unfinished work with usable deadline slack.
    pool: List[Tuple[int, Task]] = []
    for j in range(instance.n_tasks):
        slack = float(deadlines[j]) - now
        if slack <= _MIN_RESIDUAL_DEADLINE:
            continue
        acc = residual_accuracy(instance.tasks[j].accuracy, float(flops[j]))
        if acc is None:
            continue
        pool.append((j, Task(deadline=slack, accuracy=acc)))
    if not pool:
        return 0

    spent = float(busy @ powers)
    remaining_budget = instance.budget - spent if np.isfinite(instance.budget) else instance.budget
    remaining_budget = max(remaining_budget, 0.0)

    # Survivors at their effective speeds; scaling efficiency with the
    # slowdown factor keeps power draw constant (P = s / E).
    machines = []
    for r in alive:
        base = instance.cluster[r]
        f = states[r].factor
        machines.append(
            Machine(speed=base.speed * f, efficiency=base.efficiency * f, name=base.name)
        )
    cluster = Cluster(machines)

    # Tasks are deadline-sorted in the original instance and all residual
    # deadlines are shifted by the same ``now``, so EDF order survives.
    index_map = [j for j, _ in pool]
    residual = ProblemInstance(
        TaskSet([t for _, t in pool], assume_sorted=True), cluster, remaining_budget
    )
    try:
        with tele.span("replan.solve", at=f"{now:.3f}"):
            new_plan = scheduler.solve(residual)
    except ReproError:
        tele.counter("replan_failures_total").inc()
        return 0  # keep executing whatever stale queues survive

    eff_speeds = cluster.speeds
    new_times = new_plan.times
    for rr, r in enumerate(alive):
        states[r].queue = [
            (index_map[i], float(new_times[i, rr]) * float(eff_speeds[rr]))
            for i in range(len(index_map))
            if new_times[i, rr] > 0.0
        ]
        states[r].clock = now
    return 1


def compare_replanning(
    instance: ProblemInstance,
    scheduler: Scheduler,
    failures: FailureModel,
    *,
    schedule: Optional[Schedule] = None,
) -> ReplanComparison:
    """The headline experiment: stale replay vs. replanning, same scenario."""
    if schedule is None:
        schedule = scheduler.solve(instance)
    stale = replay_with_failures(instance, schedule, failures)
    replanned = replay_with_replanning(instance, scheduler, failures, schedule=schedule)
    return ReplanComparison(
        stale=stale, replanned=replanned, nominal_accuracy=schedule.total_accuracy
    )
