"""Chaos soak campaigns: seeded fault storms with invariant certification.

``repro chaos soak`` is the robustness proof of the sharded cluster: it
runs N seeded chaos campaigns — each a fresh cluster fed a fixed request
load while a :class:`~repro.chaos.schedule.ChaosSchedule` kills, stalls
and corrupts it — and after every campaign asserts the properties the
paper's budget model demands even under failure:

1. **Budget safety at every prefix** — each shard's durable
   cumulative-energy chain is monotone and internally consistent, and
   the chains sum within the global budget ``B``
   (:func:`repro.cluster.ledger.audit_cluster`); the in-memory ledger's
   own invariants (``spent + reserved <= lease``, ``sum(lease) <= B``)
   hold at shutdown.
2. **At-most-once delivery** — no request id ever yields two delivered
   solve results (`frontend_duplicate_results_total == 0`).
3. **Liveness** — at least ``min_resolve_rate`` of accepted requests
   resolve (a result or an explicit shed), not silent timeouts, despite
   mid-campaign SIGKILLs.

Campaigns are replayable: the planned fault timeline is a pure function
of the seed, and the fired timeline is journalled (``chaos-journal/``
next to the shard ledgers) for post-mortem — CI uploads it on failure.
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .injector import FaultInjector
from .schedule import ChaosSchedule

__all__ = ["CampaignReport", "SoakReport", "run_campaign", "run_soak"]

#: Statuses that count as "resolved": the client got an answer — a solve
#: result or an explicit, retryable shed — rather than a silent timeout.
_RESOLVED_STATUSES = frozenset({200, 400, 499, 503})


def _counter_total(snapshot: Dict[str, Any], name: str) -> float:
    """Sum one counter across all its label sets in a registry snapshot."""
    total = 0.0
    for entry in snapshot.get("metrics", []):
        if entry.get("name") == name and entry.get("kind") == "counter":
            total += float(entry.get("value", 0.0))
    return total


@dataclass
class CampaignReport:
    """One seeded chaos campaign: what was injected, what survived."""

    seed: int
    requests: int
    statuses: Dict[int, int]
    planned_faults: List[Dict[str, Any]]
    fired_faults: List[Dict[str, Any]]
    restarts: Dict[str, int]
    stale_commits: int
    duplicate_results: int
    resolve_rate: float
    total_spent: float
    budget: Optional[float]
    duration_seconds: float
    violations: List[str] = field(default_factory=list)
    journal_root: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        budget = "unbounded" if self.budget is None else f"{self.budget:.0f} J"
        return (
            f"seed {self.seed}: {state} — {self.requests} requests, "
            f"{len(self.fired_faults)}/{len(self.planned_faults)} faults fired, "
            f"{sum(self.restarts.values())} restart(s), "
            f"{self.resolve_rate:.1%} resolved, "
            f"{self.total_spent:.1f} J spent of {budget}, "
            f"{self.duration_seconds:.1f}s"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "planned_faults": self.planned_faults,
            "fired_faults": self.fired_faults,
            "restarts": self.restarts,
            "stale_commits": self.stale_commits,
            "duplicate_results": self.duplicate_results,
            "resolve_rate": self.resolve_rate,
            "total_spent": self.total_spent,
            "budget": self.budget,
            "duration_seconds": self.duration_seconds,
            "violations": self.violations,
            "journal_root": self.journal_root,
            "ok": self.ok,
        }


@dataclass
class SoakReport:
    """Aggregate over a soak run's campaigns."""

    campaigns: List[CampaignReport]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.campaigns)

    @property
    def violations(self) -> List[str]:
        return [f"seed {c.seed}: {v}" for c in self.campaigns for v in c.violations]

    def summary(self) -> str:
        state = "CERTIFIED" if self.ok else f"{len(self.violations)} violation(s)"
        fired = sum(len(c.fired_faults) for c in self.campaigns)
        return (
            f"chaos soak: {state} — {len(self.campaigns)} campaign(s), "
            f"{fired} fault(s) fired, "
            f"{sum(c.requests for c in self.campaigns)} request(s)"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "campaigns": [c.to_dict() for c in self.campaigns],
            "violations": self.violations,
        }


def _campaign_load(
    manager: Any,
    instance_doc: Dict[str, Any],
    *,
    seed: int,
    requests: int,
    scheduler: str,
    concurrency: int,
    timeout: float,
) -> Counter:
    """Drive the request load; returns a status-code histogram.

    Trace ids are deterministic in ``(seed, index)`` so the
    consistent-hash routing — and therefore each shard's operation
    counts, the triggers of the fault timeline — replay across runs of
    the same campaign.
    """

    def one(index: int) -> int:
        tid = f"{seed & 0xFFFFFFFF:08x}{index:08x}"
        try:
            doc = manager.submit(scheduler, instance_doc, trace_id=tid, timeout=timeout)
        except Exception:  # noqa: BLE001 — a crash counts as unresolved
            return -1
        return int(doc.get("status", 200))

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        return Counter(pool.map(one, range(requests)))


def run_campaign(
    seed: int,
    journal_root: Union[str, Path],
    *,
    shards: int = 2,
    budget: float = 150_000.0,
    requests: int = 30,
    n_events: int = 6,
    max_op: int = 12,
    scheduler: str = "approx",
    n_tasks: int = 12,
    n_machines: int = 3,
    beta: float = 0.5,
    concurrency: int = 4,
    request_timeout_seconds: float = 10.0,
    min_resolve_rate: float = 0.99,
    hedge_after_seconds: Optional[float] = None,
) -> CampaignReport:
    """Run one seeded chaos campaign and certify its invariants.

    ``journal_root`` receives the shard ledgers (``shard-*/``) and the
    chaos journal (``chaos-journal/``); give every campaign its own
    directory.  Returns the report — ``report.ok`` is the verdict.
    """
    # Lazy: repro.cluster imports repro.chaos at module load.
    from ..cluster.bench import _make_instance_doc
    from ..cluster.frontend import ClusterConfig, ClusterManager
    from ..cluster.ledger import audit_cluster
    from ..durability.journal import read_events

    root = Path(journal_root)
    root.mkdir(parents=True, exist_ok=True)
    config = ClusterConfig(
        shards=shards,
        budget=budget,
        journal_root=str(root),
        max_batch=4,
        max_wait_seconds=0.005,
        request_timeout_seconds=request_timeout_seconds,
        rebalance_seconds=0.2,
        fsync="never",
        snapshot_every=10,
        supervise=True,
        heartbeat_seconds=0.1,
        max_restarts=3,
        max_retries=2,
        retry_backoff_seconds=0.02,
        hedge_after_seconds=hedge_after_seconds,
    )
    schedule = ChaosSchedule(seed, config.shard_ids(), n_events=n_events, max_op=max_op)
    injector = FaultInjector(schedule, journal_dir=root / "chaos-journal")
    instance_doc = _make_instance_doc(n_tasks, n_machines, beta, seed)
    manager = ClusterManager(config, injector=injector)
    started = time.perf_counter()
    try:
        manager.start()
        statuses = _campaign_load(
            manager,
            instance_doc,
            seed=seed,
            requests=requests,
            scheduler=scheduler,
            concurrency=concurrency,
            timeout=request_timeout_seconds,
        )
        health = manager.health()
        ledger_violations = manager.ledger.audit()
        stale_commits = manager.ledger.stale_commits
        telemetry_snapshot = manager.telemetry.snapshot()
    finally:
        manager.stop()
        injector.close()
    duration = time.perf_counter() - started

    resolved = sum(count for status, count in statuses.items() if status in _RESOLVED_STATUSES)
    resolve_rate = resolved / requests if requests else 1.0
    duplicates = int(_counter_total(telemetry_snapshot, "frontend_duplicate_results_total"))

    # Worker-site faults fire inside the shard *child* processes — their
    # injector copies are separate objects across the fork — so the fired
    # timeline is reassembled from the journalled ``chaos_event`` records
    # (each worker writes them into its own WAL before applying the fault).
    fired: List[Dict[str, Any]] = [e.to_dict() for e in injector.fired]
    for shard_dir in sorted(root.glob("shard-*")):
        for event in read_events(shard_dir):
            if event.get("type") == "chaos_event":
                fired.append({k: v for k, v in event.items() if k != "type"})
    fired.sort(key=lambda e: int(e.get("seq", -1)))

    violations: List[str] = []
    audit = audit_cluster(root, budget=budget)
    violations.extend(f"durable audit: {v}" for v in audit.violations)
    violations.extend(f"live ledger: {v}" for v in ledger_violations)
    if duplicates:
        violations.append(f"{duplicates} duplicate solve result(s) delivered for one request id")
    if resolve_rate < min_resolve_rate:
        violations.append(
            f"only {resolve_rate:.1%} of accepted requests resolved "
            f"(required {min_resolve_rate:.1%}); statuses: {dict(statuses)}"
        )
    return CampaignReport(
        seed=seed,
        requests=requests,
        statuses=dict(statuses),
        planned_faults=[e.to_dict() for e in injector.planned],
        fired_faults=fired,
        restarts=dict(health.get("restarts", {})),
        stale_commits=stale_commits,
        duplicate_results=duplicates,
        resolve_rate=resolve_rate,
        total_spent=audit.total_spent,
        budget=budget,
        duration_seconds=duration,
        violations=violations,
        journal_root=str(root),
    )


def run_soak(
    seeds: Sequence[int],
    out_root: Union[str, Path],
    *,
    shards: int = 2,
    budget: float = 150_000.0,
    requests: int = 30,
    n_events: int = 6,
    max_op: int = 12,
    scheduler: str = "approx",
    concurrency: int = 4,
    request_timeout_seconds: float = 10.0,
    min_resolve_rate: float = 0.99,
    progress: Optional[Callable[[str], None]] = None,
) -> SoakReport:
    """Run one campaign per seed (each under ``out_root/seed-<s>``)."""
    campaigns: List[CampaignReport] = []
    for seed in seeds:
        report = run_campaign(
            int(seed),
            Path(out_root) / f"seed-{int(seed):04d}",
            shards=shards,
            budget=budget,
            requests=requests,
            n_events=n_events,
            max_op=max_op,
            scheduler=scheduler,
            concurrency=concurrency,
            request_timeout_seconds=request_timeout_seconds,
            min_resolve_rate=min_resolve_rate,
        )
        campaigns.append(report)
        if progress is not None:
            progress(report.summary())
    return SoakReport(campaigns=campaigns)
