"""Deterministic, seeded chaos timelines.

A chaos campaign must be *reproducible*: the same seed has to produce
the same faults, against the same targets, in the same order — or a
failing soak run cannot be replayed and debugged.  :class:`ChaosSchedule`
is therefore a pure function of its parameters: a ``random.Random(seed)``
stream drives every choice (kind, shard, trigger point, magnitude) and
nothing else does.  Wall clocks never enter the timeline; every event
triggers on a deterministic *operation count* at its injection site
(the k-th solve window a shard handles, the k-th lease release, the k-th
rebalance cycle), so the fault interleaving is a property of the
workload, not of scheduler jitter.

Fault taxonomy
--------------

=====================  ======================  =================================
kind                   site                    effect
=====================  ======================  =================================
``worker_kill``        ``worker.window``       SIGKILL the shard worker process
``worker_exit``        ``worker.window``       worker exits cleanly, no ack
``worker_stall``       ``worker.window``       injected latency before solving
``reply_drop``         ``worker.window``       window solved, reply never sent
``journal_torn_write``  ``worker.window``      partial WAL record, then death
``lease_release_delay``  ``frontend.lease_release``  delay a crashed grant's release
``clock_skew``         ``ledger.rebalance``    skew the rebalance cadence
``arrival_burst``      ``frontend.submit``     synthetic best-effort arrival burst
=====================  ======================  =================================

``worker.window`` events count a shard's solve-window envelopes;
``frontend.lease_release`` counts grant releases on the shard's death
path; ``clock_skew`` counts rebalancer cycles (shard-less: the ledger is
global); ``frontend.submit`` counts client submissions routed to the
shard, and an ``arrival_burst`` magnitude is the number of synthetic
best-effort requests injected — exercising the overload controller
(admission AIMD, brownout) under a reproducible load spike.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..utils.validation import require

__all__ = [
    "FAULT_KINDS",
    "WORKER_SITE",
    "RELEASE_SITE",
    "REBALANCE_SITE",
    "SUBMIT_SITE",
    "site_of",
    "ChaosEvent",
    "ChaosSchedule",
]

WORKER_SITE = "worker.window"
RELEASE_SITE = "frontend.lease_release"
REBALANCE_SITE = "ledger.rebalance"
SUBMIT_SITE = "frontend.submit"

#: kind -> (site, is_fatal_to_worker)
_KIND_TABLE: Dict[str, Tuple[str, bool]] = {
    "worker_kill": (WORKER_SITE, True),
    "worker_exit": (WORKER_SITE, True),
    "worker_stall": (WORKER_SITE, False),
    "reply_drop": (WORKER_SITE, False),
    "journal_torn_write": (WORKER_SITE, True),
    "lease_release_delay": (RELEASE_SITE, False),
    "clock_skew": (REBALANCE_SITE, False),
    "arrival_burst": (SUBMIT_SITE, False),
}

FAULT_KINDS: Tuple[str, ...] = tuple(_KIND_TABLE)


def site_of(kind: str) -> str:
    """The injection site a fault kind fires at."""
    require(kind in _KIND_TABLE, f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}")
    return _KIND_TABLE[kind][0]


@dataclass(frozen=True)
class ChaosEvent:
    """One planned fault: *what* happens *where* on the *k-th* operation.

    ``at_op`` is 1-based: the event fires when its site's operation
    counter (for its shard) reaches ``at_op``.  ``magnitude`` is
    kind-specific — stall/delay seconds, or signed skew seconds.
    Instances are plain frozen data so they pickle across the process
    boundary into shard workers.
    """

    seq: int  #: position in the generated timeline (stable tiebreak)
    kind: str
    site: str
    shard: Optional[str]  #: target shard; ``None`` for global sites
    at_op: int
    magnitude: float = 0.0

    @property
    def fatal(self) -> bool:
        """Does this fault end the worker process?"""
        return _KIND_TABLE[self.kind][1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "site": self.site,
            "shard": self.shard,
            "at_op": self.at_op,
            "magnitude": self.magnitude,
        }

    def describe(self) -> str:
        target = self.shard if self.shard is not None else "<global>"
        extra = f" ({self.magnitude:+.3f}s)" if self.magnitude else ""
        return f"#{self.seq} {self.kind} @ {target} op {self.at_op}{extra}"


class ChaosSchedule:
    """A seeded, reproducible fault timeline over a shard topology.

    The same ``(seed, shards, kinds, n_events, max_op, ...)`` always
    yields the identical event tuple — asserted by the test suite and
    relied on by ``repro chaos soak``'s replayable campaigns.  At most
    one *fatal* fault is planned per shard (a dead worker fires nothing
    further; restarted workers run chaos-free so campaigns terminate).
    """

    def __init__(
        self,
        seed: int,
        shards: Sequence[str],
        *,
        kinds: Sequence[str] = FAULT_KINDS,
        n_events: int = 8,
        max_op: int = 20,
        stall_seconds: Tuple[float, float] = (0.05, 0.4),
        delay_seconds: Tuple[float, float] = (0.02, 0.2),
        skew_seconds: Tuple[float, float] = (-0.5, 0.5),
        burst_requests: Tuple[int, int] = (3, 12),
    ):
        require(len(shards) >= 1, "a chaos schedule needs at least one shard")
        require(n_events >= 0, f"n_events must be >= 0, got {n_events}")
        require(max_op >= 1, f"max_op must be >= 1, got {max_op}")
        unknown = [k for k in kinds if k not in _KIND_TABLE]
        require(not unknown, f"unknown fault kind(s): {', '.join(map(repr, unknown))}")
        self.seed = int(seed)
        self.shards = tuple(str(s) for s in shards)
        self.kinds = tuple(kinds)
        rng = random.Random(self.seed)
        events: List[ChaosEvent] = []
        doomed: set = set()  # shards already assigned a fatal fault
        for seq in range(int(n_events)):
            kind = rng.choice(list(self.kinds))
            site, fatal = _KIND_TABLE[kind]
            shard: Optional[str] = None
            if site != REBALANCE_SITE:
                shard = rng.choice(list(self.shards))
                if fatal and shard in doomed:
                    kind, fatal = "worker_stall", False
                    site = WORKER_SITE
                if fatal:
                    doomed.add(shard)
            at_op = rng.randint(1, int(max_op))
            if kind in ("worker_stall",):
                magnitude = rng.uniform(*stall_seconds)
            elif kind == "lease_release_delay":
                magnitude = rng.uniform(*delay_seconds)
            elif kind == "clock_skew":
                magnitude = rng.uniform(*skew_seconds)
            elif kind == "arrival_burst":
                magnitude = float(rng.randint(*burst_requests))
            else:
                magnitude = 0.0
            events.append(
                ChaosEvent(seq=seq, kind=kind, site=site, shard=shard, at_op=at_op, magnitude=magnitude)
            )
        self.events: Tuple[ChaosEvent, ...] = tuple(events)

    @classmethod
    def from_events(cls, events: Sequence[ChaosEvent]) -> "ChaosSchedule":
        """A hand-crafted schedule (tests, targeted reproductions)."""
        schedule = cls.__new__(cls)
        schedule.seed = -1
        schedule.shards = tuple(sorted({e.shard for e in events if e.shard is not None}))
        schedule.kinds = tuple(sorted({e.kind for e in events}))
        schedule.events = tuple(events)
        return schedule

    def events_for(self, site: str, shard: Optional[str] = None) -> Tuple[ChaosEvent, ...]:
        """The events firing at one site (for one shard), by trigger order."""
        chosen = [
            e
            for e in self.events
            if e.site == site and (e.shard is None or shard is None or e.shard == shard)
        ]
        chosen.sort(key=lambda e: (e.at_op, e.seq))
        return tuple(chosen)

    def timeline(self) -> List[Dict[str, Any]]:
        """The full planned timeline as plain dicts (journal/report form)."""
        return [e.to_dict() for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChaosSchedule) and self.events == other.events

    def __repr__(self) -> str:
        return (
            f"ChaosSchedule(seed={self.seed}, shards={len(self.shards)}, "
            f"events={len(self.events)})"
        )
