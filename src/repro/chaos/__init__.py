"""repro.chaos — deterministic fault injection for the serving cluster.

Seeded :class:`ChaosSchedule` timelines, a :class:`FaultInjector` that
dispenses them at instrumented sites, and a soak harness
(:mod:`repro.chaos.soak`) that runs chaos campaigns against a live
cluster and certifies the energy-budget invariants afterwards.

``repro.cluster`` depends on this package (the worker and front-end
carry injector hooks); the dependency never points the other way at
import time — only :mod:`repro.chaos.soak` touches the cluster, and it
is loaded lazily for exactly that reason.
"""

from __future__ import annotations

from typing import Any

from .injector import FaultInjector
from .schedule import (
    FAULT_KINDS,
    REBALANCE_SITE,
    RELEASE_SITE,
    SUBMIT_SITE,
    WORKER_SITE,
    ChaosEvent,
    ChaosSchedule,
    site_of,
)

__all__ = [
    "FAULT_KINDS",
    "WORKER_SITE",
    "RELEASE_SITE",
    "REBALANCE_SITE",
    "SUBMIT_SITE",
    "site_of",
    "ChaosEvent",
    "ChaosSchedule",
    "FaultInjector",
    "CampaignReport",
    "SoakReport",
    "run_campaign",
    "run_soak",
]

_SOAK_EXPORTS = {"CampaignReport", "SoakReport", "run_campaign", "run_soak"}


def __getattr__(name: str) -> Any:
    # Lazy: soak imports repro.cluster, which imports this package.
    if name in _SOAK_EXPORTS:
        from . import soak

        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
