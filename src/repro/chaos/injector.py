"""The fault injector: deterministic trigger counters + fault telemetry.

A :class:`FaultInjector` holds the pending events of a
:class:`~repro.chaos.schedule.ChaosSchedule` and answers one question at
every instrumented point of the serving stack: *does a fault fire
here, now?*  Each injection site calls :meth:`FaultInjector.fire` once
per operation; the injector counts operations per ``(site, shard)`` and
releases the next planned event once its trigger point is reached.
Given the same schedule and the same per-site operation sequence, the
fired timeline is identical — chaos campaigns replay.

Every fired fault is observable twice over:

* a ``chaos_faults_injected_total{kind,shard}`` counter in the bound
  telemetry registry (shard workers bind their own registry, so the
  cluster ``/metrics`` aggregation labels worker-side faults per shard);
* a ``chaos_event`` record in the injector's chaos journal (frontend
  side) or the shard's own write-ahead ledger (worker side) — so a
  trace that crosses an anomaly finds the fault that caused it next to
  the solve records it perturbed.

The injector never *applies* a fault itself; the instrumented code does
(kill, sleep, drop, torn write).  That keeps this module free of any
dependency on :mod:`repro.cluster` — the cluster depends on the
injector, not the other way around.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..telemetry import MetricsRegistry, get_collector
from .schedule import WORKER_SITE, ChaosEvent, ChaosSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Thread-safe dispenser of planned faults to their injection sites.

    ``events`` may be a :class:`ChaosSchedule` or a bare event sequence
    (the worker process receives only its own shard's slice).  With a
    ``journal_dir`` the injector keeps a chaos journal: the full planned
    timeline (one ``chaos_plan`` record) plus one ``chaos_event`` record
    per fired fault — the artifact a failing soak campaign uploads.
    """

    def __init__(
        self,
        events: Union[ChaosSchedule, Sequence[ChaosEvent]],
        *,
        journal_dir: Optional[Union[str, Path]] = None,
        telemetry: Optional[MetricsRegistry] = None,
    ):
        self.schedule = events if isinstance(events, ChaosSchedule) else None
        event_list = list(events.events if isinstance(events, ChaosSchedule) else events)
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Optional[str]], int] = {}
        self._pending: Dict[Tuple[str, Optional[str]], List[ChaosEvent]] = {}
        for event in event_list:
            self._pending.setdefault((event.site, event.shard), []).append(event)
        for queue in self._pending.values():
            queue.sort(key=lambda e: (e.at_op, e.seq))
        self.planned: Tuple[ChaosEvent, ...] = tuple(event_list)
        self.fired: List[ChaosEvent] = []
        self._journal = None
        if journal_dir is not None:
            from ..durability import JournalWriter

            self._journal = JournalWriter(journal_dir, fsync="never")
            self._journal.append(
                {"type": "chaos_plan", "events": [e.to_dict() for e in self.planned]}
            )

    # -- the one question every site asks ---------------------------------------

    def fire(self, site: str, shard: Optional[str] = None) -> Optional[ChaosEvent]:
        """Count one operation at ``(site, shard)``; the fault due, if any.

        Events are released in trigger order and never skipped: an event
        whose trigger point has passed (because an earlier call returned
        a different fault) fires on the next operation.
        """
        key = (site, shard)
        with self._lock:
            count = self._counters.get(key, 0) + 1
            self._counters[key] = count
            queue = self._pending.get(key)
            if not queue or queue[0].at_op > count:
                return None
            event = queue.pop(0)
            self.fired.append(event)
        self._observe(event)
        return event

    def _observe(self, event: ChaosEvent) -> None:
        registry = self.telemetry if self.telemetry is not None else get_collector()
        registry.counter(
            "chaos_faults_injected_total",
            kind=event.kind,
            shard=event.shard or "global",
        ).inc()
        if self._journal is not None:
            self._journal.append({"type": "chaos_event", **event.to_dict()})

    # -- bookkeeping -------------------------------------------------------------

    def worker_events(self, shard: str) -> Tuple[ChaosEvent, ...]:
        """The worker-site events a shard process must carry across fork."""
        if self.schedule is not None:
            return self.schedule.events_for(WORKER_SITE, shard)
        return tuple(
            e for e in self.planned if e.site == WORKER_SITE and e.shard == shard
        )

    @property
    def outstanding(self) -> int:
        """Planned events not yet fired (anywhere)."""
        with self._lock:
            return sum(len(q) for q in self._pending.values())

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "planned": [e.to_dict() for e in self.planned],
                "fired": [e.to_dict() for e in self.fired],
            }

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()

    def __repr__(self) -> str:
        return f"FaultInjector(planned={len(self.planned)}, fired={len(self.fired)})"
