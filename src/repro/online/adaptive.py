"""Adaptive budget pacing for rolling-horizon serving.

The fixed per-window power cap of
:class:`~repro.online.planner.RollingHorizonPlanner` wastes energy in
calm windows and starves bursts.  :class:`AdaptiveBudgetPlanner` paces a
*global* energy budget instead:

* each window is granted ``remaining_budget × window / remaining_time``
  — proportional pacing, so the plan never runs dry early;
* whatever a calm window does not consume stays in the pool: only the
  *spent* energy is deducted, so savings automatically flow to later
  windows (carry-over) through the growing per-window share.

An ``aggressiveness`` factor > 1 lets a window overdraw its proportional
share.  Empirically it *hurts* under the concave accuracy returns of
this problem (front-loaded windows saturate while later bursts starve),
so the default is strict pacing (1.0); the knob is kept for
experimentation and the trade-off is pinned down in the tests.

Under bursty (MMPP) traffic strict pacing buys measurable accuracy over
the fixed per-window cap at equal total energy, because the fixed cap
*forfeits* whatever a calm window leaves unused.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.machine import Cluster
from ..utils.validation import check_positive, require
from ..workloads.arrivals import Request, window_batches
from ..workloads.generator import tasks_from_thetas
from .planner import ServingReport, WindowOutcome

__all__ = ["AdaptiveBudgetPlanner"]


class AdaptiveBudgetPlanner:
    """Rolling-horizon planning against a global, paced energy budget.

    Parameters
    ----------
    cluster, scheduler, window_seconds:
        As in :class:`RollingHorizonPlanner`.
    total_budget:
        Energy (J) for the whole horizon.
    horizon_seconds:
        Planning horizon the pacing spreads the budget over.
    aggressiveness:
        ≥ 1; how far a single window may overdraw its proportional share
        (1 = strict pacing, the empirically best default; larger values
        front-load and usually lose accuracy under concave returns).
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        *,
        total_budget: float,
        horizon_seconds: float,
        window_seconds: float = 2.0,
        aggressiveness: float = 1.0,
    ):
        check_positive(total_budget, "total_budget")
        check_positive(horizon_seconds, "horizon_seconds")
        check_positive(window_seconds, "window_seconds")
        require(window_seconds <= horizon_seconds, "window must fit in the horizon")
        require(aggressiveness >= 1.0, "aggressiveness must be >= 1")
        self.cluster = cluster
        self.scheduler = scheduler
        self.total_budget = float(total_budget)
        self.horizon_seconds = float(horizon_seconds)
        self.window_seconds = float(window_seconds)
        self.aggressiveness = float(aggressiveness)

    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Plan the stream with paced carry-over budgeting."""
        outcomes: List[WindowOutcome] = []
        remaining_budget = self.total_budget
        for start, batch in window_batches(list(requests), self.window_seconds):
            remaining_time = max(self.horizon_seconds - start, self.window_seconds)
            share = remaining_budget * self.window_seconds / remaining_time
            grant = min(self.aggressiveness * share, remaining_budget)
            if grant <= 0:
                grant = 0.0
            deadlines = [max(r.deadline - start, 1e-3) for r in batch]
            thetas = [r.theta_per_tflop for r in batch]
            order = np.argsort(deadlines, kind="stable")
            tasks = tasks_from_thetas(
                [thetas[i] for i in order], [deadlines[i] for i in order]
            )
            instance = ProblemInstance(tasks, self.cluster, grant)
            schedule = self.scheduler.solve(instance)
            spent = schedule.total_energy
            remaining_budget = max(remaining_budget - spent, 0.0)
            completion = schedule.completion_times.max(axis=1)
            served = schedule.task_flops > 0
            on_time = int(np.sum(served & (completion <= tasks.deadlines + 1e-9)))
            outcomes.append(
                WindowOutcome(
                    start=start,
                    n_requests=len(batch),
                    schedule=schedule,
                    accuracies=schedule.task_accuracies,
                    on_time=on_time,
                    energy=spent,
                )
            )
        return ServingReport(tuple(outcomes))
