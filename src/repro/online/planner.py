"""Rolling-horizon online planner over a request stream.

The paper solves a static batch; a serving front-end sees a stream.  The
natural deployment (also used in its inspiration, Jellyfish [16]) is a
rolling horizon: buffer arrivals for a short planning window, then solve
the buffered batch as a DSCT-EA instance whose deadlines are the
requests' SLOs relative to the window start, and whose budget is the
window's share of a global power cap.

:class:`RollingHorizonPlanner` formalises that loop around any
:class:`~repro.algorithms.base.Scheduler`; the ``mlaas_online_serving``
example is a thin wrapper over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.machine import Cluster
from ..core.schedule import Schedule
from ..telemetry import ensure_trace, get_collector
from ..utils.errors import ValidationError
from ..utils.validation import check_positive
from ..workloads.arrivals import Request, window_batches
from ..workloads.generator import tasks_from_thetas

__all__ = ["WindowOutcome", "ServingReport", "RollingHorizonPlanner"]


@dataclass(frozen=True)
class WindowOutcome:
    """What one planning window achieved."""

    start: float
    n_requests: int
    schedule: Schedule
    accuracies: np.ndarray
    on_time: int
    energy: float


@dataclass(frozen=True)
class ServingReport:
    """Aggregate over all windows of one run."""

    windows: tuple[WindowOutcome, ...]

    @property
    def n_requests(self) -> int:
        return sum(w.n_requests for w in self.windows)

    @property
    def mean_accuracy(self) -> float:
        if not self.windows:
            return 0.0
        total = sum(float(w.accuracies.sum()) for w in self.windows)
        return total / max(self.n_requests, 1)

    @property
    def on_time_fraction(self) -> float:
        """Fraction of requests that received work and met their SLO."""
        if self.n_requests == 0:
            return 0.0
        return sum(w.on_time for w in self.windows) / self.n_requests

    @property
    def total_energy(self) -> float:
        return sum(w.energy for w in self.windows)


class RollingHorizonPlanner:
    """Plan a request stream window by window with a DSCT-EA scheduler.

    Parameters
    ----------
    cluster:
        The serving machines.
    scheduler:
        Any scheduler from this library (``ApproxScheduler()`` is the
        intended choice).
    window_seconds:
        Length of each planning window.
    power_cap_fraction:
        Energy per window as a fraction of running every machine at full
        power for the window (the window's β).
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        *,
        window_seconds: float = 2.0,
        power_cap_fraction: float = 0.5,
    ):
        check_positive(window_seconds, "window_seconds")
        if not 0.0 < power_cap_fraction:
            raise ValidationError(f"power_cap_fraction must be > 0, got {power_cap_fraction}")
        self.cluster = cluster
        self.scheduler = scheduler
        self.window_seconds = float(window_seconds)
        self.power_cap_fraction = float(power_cap_fraction)

    @property
    def window_budget(self) -> float:
        """Energy budget (J) granted to each window."""
        return self.power_cap_fraction * self.window_seconds * self.cluster.total_power

    def plan_window(self, start: float, batch: Sequence[Request]) -> WindowOutcome:
        """Solve one window's batch; returns the outcome."""
        if not batch:
            raise ValidationError("cannot plan an empty window")
        tele = get_collector()
        with tele.span("planner.window"):
            deadlines = [max(r.deadline - start, 1e-3) for r in batch]
            thetas = [r.theta_per_tflop for r in batch]
            order = np.argsort(deadlines, kind="stable")
            tasks = tasks_from_thetas([thetas[i] for i in order], [deadlines[i] for i in order])
            instance = ProblemInstance(tasks, self.cluster, self.window_budget)
            with tele.span("planner.window.solve"):
                schedule = self.scheduler.solve(instance)
            completion = schedule.completion_times.max(axis=1)
            served = schedule.task_flops > 0
            on_time = int(np.sum(served & (completion <= tasks.deadlines + 1e-9)))
        tele.counter("planner_windows_total").inc()
        tele.counter("planner_requests_total").add(len(batch))
        tele.counter("planner_on_time_total").add(on_time)
        tele.counter("planner_accuracy_total").add(float(schedule.task_accuracies.sum()))
        tele.histogram("planner_window_requests", buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500)).observe(
            len(batch)
        )
        tele.histogram(
            "planner_window_energy_joules",
            buckets=(1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6),
        ).observe(schedule.total_energy)
        return WindowOutcome(
            start=start,
            n_requests=len(batch),
            schedule=schedule,
            accuracies=schedule.task_accuracies,
            on_time=on_time,
            energy=schedule.total_energy,
        )

    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Plan an entire stream; empty streams yield an empty report.

        The whole run executes under one trace (the caller's active
        trace id, or a fresh one), so every window's spans correlate.
        """
        outcomes: List[WindowOutcome] = []
        with ensure_trace(), get_collector().span("planner.run"):
            for start, batch in window_batches(list(requests), self.window_seconds):
                outcomes.append(self.plan_window(start, batch))
        return ServingReport(tuple(outcomes))

    def run_durable(
        self,
        requests: Sequence[Request],
        journal_dir,
        *,
        energy_budget: Optional[float] = None,
        degradation=None,
        snapshot_every: int = 5,
        fsync: str = "always",
        meta: Optional[dict] = None,
    ):
        """Plan the stream crash-safely (journal + snapshots + resume).

        The durable counterpart of :meth:`run`: every window is
        journaled to a write-ahead log under ``journal_dir`` before it
        commits, state is snapshotted every ``snapshot_every`` windows,
        and a journal left behind by a crashed run is recovered,
        certified against ``energy_budget`` and *continued* — committed
        windows replay from the log, the rest are re-solved
        deterministically.  Returns a
        :class:`~repro.durability.run.DurableReport`.
        """
        from ..durability.run import DurableRun

        return DurableRun(
            self.cluster,
            self.scheduler,
            journal_dir,
            window_seconds=self.window_seconds,
            power_cap_fraction=self.power_cap_fraction,
            energy_budget=energy_budget,
            degradation=degradation,
            snapshot_every=snapshot_every,
            fsync=fsync,
            meta=meta,
        ).run(requests)

    def run_with_failures(
        self,
        requests: Sequence[Request],
        failures,
        *,
        replan: bool = True,
    ) -> ServingReport:
        """Plan the stream, then *execute* each window under failures.

        ``failures`` is a :class:`~repro.simulator.failures.FailureModel`
        on the stream's absolute clock; each window replays its schedule
        against the failures expressed in window-local time
        (:meth:`~repro.simulator.failures.FailureModel.shifted`), so a
        machine that died in an earlier window stays dead.  With
        ``replan=True`` every in-window failure triggers a residual
        replan onto survivors
        (:func:`~repro.resilience.replan.replay_with_replanning`); with
        ``replan=False`` the stale schedule runs as planned and loses the
        dead machine's queue — the baseline.  Reported accuracies,
        on-time counts and energy are the *realised* ones.
        """
        from ..resilience.replan import replay_with_replanning
        from ..simulator.failures import replay_with_failures

        tele = get_collector()
        outcomes: List[WindowOutcome] = []
        with ensure_trace(), tele.span("planner.run_with_failures"):
            for start, batch in window_batches(list(requests), self.window_seconds):
                deadlines = [max(r.deadline - start, 1e-3) for r in batch]
                thetas = [r.theta_per_tflop for r in batch]
                order = np.argsort(deadlines, kind="stable")
                tasks = tasks_from_thetas([thetas[i] for i in order], [deadlines[i] for i in order])
                instance = ProblemInstance(tasks, self.cluster, self.window_budget)
                with tele.span("planner.window.solve"):
                    schedule = self.scheduler.solve(instance)
                local = failures.shifted(start)
                if replan:
                    report = replay_with_replanning(
                        instance, self.scheduler, local, schedule=schedule
                    )
                else:
                    report = replay_with_failures(instance, schedule, local)
                served = report.task_flops > 0
                missed = set(report.deadline_misses)
                on_time = int(sum(1 for j in range(len(batch)) if served[j] and j not in missed))
                tele.counter("planner_windows_total").inc()
                tele.counter("planner_requests_total").add(len(batch))
                tele.counter("planner_on_time_total").add(on_time)
                tele.counter("planner_accuracy_total").add(float(report.task_accuracies.sum()))
                outcomes.append(
                    WindowOutcome(
                        start=start,
                        n_requests=len(batch),
                        schedule=schedule,
                        accuracies=report.task_accuracies,
                        on_time=on_time,
                        energy=report.energy,
                    )
                )
        return ServingReport(tuple(outcomes))
