"""Online serving: rolling-horizon planning over request streams."""

from .adaptive import AdaptiveBudgetPlanner
from .planner import RollingHorizonPlanner, ServingReport, WindowOutcome

__all__ = ["RollingHorizonPlanner", "AdaptiveBudgetPlanner", "ServingReport", "WindowOutcome"]
