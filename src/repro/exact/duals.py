"""KKT optimality certificates for fractional solutions (paper Sec. 3.2).

The paper derives necessary-and-sufficient optimality conditions for
DSCT-EA-FR from the KKT system of the LP (3a)–(3f).  This module turns
that analysis into executable checks, so a candidate fractional schedule
can be *certified* (approximately) optimal without re-solving.

Each check corresponds to one class of improving exchange move; a
violation is reported only when the move is **material** — when the
transferable amount times the slope difference would raise total
accuracy by more than ``tolerance`` (absolute accuracy units).  Slope
ratios alone are not enough: a pair can look wildly mispriced while only
an epsilon of energy is actually movable.

* **C1 — machine-local slope ordering** (Eqs. (8)–(12)): along each
  machine, shifting time from an earlier funded task to a later one
  must not pay.
* **C2 — accuracy-per-Joule comparability** ("The Energy Profiles"):
  transferring energy from any funded pair to any growable pair must
  not pay.  (Exactly RefineProfile's transfer move.)
* **C3 — budget complementary slackness**: unspent budget must not be
  spendable at a gain.

These are *necessary* conditions; they certify local optimality with
respect to the paper's exchange arguments.  ``certify`` names the
improving move behind each violation, which doubles as a debugging aid
for the algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..algorithms.refine_profile import deadline_slack
from ..core.schedule import Schedule
from ..utils.validation import check_nonnegative

__all__ = ["KKTViolation", "KKTReport", "certify", "LPDuals"]

#: How many top grow/shrink pairs C2 cross-examines (a certificate
#: shortcut; the extremal pairs carry the largest improvements).
_C2_CANDIDATES = 64


@dataclass(frozen=True)
class LPDuals:
    """Shadow prices of the LP relaxation (3a)–(3f), in natural units.

    Extracted from the HiGHS dual solution by
    :func:`repro.exact.lp.solve_lp_with_duals` and de-scaled back from
    the model's O(1) row scaling, so every value reads directly as a
    marginal accuracy:

    * ``budget`` — total accuracy gained per **+1 J** of budget B
      (Eq. (3e)'s multiplier; zero when the budget is slack);
    * ``deadline[r, j]`` — total accuracy gained per **+1 s** on the
      prefix-deadline constraint of task ``j`` on machine ``r``
      (Eq. (3c)); summing over ``j`` prices one extra second of
      machine-``r`` time across the whole horizon;
    * ``work_cap[j]`` — total accuracy gained per **+1 FLOP** of task
      ``j``'s compression ceiling ``f_j^max`` (Eq. (3d)).

    These are the provenance layer's raw material: a task's accuracy
    loss is attributed to whichever constraint carries the price it is
    actually paying (:mod:`repro.observe.provenance`).
    """

    budget: float
    deadline: np.ndarray  # (m, n)
    work_cap: np.ndarray  # (n,)

    @property
    def machine_time_value(self) -> np.ndarray:
        """Accuracy per +1 s of every deadline on machine r (length m)."""
        return self.deadline.sum(axis=1)

    def deadline_price(self, j: int, r: int) -> float:
        """Accuracy per +1 s of runway for task ``j`` on machine ``r``.

        One extra second of ``t_jr`` consumes a second of every prefix
        constraint ``i ≥ j`` on machine ``r``; its deadline price is the
        sum of those multipliers.
        """
        return float(self.deadline[r, j:].sum())


@dataclass(frozen=True)
class KKTViolation:
    """One violated optimality condition and the move that exploits it."""

    condition: str  # "C1" | "C2" | "C3"
    detail: str
    improvement: float  # absolute total-accuracy gain the move offers


@dataclass(frozen=True)
class KKTReport:
    """Outcome of a KKT certification."""

    violations: tuple[KKTViolation, ...]
    tolerance: float

    @property
    def certified(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.certified:
            return f"certified (no move improves accuracy by more than {self.tolerance:g})"
        lines = [f"{len(self.violations)} KKT violation(s):"]
        lines += [
            f"  [{v.condition}] {v.detail} (improvement {v.improvement:.3g})"
            for v in self.violations[:10]
        ]
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


def certify(schedule: Schedule, *, tolerance: float = 1e-6) -> KKTReport:
    """Check the Sec. 3.2 optimality conditions on a fractional schedule.

    ``tolerance`` is in absolute total-accuracy units: the schedule is
    certified when no single exchange move can raise total accuracy by
    more than it.
    """
    check_nonnegative(tolerance, "tolerance")
    inst = schedule.instance
    tasks, cluster = inst.tasks, inst.cluster
    n, m = inst.n_tasks, inst.n_machines
    t = schedule.times
    flops = schedule.task_flops
    speeds = cluster.speeds
    powers = cluster.powers
    effs = cluster.efficiencies
    deadlines = tasks.deadlines

    gains = np.empty(n)
    losses = np.empty(n)
    next_room = np.empty(n)  # FLOP to the next breakpoint (grow side)
    prev_room = np.empty(n)  # FLOP above the previous breakpoint (shrink side)
    at_cap = np.empty(n, dtype=bool)
    for j, task in enumerate(tasks):
        acc = task.accuracy
        f = min(max(flops[j], 0.0), acc.f_max)
        # Snap to breakpoints within float dust — optimal solutions sit
        # exactly on breakpoints, and a residual 1e-16·f_max would make
        # the left/right derivatives read from the wrong segments.
        bp = acc.breakpoints
        eps_f = 1e-9 * acc.f_max
        k_near = int(np.searchsorted(bp, f))
        for k_cand in (k_near - 1, k_near):
            if 0 <= k_cand < bp.size and abs(f - bp[k_cand]) <= eps_f:
                f = float(bp[k_cand])
                break
        gains[j] = acc.marginal_gain(f)
        losses[j] = acc.marginal_loss(f)
        at_cap[j] = f >= acc.f_max * (1.0 - 1e-9)
        if f >= acc.f_max:
            next_room[j] = 0.0
        else:
            k = acc.segment_index(f)
            next_room[j] = acc.breakpoints[k + 1] - f
        if f <= 0.0:
            prev_room[j] = 0.0
        else:
            k = int(np.searchsorted(bp, f, side="left")) - 1
            k = min(max(k, 0), acc.n_segments - 1)
            prev_room[j] = f - bp[k]

    violations: List[KKTViolation] = []

    # -- C1: time shift i → j along one machine -------------------------------
    completion = schedule.completion_times
    for r in range(m):
        funded = [j for j in range(n) if t[j, r] > 0.0]
        for a_idx in range(len(funded)):
            i = funded[a_idx]
            if at_cap[i]:
                continue  # the paper's f_max exception
            if completion[i, r] >= deadlines[i] * (1.0 - 1e-12):
                continue  # i deadline-tight: its time cannot shrink usefully
            for j in funded[a_idx + 1 :]:
                slope_excess = gains[j] - losses[i]
                if slope_excess <= 0:
                    continue
                movable_flops = min(
                    t[i, r] * speeds[r], prev_room[i], next_room[j]
                )
                improvement = movable_flops * slope_excess
                if improvement > tolerance:
                    violations.append(
                        KKTViolation(
                            "C1",
                            f"machine {r}: shift {movable_flops:.3g} FLOP of time from "
                            f"task {i} to task {j}",
                            float(improvement),
                        )
                    )

    # -- C2: energy transfer between (task, machine) pairs --------------------
    slack = deadline_slack(t, deadlines)
    psi_grow = gains[:, None] * effs[None, :]
    psi_loss = losses[:, None] * effs[None, :]
    grow_cap_e = np.minimum(slack * powers[None, :], next_room[:, None] / effs[None, :])
    shrink_cap_e = np.minimum(t * powers[None, :], prev_room[:, None] / effs[None, :])
    growable = (grow_cap_e > 0.0) & (psi_grow > 0.0)
    shrinkable = shrink_cap_e > 0.0

    if np.any(growable) and np.any(shrinkable):
        grow_idx = np.argsort(np.where(growable, -psi_grow, np.inf), axis=None)[:_C2_CANDIDATES]
        shrink_idx = np.argsort(np.where(shrinkable, psi_loss, np.inf), axis=None)[:_C2_CANDIDATES]
        best = None
        for gi in grow_idx:
            jg, rg = np.unravel_index(int(gi), psi_grow.shape)
            if not growable[jg, rg]:
                continue
            for si in shrink_idx:
                js, rs = np.unravel_index(int(si), psi_loss.shape)
                if not shrinkable[js, rs] or (jg, rg) == (js, rs):
                    continue
                excess = float(psi_grow[jg, rg] - psi_loss[js, rs])
                if excess <= 0:
                    continue
                delta_e = float(min(grow_cap_e[jg, rg], shrink_cap_e[js, rs]))
                improvement = delta_e * excess
                if improvement > tolerance and (best is None or improvement > best[0]):
                    best = (improvement, int(jg), int(rg), int(js), int(rs))
        if best is not None:
            improvement, jg, rg, js, rs = best
            violations.append(
                KKTViolation(
                    "C2",
                    f"transfer energy from (task {js}, machine {rs}) to "
                    f"(task {jg}, machine {rg})",
                    improvement,
                )
            )

    # -- C3: budget complementary slackness -----------------------------------
    if math.isfinite(inst.budget):
        leftover = inst.budget - schedule.total_energy
        if leftover > 0 and np.any(growable):
            masked = np.where(growable, psi_grow, -np.inf)
            jg, rg = np.unravel_index(int(np.argmax(masked)), masked.shape)
            delta_e = min(leftover, float(grow_cap_e[jg, rg]))
            improvement = delta_e * float(psi_grow[jg, rg])
            if improvement > tolerance:
                violations.append(
                    KKTViolation(
                        "C3",
                        f"{leftover:.4g} J of budget unspent; growing "
                        f"(task {int(jg)}, machine {int(rg)}) pays",
                        float(improvement),
                    )
                )

    return KKTReport(tuple(violations), tolerance)
