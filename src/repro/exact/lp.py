"""Exact LP solver for DSCT-EA-FR — the paper's "DSCT-EA-FR [Mosek]" role.

Solves the fractional relaxation (Eqs. (3a)–(3f)) with SciPy's bundled
HiGHS simplex/IPM.  Used as ground truth for the combinatorial
DSCT-EA-FR-OPT in tests, and as the solver column of Table 1.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.optimize import linprog

from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..telemetry import get_collector
from ..utils.errors import SolverError
from .duals import LPDuals
from .model import build_relaxation, extract_times

__all__ = ["LPFractionalScheduler", "solve_lp_relaxation", "solve_lp_with_duals"]


def solve_lp_relaxation(instance: ProblemInstance) -> tuple[Schedule, float]:
    """Solve the LP relaxation; returns (schedule, optimal total accuracy)."""
    tele = get_collector()
    with tele.span("lp.solve_relaxation"):
        with tele.span("lp.build_model"):
            model = build_relaxation(instance)
        with tele.span("lp.solve"):
            res = linprog(
                model.c,
                A_ub=model.a_ub,
                b_ub=model.b_ub,
                bounds=np.column_stack([model.lower, model.upper]),
                method="highs",
            )
    tele.counter("solver_runs_total", solver="lp").inc()
    if res.status != 0:
        tele.counter("solver_failures_total", solver="lp").inc()
        raise SolverError(f"LP relaxation failed: status={res.status} ({res.message})")
    tele.gauge("last_solve_accuracy", solver="lp").set(float(-res.fun))
    times = extract_times(model.layout, res.x)
    # Objective is −Σ z_j; total accuracy is its negation.
    return Schedule(instance, times), float(-res.fun)


def solve_lp_with_duals(instance: ProblemInstance) -> tuple[Schedule, float, LPDuals]:
    """Solve the LP relaxation and extract its shadow prices.

    Returns ``(schedule, optimal total accuracy, duals)`` where ``duals``
    carries the de-scaled multipliers of the budget, prefix-deadline and
    work-cap rows (see :class:`~repro.exact.duals.LPDuals`).  HiGHS
    reports marginals of ``A x ≤ b`` rows as ``dObj/db ≤ 0`` for the
    minimisation ``min −Σ z``; negating them yields accuracy gained per
    unit of slack, and the model's row scaling (work caps by
    ``1/f_max``, the budget by ``1/B``) is undone so the prices read in
    joules, seconds and FLOPs.
    """
    tele = get_collector()
    with tele.span("lp.solve_with_duals"):
        with tele.span("lp.build_model"):
            model = build_relaxation(instance)
        with tele.span("lp.solve"):
            res = linprog(
                model.c,
                A_ub=model.a_ub,
                b_ub=model.b_ub,
                bounds=np.column_stack([model.lower, model.upper]),
                method="highs",
            )
    tele.counter("solver_runs_total", solver="lp").inc()
    if res.status != 0:
        tele.counter("solver_failures_total", solver="lp").inc()
        raise SolverError(f"LP relaxation failed: status={res.status} ({res.message})")
    marginals = np.asarray(res.ineqlin.marginals, dtype=float)
    prices = np.clip(-marginals, 0.0, None)  # accuracy per unit of row slack

    n, m = instance.n_tasks, instance.n_machines
    tasks = instance.tasks
    n_epigraph = sum(task.accuracy.n_segments for task in tasks)
    # Row order (see exact.model._common_rows): epigraph block, then
    # prefix deadlines r-major, then work caps, then the budget row.
    deadline = prices[n_epigraph : n_epigraph + m * n].reshape(m, n).copy()
    cap_rows = prices[n_epigraph + m * n : n_epigraph + m * n + n]
    work_cap = cap_rows / np.asarray(tasks.f_max, dtype=float)
    budget_dual = 0.0
    if math.isfinite(instance.budget) and instance.budget > 0:
        budget_dual = float(prices[n_epigraph + m * n + n]) / instance.budget
    duals = LPDuals(budget=budget_dual, deadline=deadline, work_cap=work_cap)
    times = extract_times(model.layout, res.x)
    return Schedule(instance, times), float(-res.fun), duals


class LPFractionalScheduler(Scheduler):
    """Scheduler façade for the LP relaxation."""

    name = "DSCT-EA-FR-LP"

    def solve(self, instance: ProblemInstance) -> Schedule:
        schedule, _ = solve_lp_relaxation(instance)
        return schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        start = time.perf_counter()
        schedule, objective = solve_lp_relaxation(instance)
        elapsed = time.perf_counter() - start
        info = SolveInfo(
            solver=self.name,
            optimal=True,
            status="optimal",
            runtime_seconds=elapsed,
            extra={"objective_accuracy": objective},
        )
        return SolveResult(schedule, info)
