"""Exact LP solver for DSCT-EA-FR — the paper's "DSCT-EA-FR [Mosek]" role.

Solves the fractional relaxation (Eqs. (3a)–(3f)) with SciPy's bundled
HiGHS simplex/IPM.  Used as ground truth for the combinatorial
DSCT-EA-FR-OPT in tests, and as the solver column of Table 1.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..telemetry import get_collector
from ..utils.errors import SolverError
from .model import build_relaxation, extract_times

__all__ = ["LPFractionalScheduler", "solve_lp_relaxation"]


def solve_lp_relaxation(instance: ProblemInstance) -> tuple[Schedule, float]:
    """Solve the LP relaxation; returns (schedule, optimal total accuracy)."""
    tele = get_collector()
    with tele.span("lp.solve_relaxation"):
        with tele.span("lp.build_model"):
            model = build_relaxation(instance)
        with tele.span("lp.solve"):
            res = linprog(
                model.c,
                A_ub=model.a_ub,
                b_ub=model.b_ub,
                bounds=np.column_stack([model.lower, model.upper]),
                method="highs",
            )
    tele.counter("solver_runs_total", solver="lp").inc()
    if res.status != 0:
        tele.counter("solver_failures_total", solver="lp").inc()
        raise SolverError(f"LP relaxation failed: status={res.status} ({res.message})")
    tele.gauge("last_solve_accuracy", solver="lp").set(float(-res.fun))
    times = extract_times(model.layout, res.x)
    # Objective is −Σ z_j; total accuracy is its negation.
    return Schedule(instance, times), float(-res.fun)


class LPFractionalScheduler(Scheduler):
    """Scheduler façade for the LP relaxation."""

    name = "DSCT-EA-FR-LP"

    def solve(self, instance: ProblemInstance) -> Schedule:
        schedule, _ = solve_lp_relaxation(instance)
        return schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        start = time.perf_counter()
        schedule, objective = solve_lp_relaxation(instance)
        elapsed = time.perf_counter() - start
        info = SolveInfo(
            solver=self.name,
            optimal=True,
            status="optimal",
            runtime_seconds=elapsed,
            extra={"objective_accuracy": objective},
        )
        return SolveResult(schedule, info)
