"""Exact mathematical-programming solvers (the paper's MOSEK comparators)."""

from .discrete_mip import DiscreteLevelsMIPScheduler, solve_discrete_mip
from .duals import KKTReport, KKTViolation, LPDuals, certify
from .lp import LPFractionalScheduler, solve_lp_relaxation, solve_lp_with_duals
from .mip import MIPScheduler, solve_mip
from .model import LinearModel, VariableLayout, build_mip, build_relaxation, extract_times

__all__ = [
    "DiscreteLevelsMIPScheduler",
    "solve_discrete_mip",
    "KKTReport",
    "KKTViolation",
    "LPDuals",
    "certify",
    "LPFractionalScheduler",
    "solve_lp_relaxation",
    "solve_lp_with_duals",
    "MIPScheduler",
    "solve_mip",
    "LinearModel",
    "VariableLayout",
    "build_mip",
    "build_relaxation",
    "extract_times",
]
