"""Exact MIP solver for DSCT-EA — the paper's "DSCT-EA-Opt [cvx-MOSEK]" role.

Solves the full mixed-integer program (Eqs. (1a)–(1g)) with SciPy's
bundled HiGHS branch-and-bound.  A ``time_limit`` mirrors the paper's
60-second cap in the Fig. 4 runtime experiments; when the limit is hit
HiGHS returns the incumbent if one exists.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..telemetry import get_collector
from ..utils.errors import SolverError
from .model import build_mip, extract_times

__all__ = ["MIPScheduler", "solve_mip"]


def solve_mip(
    instance: ProblemInstance,
    *,
    time_limit: Optional[float] = None,
    mip_rel_gap: float = 1e-6,
) -> tuple[Schedule, SolveInfo]:
    """Solve DSCT-EA exactly (or to the time limit); returns schedule + info.

    Raises :class:`SolverError` if no incumbent solution exists at all
    (which cannot happen for valid instances — t = 0, arbitrary
    assignment is always feasible — so it signals a modelling bug).
    """
    tele = get_collector()
    with tele.span("mip.build_model"):
        model = build_mip(instance)
    constraints = [LinearConstraint(model.a_ub, -np.inf, model.b_ub)]
    if model.a_eq is not None:
        constraints.append(LinearConstraint(model.a_eq, model.b_eq, model.b_eq))
    options: dict = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    start = time.perf_counter()
    with tele.span("mip.solve"):
        res = milp(
            model.c,
            constraints=constraints,
            integrality=model.integrality,
            bounds=Bounds(model.lower, model.upper),
            options=options,
        )
    elapsed = time.perf_counter() - start
    tele.counter("solver_runs_total", solver="mip").inc()
    if res.x is None:
        tele.counter("solver_failures_total", solver="mip").inc()
        raise SolverError(f"MIP solver returned no solution: status={res.status} ({res.message})")
    times = extract_times(model.layout, res.x)
    # HiGHS leaves tolerance-level dust on machines whose assignment binary
    # is 0 (the linking row only bounds t by d_j · x_jr); zero them so the
    # schedule is cleanly integral.
    layout = model.layout
    assign = res.x[layout.n_t + layout.n_z :].reshape(layout.n, layout.m)
    times = np.where(assign >= 0.5, times, 0.0)
    schedule = Schedule(instance, times)
    timed_out = res.status == 1  # iteration/time limit
    if timed_out:
        tele.counter("mip_timeouts_total").inc()
    gap = getattr(res, "mip_gap", None)
    if gap is not None and math.isfinite(gap):
        tele.gauge("mip_last_gap").set(float(gap))
    info = SolveInfo(
        solver="DSCT-EA-OPT-MIP",
        optimal=res.status == 0,
        status="optimal" if res.status == 0 else ("time_limit" if timed_out else f"status_{res.status}"),
        runtime_seconds=elapsed,
        extra={
            "objective_accuracy": float(-res.fun) if res.fun is not None else math.nan,
            "mip_gap": float(getattr(res, "mip_gap", math.nan) or math.nan),
        },
    )
    return schedule, info


class MIPScheduler(Scheduler):
    """Scheduler façade for the exact MIP."""

    name = "DSCT-EA-OPT-MIP"

    def __init__(self, *, time_limit: Optional[float] = None, mip_rel_gap: float = 1e-6):
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(self, instance: ProblemInstance) -> Schedule:
        schedule, _ = solve_mip(instance, time_limit=self.time_limit, mip_rel_gap=self.mip_rel_gap)
        return schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        schedule, info = solve_mip(instance, time_limit=self.time_limit, mip_rel_gap=self.mip_rel_gap)
        return SolveResult(schedule, info)
