"""Exact MIP over *discrete* compression levels.

EDF-3CompressionLevels is a heuristic; to know what the discrete-level
*model* (rather than the heuristic) costs relative to continuous
compression, this module solves the discrete problem exactly: every
task picks one (level, machine) pair — or stays unscheduled — subject to
the usual prefix deadlines and the energy budget.

Variables: binaries ``y[j, l, r]`` (task j runs level l on machine r).
A task's processing time is then fixed: ``F_{jl} / s_r`` where ``F_{jl}``
is the FLOP demand of level l for task j.

* objective: max Σ y·a_l  (skip ⇒ a_min);
* assignment: Σ_{l,r} y[j,l,r] ≤ 1;
* prefix deadlines: Σ_{i≤j} Σ_l y[i,l,r]·F_{il}/s_r ≤ d_j  ∀ j, r;
* budget: Σ y·F/E_r ≤ B.

Comparing DSCT-EA-APPROX against this optimum isolates the *modelling*
gain of continuous compression from the *algorithmic* gain over the EDF
heuristic — the ablation behind the paper's "discrete levels lose"
claim.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..baselines.discrete_levels import PAPER_LEVELS
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..utils.errors import SolverError, ValidationError

__all__ = ["DiscreteLevelsMIPScheduler", "solve_discrete_mip"]


def solve_discrete_mip(
    instance: ProblemInstance,
    levels: Sequence[float] = PAPER_LEVELS,
    *,
    time_limit: Optional[float] = None,
) -> tuple[Schedule, SolveInfo]:
    """Solve the discrete-level problem exactly (or to the time limit)."""
    levels = tuple(sorted(levels))
    if not levels or any(not 0.0 < lv <= 1.0 for lv in levels):
        raise ValidationError(f"levels must be fractions in (0, 1], got {levels}")
    n, m = instance.n_tasks, instance.n_machines
    L = len(levels)
    speeds = instance.cluster.speeds
    effs = instance.cluster.efficiencies
    deadlines = instance.tasks.deadlines

    # Per-task per-level FLOP demand and achieved accuracy.
    demand = np.zeros((n, L))
    gain = np.zeros((n, L))
    for j, task in enumerate(instance.tasks):
        for l, lv in enumerate(levels):
            target = min(lv, task.a_max)
            demand[j, l] = task.accuracy.inverse(target)
            gain[j, l] = target - task.a_min  # objective is gain over the floor

    def col(j: int, l: int, r: int) -> int:
        return (j * L + l) * m + r

    n_cols = n * L * m
    c = np.zeros(n_cols)
    for j in range(n):
        for l in range(L):
            for r in range(m):
                c[col(j, l, r)] = -gain[j, l]

    rows, cols, vals, rhs = [], [], [], []

    def add_row(cs, vs, b):
        row = len(rhs)
        rows.extend([row] * len(cs))
        cols.extend(cs)
        vals.extend(vs)
        rhs.append(b)

    # assignment: at most one (level, machine) per task
    for j in range(n):
        add_row([col(j, l, r) for l in range(L) for r in range(m)], [1.0] * (L * m), 1.0)
    # prefix deadlines
    for r in range(m):
        for j in range(n):
            cs, vs = [], []
            for i in range(j + 1):
                for l in range(L):
                    cs.append(col(i, l, r))
                    vs.append(float(demand[i, l] / speeds[r]))
            add_row(cs, vs, float(deadlines[j]))
    # budget
    if math.isfinite(instance.budget):
        scale = instance.budget if instance.budget > 0 else 1.0
        cs, vs = [], []
        for j in range(n):
            for l in range(L):
                for r in range(m):
                    cs.append(col(j, l, r))
                    vs.append(float(demand[j, l] / effs[r]) / scale)
        add_row(cs, vs, 1.0 if instance.budget > 0 else 0.0)

    from scipy import sparse

    a_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(len(rhs), n_cols)).tocsr()
    options: dict = {"mip_rel_gap": 1e-6}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    start = time.perf_counter()
    res = milp(
        c,
        constraints=[LinearConstraint(a_ub, -np.inf, np.asarray(rhs))],
        integrality=np.ones(n_cols),
        bounds=Bounds(np.zeros(n_cols), np.ones(n_cols)),
        options=options,
    )
    elapsed = time.perf_counter() - start
    if res.x is None:
        raise SolverError(f"discrete MIP returned no solution: status={res.status} ({res.message})")

    times = np.zeros((n, m))
    chosen = np.asarray(res.x).round()
    for j in range(n):
        for l in range(L):
            for r in range(m):
                if chosen[col(j, l, r)] >= 0.5:
                    times[j, r] += demand[j, l] / speeds[r]
    schedule = Schedule(instance, times)
    info = SolveInfo(
        solver="DISCRETE-LEVELS-MIP",
        optimal=res.status == 0,
        status="optimal" if res.status == 0 else ("time_limit" if res.status == 1 else f"status_{res.status}"),
        runtime_seconds=elapsed,
        extra={"levels": levels},
    )
    return schedule, info


class DiscreteLevelsMIPScheduler(Scheduler):
    """Scheduler façade for the exact discrete-level optimum."""

    name = "DISCRETE-LEVELS-MIP"

    def __init__(self, levels: Sequence[float] = PAPER_LEVELS, *, time_limit: Optional[float] = None):
        self.levels = tuple(sorted(levels))
        self.time_limit = time_limit

    def solve(self, instance: ProblemInstance) -> Schedule:
        schedule, _ = solve_discrete_mip(instance, self.levels, time_limit=self.time_limit)
        return schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        schedule, info = solve_discrete_mip(instance, self.levels, time_limit=self.time_limit)
        return SolveResult(schedule, info)
