"""Shared matrix builders for the LP / MIP formulations.

Variable layout (column order) for an instance with ``n`` tasks and ``m``
machines:

* ``t_jr`` — processing times, row-major: column ``j*m + r``  (n·m cols);
* ``z_j``  — accuracy epigraph variables: column ``n·m + j``   (n cols);
* ``x_jr`` — assignment binaries (MIP only): column
  ``n·m + n + j*m + r`` (n·m cols).

The objective is ``min Σ_j −z_j`` (equivalently Eq. (1a)/(3a): maximise
total accuracy; the constant ``n`` offset of the accuracy-error form is
dropped).  Constraint blocks follow Eqs. (3b)–(3e) plus, for the MIP,
(1d)–(1e).  All inequality rows are returned as ``A x ≤ b``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import sparse

from ..core.instance import ProblemInstance

__all__ = ["VariableLayout", "LinearModel", "build_relaxation", "build_mip", "extract_times"]


@dataclass(frozen=True)
class VariableLayout:
    """Column indexing for the shared variable order."""

    n: int
    m: int
    with_assignment: bool

    @property
    def n_t(self) -> int:
        return self.n * self.m

    @property
    def n_z(self) -> int:
        return self.n

    @property
    def n_x(self) -> int:
        return self.n * self.m if self.with_assignment else 0

    @property
    def n_cols(self) -> int:
        return self.n_t + self.n_z + self.n_x

    def t(self, j: int, r: int) -> int:
        """Column of ``t_jr``."""
        return j * self.m + r

    def z(self, j: int) -> int:
        """Column of ``z_j``."""
        return self.n_t + j

    def x(self, j: int, r: int) -> int:
        """Column of ``x_jr`` (MIP only)."""
        assert self.with_assignment
        return self.n_t + self.n_z + j * self.m + r


@dataclass
class LinearModel:
    """A complete ``min c·x  s.t.  A_ub x ≤ b_ub, A_eq x = b_eq, lb ≤ x ≤ ub``."""

    layout: VariableLayout
    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: Optional[sparse.csr_matrix]
    b_eq: Optional[np.ndarray]
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray  # 0 continuous, 1 integer (per column)


class _RowBuilder:
    """Accumulates sparse inequality rows in COO form."""

    def __init__(self, n_cols: int):
        self.n_cols = n_cols
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []
        self.rhs: List[float] = []

    def add(self, cols: List[int], vals: List[float], rhs: float) -> None:
        row = len(self.rhs)
        self.rows.extend([row] * len(cols))
        self.cols.extend(cols)
        self.vals.extend(vals)
        self.rhs.append(rhs)

    def matrix(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        a = sparse.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=(len(self.rhs), self.n_cols)
        ).tocsr()
        return a, np.asarray(self.rhs, dtype=float)


def _common_rows(instance: ProblemInstance, layout: VariableLayout, builder: _RowBuilder) -> None:
    """Rows shared by LP and MIP: (3b) envelope, (3c) deadlines, (3d) caps, (3e) budget."""
    tasks, cluster = instance.tasks, instance.cluster
    n, m = layout.n, layout.m
    speeds = cluster.speeds
    powers = cluster.powers
    deadlines = tasks.deadlines

    # (3b) accuracy epigraph: z_j − α_jk Σ_r s_r t_jr ≤ b_jk per segment.
    for j, task in enumerate(tasks):
        acc = task.accuracy
        bp, vals_at_bp, slopes = acc.breakpoints, acc.breakpoint_accuracies, acc.slopes
        for k in range(acc.n_segments):
            alpha = float(slopes[k])
            intercept = float(vals_at_bp[k] - alpha * bp[k])
            cols = [layout.t(j, r) for r in range(m)] + [layout.z(j)]
            coeffs = [-alpha * float(speeds[r]) for r in range(m)] + [1.0]
            builder.add(cols, coeffs, intercept)

    # (3c) prefix deadlines: Σ_{i≤j} t_ir ≤ d_j for every machine.
    for r in range(m):
        for j in range(n):
            cols = [layout.t(i, r) for i in range(j + 1)]
            builder.add(cols, [1.0] * (j + 1), float(deadlines[j]))

    # (3d) work caps, scaled to O(1) coefficients: Σ_r (s_r / f_max) t_jr ≤ 1.
    for j in range(n):
        cap = float(tasks.f_max[j])
        cols = [layout.t(j, r) for r in range(m)]
        builder.add(cols, [float(speeds[r]) / cap for r in range(m)], 1.0)

    # (3e) energy budget, scaled by B: Σ_{j,r} (P_r / B) t_jr ≤ 1.
    if math.isfinite(instance.budget):
        scale = instance.budget if instance.budget > 0 else 1.0
        cols = [layout.t(j, r) for j in range(n) for r in range(m)]
        coeffs = [float(powers[r]) / scale for _j in range(n) for r in range(m)]
        builder.add(cols, coeffs, 1.0 if instance.budget > 0 else 0.0)


def build_relaxation(instance: ProblemInstance) -> LinearModel:
    """The LP of DSCT-EA-FR (Eqs. (3a)–(3f))."""
    layout = VariableLayout(instance.n_tasks, instance.n_machines, with_assignment=False)
    builder = _RowBuilder(layout.n_cols)
    _common_rows(instance, layout, builder)
    a_ub, b_ub = builder.matrix()

    c = np.zeros(layout.n_cols)
    c[layout.n_t :] = -1.0
    lower = np.zeros(layout.n_cols)
    upper = np.full(layout.n_cols, np.inf)
    upper[layout.n_t :] = 1.0  # accuracies are fractions
    integrality = np.zeros(layout.n_cols)
    return LinearModel(layout, c, a_ub, b_ub, None, None, lower, upper, integrality)


def build_mip(instance: ProblemInstance) -> LinearModel:
    """The MIP of DSCT-EA (Eqs. (1a)–(1g), epigraph-linearised like the LP)."""
    layout = VariableLayout(instance.n_tasks, instance.n_machines, with_assignment=True)
    builder = _RowBuilder(layout.n_cols)
    _common_rows(instance, layout, builder)

    # (1d) linking: t_jr − d_j x_jr ≤ 0.
    deadlines = instance.tasks.deadlines
    for j in range(layout.n):
        for r in range(layout.m):
            builder.add([layout.t(j, r), layout.x(j, r)], [1.0, -float(deadlines[j])], 0.0)
    a_ub, b_ub = builder.matrix()

    # (1e) each task on exactly one machine.
    eq = _RowBuilder(layout.n_cols)
    for j in range(layout.n):
        eq.add([layout.x(j, r) for r in range(layout.m)], [1.0] * layout.m, 1.0)
    a_eq, b_eq = eq.matrix()

    c = np.zeros(layout.n_cols)
    c[layout.n_t : layout.n_t + layout.n_z] = -1.0
    lower = np.zeros(layout.n_cols)
    upper = np.full(layout.n_cols, np.inf)
    upper[layout.n_t : layout.n_t + layout.n_z] = 1.0
    upper[layout.n_t + layout.n_z :] = 1.0  # binaries
    integrality = np.zeros(layout.n_cols)
    integrality[layout.n_t + layout.n_z :] = 1.0
    return LinearModel(layout, c, a_ub, b_ub, a_eq, b_eq, lower, upper, integrality)


def extract_times(layout: VariableLayout, x: np.ndarray) -> np.ndarray:
    """Recover the (n, m) ``t_jr`` matrix from a solver vector."""
    t = np.asarray(x[: layout.n_t], dtype=float).reshape(layout.n, layout.m)
    return np.clip(t, 0.0, None)
