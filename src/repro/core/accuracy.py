"""Accuracy functions: the latency/accuracy trade-off of compressible tasks.

The paper models each inference task with a concave, non-decreasing
*accuracy function* ``a_j(f)`` mapping the number of floating-point
operations dedicated to the task to the classification accuracy achieved
(Sec. 3.1).  Two families are implemented:

* :class:`ExponentialAccuracy` — the smooth saturating curve observed for
  Once-For-All slimmable networks (Fig. 2):
  ``a(f) = a_max − (a_max − a_min)·exp(−θ·f / (a_max − a_min))``,
  parameterised by the *task efficiency* θ = a'(0), the slope at zero.
* :class:`PiecewiseLinearAccuracy` — the concave piecewise-linear
  functions the algorithms actually consume.  The experiments build them
  by fitting ``K = 5`` segments to an exponential curve
  (:func:`fit_piecewise`).

All work ``f`` is in FLOP (see :mod:`repro.utils.units`); accuracies are
fractions in ``[0, 1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..utils.errors import ValidationError
from ..utils.validation import check_fraction, check_positive, check_sorted, require

__all__ = [
    "AccuracyFunction",
    "PiecewiseLinearAccuracy",
    "ExponentialAccuracy",
    "fit_piecewise",
    "SLOPE_TOLERANCE",
]

#: Relative tolerance used when validating that slopes are non-increasing.
SLOPE_TOLERANCE = 1e-9


class AccuracyFunction:
    """Abstract interface shared by all accuracy models."""

    @property
    def a_min(self) -> float:
        """Accuracy with zero work (``a(0)``, a random guess)."""
        raise NotImplementedError

    @property
    def a_max(self) -> float:
        """Accuracy at full, uncompressed execution."""
        raise NotImplementedError

    @property
    def f_max(self) -> float:
        """Work (FLOP) required for full execution."""
        raise NotImplementedError

    def value(self, f: float) -> float:
        """Accuracy after ``f`` FLOP (clamped to ``[0, f_max]``)."""
        raise NotImplementedError

    def __call__(self, f: float) -> float:
        return self.value(f)


@dataclass(frozen=True)
class _Segment:
    """One linear piece of a piecewise-linear accuracy function.

    Mirrors the ``listSegments`` records of Algorithms 1–3: the slope, the
    position (0-based index ``k``), and the FLOP span of the piece.
    """

    position: int
    slope: float
    f_start: float
    f_end: float

    @property
    def total_flops(self) -> float:
        """FLOP needed to traverse the whole segment."""
        return self.f_end - self.f_start

    @property
    def accuracy_gain(self) -> float:
        """Accuracy gained by fully processing this segment."""
        return self.slope * self.total_flops


class PiecewiseLinearAccuracy(AccuracyFunction):
    """Concave, non-decreasing piecewise-linear accuracy function.

    Parameters
    ----------
    breakpoints:
        FLOP values ``p_0 < p_1 < ... < p_K`` with ``p_0 = 0`` and
        ``p_K = f_max`` (paper Eq. (2); note the paper indexes pieces
        ``1..K`` and breakpoints ``1..K+1``, we use 0-based arrays).
    accuracies:
        Accuracy at each breakpoint; ``accuracies[0] = a_min``,
        ``accuracies[-1] = a_max``.  Must be non-decreasing and concave
        (chord slopes non-increasing).
    """

    def __init__(self, breakpoints: Sequence[float], accuracies: Sequence[float]) -> None:
        p = np.asarray(breakpoints, dtype=float)
        a = np.asarray(accuracies, dtype=float)
        if p.ndim != 1 or a.ndim != 1 or p.size != a.size:
            raise ValidationError(
                f"breakpoints and accuracies must be equal-length 1-D sequences, "
                f"got shapes {p.shape} and {a.shape}"
            )
        require(p.size >= 2, "need at least two breakpoints (one segment)")
        require(p[0] == 0.0, f"first breakpoint must be 0, got {p[0]!r}")
        check_sorted(p, "breakpoints", strict=True)
        for ai in a:
            check_fraction(float(ai), "accuracy value")
        check_sorted(a, "accuracies")
        slopes = np.diff(a) / np.diff(p)
        # Concavity: slopes non-increasing, up to floating tolerance scaled
        # by the largest slope in the function.
        scale = float(np.max(np.abs(slopes))) if slopes.size else 0.0
        if np.any(np.diff(slopes) > SLOPE_TOLERANCE * max(scale, 1e-300)):
            raise ValidationError(f"accuracy function must be concave; got slopes {slopes.tolist()}")
        self._p = p
        self._a = a
        self._slopes = slopes

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_slopes(
        cls,
        slopes: Sequence[float],
        widths: Sequence[float],
        a_min: float = 0.0,
    ) -> "PiecewiseLinearAccuracy":
        """Build from per-segment slopes and FLOP widths (a_min at f=0)."""
        s = np.asarray(slopes, dtype=float)
        w = np.asarray(widths, dtype=float)
        if s.shape != w.shape:
            raise ValidationError("slopes and widths must have equal length")
        for wi in w:
            check_positive(float(wi), "segment width")
        p = np.concatenate([[0.0], np.cumsum(w)])
        a = np.concatenate([[a_min], a_min + np.cumsum(s * w)])
        return cls(p, a)

    @classmethod
    def single_segment(cls, slope: float, f_max: float, a_min: float = 0.0) -> "PiecewiseLinearAccuracy":
        """Degenerate one-piece (purely linear) function; handy in tests."""
        return cls.from_slopes([slope], [f_max], a_min)

    # -- basic properties --------------------------------------------------

    @property
    def a_min(self) -> float:
        return float(self._a[0])

    @property
    def a_max(self) -> float:
        return float(self._a[-1])

    @property
    def f_max(self) -> float:
        return float(self._p[-1])

    @property
    def breakpoints(self) -> np.ndarray:
        """Breakpoint FLOP values (read-only view)."""
        v = self._p.view()
        v.flags.writeable = False
        return v

    @property
    def breakpoint_accuracies(self) -> np.ndarray:
        """Accuracy at each breakpoint (read-only view)."""
        v = self._a.view()
        v.flags.writeable = False
        return v

    @property
    def slopes(self) -> np.ndarray:
        """Per-segment slopes, non-increasing (read-only view)."""
        v = self._slopes.view()
        v.flags.writeable = False
        return v

    @property
    def n_segments(self) -> int:
        """Number of linear pieces ``K``."""
        return int(self._slopes.size)

    @property
    def first_slope(self) -> float:
        """Slope of the first segment — the paper's task efficiency θ."""
        return float(self._slopes[0])

    @property
    def last_slope(self) -> float:
        """Slope of the final segment (the smallest marginal gain)."""
        return float(self._slopes[-1])

    # -- evaluation ---------------------------------------------------------

    def value(self, f: float) -> float:
        """Accuracy after ``f`` FLOP; clamps outside ``[0, f_max]``."""
        return float(np.interp(f, self._p, self._a))

    def value_array(self, f: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        return np.interp(np.asarray(f, dtype=float), self._p, self._a)

    def marginal_gain(self, f: float) -> float:
        """Right derivative ``a'+(f)``: gain rate of extra work at ``f``.

        Zero at/after ``f_max`` (extra work cannot help).
        """
        if f >= self.f_max:
            return 0.0
        f = max(f, 0.0)
        k = int(np.searchsorted(self._p, f, side="right") - 1)
        k = min(max(k, 0), self.n_segments - 1)
        return float(self._slopes[k])

    def marginal_loss(self, f: float) -> float:
        """Left derivative ``a'−(f)``: loss rate of removing work at ``f``.

        At ``f = 0`` returns the first slope (nothing can be removed, but
        the value keeps comparisons total, matching the paper's usage).
        """
        if f <= 0.0:
            return float(self._slopes[0])
        f = min(f, self.f_max)
        k = int(np.searchsorted(self._p, f, side="left") - 1)
        k = min(max(k, 0), self.n_segments - 1)
        return float(self._slopes[k])

    def segment_index(self, f: float) -> int:
        """Index of the segment containing ``f`` (right-continuous)."""
        if f >= self.f_max:
            return self.n_segments - 1
        f = max(f, 0.0)
        k = int(np.searchsorted(self._p, f, side="right") - 1)
        return min(max(k, 0), self.n_segments - 1)

    def inverse(self, accuracy: float) -> float:
        """Minimum FLOP needed to reach ``accuracy``.

        Raises :class:`ValidationError` when the target exceeds ``a_max``.
        Plateau segments (zero slope) return the left edge of the plateau.
        """
        if accuracy > self.a_max:
            raise ValidationError(f"accuracy {accuracy!r} exceeds a_max {self.a_max!r}")
        if accuracy <= self.a_min:
            return 0.0
        # np.interp on the (a, p) graph would mis-handle plateaus; walk
        # segments explicitly (K is tiny, typically 5).
        for k in range(self.n_segments):
            a_lo, a_hi = self._a[k], self._a[k + 1]
            if accuracy <= a_hi:
                if a_hi == a_lo:
                    return float(self._p[k])
                frac = (accuracy - a_lo) / (a_hi - a_lo)
                return float(self._p[k] + frac * (self._p[k + 1] - self._p[k]))
        return self.f_max

    def scale_flops(self, factor: float) -> "PiecewiseLinearAccuracy":
        """Stretch the work axis by ``factor`` (accuracies unchanged).

        Used to lift a per-image accuracy/FLOPs profile to a batch task:
        a batch of B images compressed uniformly reaches the per-image
        accuracy at B× the work, so breakpoints scale by B and slopes by
        1/B.
        """
        check_positive(factor, "factor")
        return PiecewiseLinearAccuracy(self._p * factor, self._a)

    def segments(self) -> list[_Segment]:
        """The pieces as :class:`_Segment` records (for Algorithms 1–3)."""
        return [
            _Segment(
                position=k,
                slope=float(self._slopes[k]),
                f_start=float(self._p[k]),
                f_end=float(self._p[k + 1]),
            )
            for k in range(self.n_segments)
        ]

    def __repr__(self) -> str:
        return (
            f"PiecewiseLinearAccuracy(K={self.n_segments}, a_min={self.a_min:.4g}, "
            f"a_max={self.a_max:.4g}, f_max={self.f_max:.4g})"
        )


class ExponentialAccuracy(AccuracyFunction):
    """Saturating exponential accuracy curve of a slimmable network.

    ``a(f) = a_max − Δ·exp(−θ f / Δ)`` with ``Δ = a_max − a_min``, so that
    ``a(0) = a_min`` and ``a'(0) = θ`` (the paper's task efficiency: the
    slope of the first fitted segment approaches θ as the fit refines).

    The curve only reaches ``a_max`` asymptotically; ``f_max`` is defined
    as the work covering a ``coverage`` fraction of Δ (default 99.9 %),
    mirroring how a finite largest OFA subnetwork realises ~a_max.
    """

    def __init__(
        self,
        theta: float,
        a_min: float = 0.001,
        a_max: float = 0.82,
        coverage: float = 0.99999,
    ) -> None:
        check_positive(theta, "theta")
        check_fraction(a_min, "a_min")
        check_fraction(a_max, "a_max")
        require(a_max > a_min, f"a_max ({a_max}) must exceed a_min ({a_min})")
        require(0.0 < coverage < 1.0, f"coverage must lie in (0, 1), got {coverage}")
        self._theta = float(theta)
        self._a_min = float(a_min)
        self._a_max = float(a_max)
        self._coverage = float(coverage)
        delta = a_max - a_min
        # a(f_max) = a_max − Δ(1 − coverage)  ⇔  exp(−θ f_max/Δ) = 1 − coverage
        self._f_max = -delta * math.log1p(-coverage) / theta

    @property
    def theta(self) -> float:
        """Task efficiency θ = a'(0)."""
        return self._theta

    @property
    def a_min(self) -> float:
        return self._a_min

    @property
    def a_max(self) -> float:
        return self._a_max

    @property
    def f_max(self) -> float:
        return self._f_max

    @property
    def delta(self) -> float:
        """Accuracy span ``a_max − a_min``."""
        return self._a_max - self._a_min

    def value(self, f: float) -> float:
        """Accuracy after ``f`` FLOP (clamped to ``[0, f_max]``)."""
        f = min(max(f, 0.0), self._f_max)
        return self._a_max - self.delta * math.exp(-self._theta * f / self.delta)

    def value_array(self, f: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value`."""
        f = np.clip(np.asarray(f, dtype=float), 0.0, self._f_max)
        return self._a_max - self.delta * np.exp(-self._theta * f / self.delta)

    def derivative(self, f: float) -> float:
        """``a'(f) = θ·exp(−θ f / Δ)``."""
        f = min(max(f, 0.0), self._f_max)
        return self._theta * math.exp(-self._theta * f / self.delta)

    def f_for_accuracy(self, accuracy: float) -> float:
        """Work needed to reach ``accuracy`` (inverse of :meth:`value`)."""
        if accuracy <= self._a_min:
            return 0.0
        top = self.value(self._f_max)
        if accuracy >= top:
            return self._f_max
        return -self.delta * math.log((self._a_max - accuracy) / self.delta) / self._theta

    def __repr__(self) -> str:
        return (
            f"ExponentialAccuracy(theta={self._theta:.4g}, a_min={self._a_min:.4g}, "
            f"a_max={self._a_max:.4g}, f_max={self._f_max:.4g})"
        )


def _chord_sag(u: float, x1: float, x2: float) -> float:
    """Max deviation of ``1 − e^{−x}`` above its chord on ``[x1, x2]``.

    ``u = e^{−x1}`` is passed in to avoid recomputation.  Closed form:
    with chord slope ``q = (e^{−x1} − e^{−x2}) / (x2 − x1)``, the maximum
    of curve − chord sits where the derivative matches ``q`` and equals
    ``u − q·(1 + ln(u/q))``.
    """
    w = x2 - x1
    if w <= 0.0:
        return 0.0
    v = math.exp(-x2)
    q = (u - v) / w
    if q <= 0.0:
        return u
    return max(u - q * (1.0 + math.log(u / q)), 0.0)


def _extend_segment(x1: float, x_end: float, sag: float) -> float:
    """Largest ``x2 ≤ x_end`` whose chord from ``x1`` sags at most ``sag``."""
    u = math.exp(-x1)
    if _chord_sag(u, x1, x_end) <= sag:
        return x_end
    lo, hi = x1, x_end
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if _chord_sag(u, x1, mid) <= sag:
            lo = mid
        else:
            hi = mid
    return lo


@lru_cache(maxsize=256)
def _minimax_breakpoints(x_total: float, n_segments: int) -> tuple[float, ...]:
    """Equal-sag breakpoints of ``1 − e^{−x}`` over ``[0, x_total]``.

    Bisects the per-segment sag level until exactly ``n_segments``
    greedy maximal segments cover the interval — the minimax-error
    concave interpolation.  Normalised, so one cache entry serves every
    task sharing the same coverage parameter regardless of θ.
    """

    def segments_needed(sag: float) -> tuple[int, list[float]]:
        points = [0.0]
        x = 0.0
        for _ in range(n_segments + 1):
            if x >= x_total * (1.0 - 1e-12):
                break
            x = _extend_segment(x, x_total, sag)
            points.append(x)
        return len(points) - 1, points

    lo, hi = 0.0, 1.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        count, _pts = segments_needed(mid)
        if count <= n_segments:
            hi = mid
        else:
            lo = mid
    count, points = segments_needed(hi)
    points[-1] = x_total
    # Degenerate tiny curves may need fewer pieces; pad by splitting the
    # last segment so callers always get n_segments + 1 breakpoints.
    while len(points) < n_segments + 1:
        points.insert(-1, 0.5 * (points[-2] + points[-1]))
    return tuple(points)


def fit_piecewise(
    curve: ExponentialAccuracy,
    n_segments: int = 5,
    *,
    spacing: str = "minimax",
) -> PiecewiseLinearAccuracy:
    """Fit a concave ``n_segments``-piece linear function to ``curve``.

    This reproduces the experimental setup of Sec. 6: "we modeled the
    accuracy function of a task j as piecewise linear function, constructed
    by performing a linear regression with 5 segments over an exponential
    accuracy function of parameter θ_j".

    The fit interpolates the exponential at ``n_segments + 1`` breakpoints
    (chords of a concave function have non-increasing slopes, so the result
    is concave by construction — a least-squares fit with free ordinates
    can violate concavity, which would poison the schedulers).

    ``spacing`` selects breakpoint placement:

    * ``"minimax"`` (default) — equal-sag breakpoints minimising the
      worst-case interpolation error, the faithful stand-in for the
      paper's 5-segment regression.  The alternatives leave large sags
      somewhere: equal-accuracy steps make the last piece span most of
      the work axis, uniform steps waste pieces on the flat tail.
    * ``"geometric"`` — breakpoints at equal *accuracy* steps.
    * ``"uniform"`` — equally spaced in FLOP.
    """
    require(n_segments >= 1, f"n_segments must be >= 1, got {n_segments}")
    f_max = curve.f_max
    if spacing == "uniform":
        p = np.linspace(0.0, f_max, n_segments + 1)
    elif spacing == "geometric":
        top = curve.value(f_max)
        targets = np.linspace(curve.a_min, top, n_segments + 1)
        p = np.array([curve.f_for_accuracy(a) for a in targets])
        p[0], p[-1] = 0.0, f_max
        # Guard against duplicate breakpoints from float rounding.
        for i in range(1, p.size):
            if p[i] <= p[i - 1]:
                p[i] = p[i - 1] + f_max * 1e-12
    elif spacing == "minimax":
        # Normalised coordinates: x = θ f / Δ, so x_total = θ f_max / Δ.
        x_total = curve.theta * f_max / curve.delta
        xs = np.array(_minimax_breakpoints(x_total, n_segments))
        p = xs * curve.delta / curve.theta
        p[0], p[-1] = 0.0, f_max
    else:
        raise ValidationError(f"unknown spacing {spacing!r}")
    a = curve.value_array(p)
    # Clamp top to a_max exactly so a(f_max) == a_max for the fitted model:
    # the algorithms treat the fitted curve as the ground truth.
    a = a * (curve.a_max / a[-1]) if a[-1] > 0 else a
    a[0] = curve.a_min
    return PiecewiseLinearAccuracy(p, np.minimum(a, 1.0))
