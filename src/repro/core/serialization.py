"""JSON (de)serialisation of the core data model.

Instances and schedules round-trip through plain dicts / JSON files so
that experiment inputs can be archived, shared, and replayed — a
production necessity the in-memory model alone does not cover.

The format is versioned; loaders reject unknown versions rather than
guessing.  All quantities are stored in SI units (FLOP, s, J, W) exactly
as held in memory, so round-trips are bit-faithful.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from ..utils.errors import ValidationError
from ..utils.fileio import atomic_write
from .accuracy import PiecewiseLinearAccuracy
from .instance import ProblemInstance
from .machine import Cluster, Machine
from .schedule import Schedule
from .task import Task, TaskSet

__all__ = [
    "FORMAT_VERSION",
    "cluster_to_dict",
    "cluster_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]

FORMAT_VERSION = 1


def _accuracy_to_dict(acc: PiecewiseLinearAccuracy) -> Dict[str, Any]:
    return {
        "breakpoints": acc.breakpoints.tolist(),
        "accuracies": acc.breakpoint_accuracies.tolist(),
    }


def _accuracy_from_dict(data: Dict[str, Any]) -> PiecewiseLinearAccuracy:
    return PiecewiseLinearAccuracy(data["breakpoints"], data["accuracies"])


def cluster_to_dict(cluster: Cluster) -> list:
    """Serialise a cluster as a JSON-ready machine list."""
    return [
        {
            "speed": m.speed,
            "efficiency": m.efficiency,
            "name": m.name,
            "idle_power": m.idle_power,
        }
        for m in cluster
    ]


def cluster_from_dict(machines: list) -> Cluster:
    """Rebuild a cluster from :func:`cluster_to_dict` output."""
    return Cluster(
        [
            Machine(
                speed=m["speed"],
                efficiency=m["efficiency"],
                name=m.get("name"),
                idle_power=m.get("idle_power", 0.0),
            )
            for m in machines
        ]
    )


def instance_to_dict(instance: ProblemInstance) -> Dict[str, Any]:
    """Serialise a problem instance to a JSON-ready dict."""
    return {
        "format": "repro.instance",
        "version": FORMAT_VERSION,
        "budget": instance.budget if math.isfinite(instance.budget) else "inf",
        "machines": cluster_to_dict(instance.cluster),
        "tasks": [
            {
                "deadline": t.deadline,
                "name": t.name,
                "accuracy": _accuracy_to_dict(t.accuracy),
            }
            for t in instance.tasks
        ],
    }


def _check_header(data: Dict[str, Any], expected: str) -> None:
    if not isinstance(data, dict) or data.get("format") != expected:
        raise ValidationError(f"not a {expected} document")
    if data.get("version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported {expected} version {data.get('version')!r} (expected {FORMAT_VERSION})"
        )


def instance_from_dict(data: Dict[str, Any]) -> ProblemInstance:
    """Rebuild a problem instance from :func:`instance_to_dict` output."""
    _check_header(data, "repro.instance")
    cluster = cluster_from_dict(data["machines"])
    tasks = TaskSet(
        [
            Task(
                deadline=t["deadline"],
                accuracy=_accuracy_from_dict(t["accuracy"]),
                name=t.get("name"),
            )
            for t in data["tasks"]
        ]
    )
    budget = data["budget"]
    return ProblemInstance(tasks, cluster, math.inf if budget == "inf" else float(budget))


def save_instance(instance: ProblemInstance, path: Union[str, Path]) -> None:
    """Write an instance as JSON (atomically — a crash never corrupts it)."""
    atomic_write(path, json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: Union[str, Path]) -> ProblemInstance:
    """Read an instance written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def schedule_to_dict(schedule: Schedule, *, embed_instance: bool = True) -> Dict[str, Any]:
    """Serialise a schedule (optionally with its instance inline)."""
    out: Dict[str, Any] = {
        "format": "repro.schedule",
        "version": FORMAT_VERSION,
        "times": np.asarray(schedule.times).tolist(),
    }
    if embed_instance:
        out["instance"] = instance_to_dict(schedule.instance)
    return out


def schedule_from_dict(
    data: Dict[str, Any], instance: Union[ProblemInstance, None] = None
) -> Schedule:
    """Rebuild a schedule; the instance comes inline or as an argument."""
    _check_header(data, "repro.schedule")
    if instance is None:
        if "instance" not in data:
            raise ValidationError("schedule document has no embedded instance; pass one explicitly")
        instance = instance_from_dict(data["instance"])
    times = np.asarray(data["times"], dtype=float)
    return Schedule(instance, times)


def save_schedule(schedule: Schedule, path: Union[str, Path], *, embed_instance: bool = True) -> None:
    """Write a schedule (and by default its instance) as JSON, atomically."""
    atomic_write(path, json.dumps(schedule_to_dict(schedule, embed_instance=embed_instance), indent=2))


def load_schedule(path: Union[str, Path], instance: Union[ProblemInstance, None] = None) -> Schedule:
    """Read a schedule written by :func:`save_schedule`."""
    return schedule_from_dict(json.loads(Path(path).read_text()), instance)
