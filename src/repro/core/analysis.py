"""Schedule analytics: what did the optimiser actually decide?

:func:`describe` turns a schedule into the quantities an operator asks
about — per-task compression ratios, accuracy left on the table, the
energy/work split across machines, and budget utilisation — and renders
them as text (used by the CLI and the examples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .schedule import Schedule

__all__ = ["ScheduleAnalysis", "describe"]


@dataclass(frozen=True)
class ScheduleAnalysis:
    """Derived analytics of one schedule."""

    compression_ratios: np.ndarray  # f_j / f_j^max per task
    accuracy_headroom: np.ndarray  # a_j^max − a_j(f_j) per task
    unscheduled_tasks: tuple[int, ...]
    fully_processed_tasks: tuple[int, ...]
    machine_work_share: np.ndarray  # fraction of total FLOP per machine
    machine_energy_share: np.ndarray  # fraction of total J per machine
    budget_utilisation: float  # energy / budget (nan if unbudgeted)

    @property
    def mean_compression(self) -> float:
        """Average fraction of full work granted (1 = no compression)."""
        return float(self.compression_ratios.mean())

    @property
    def mean_headroom(self) -> float:
        return float(self.accuracy_headroom.mean())


def describe(schedule: Schedule) -> ScheduleAnalysis:
    """Compute analytics for a schedule."""
    inst = schedule.instance
    flops = schedule.task_flops
    caps = inst.tasks.f_max
    ratios = np.clip(flops / caps, 0.0, 1.0)
    accs = schedule.task_accuracies
    headroom = np.array([t.a_max for t in inst.tasks]) - accs

    work_per_machine = (schedule.times * inst.cluster.speeds[None, :]).sum(axis=0)
    total_work = float(work_per_machine.sum())
    energy_per_machine = schedule.machine_energy
    total_energy = float(energy_per_machine.sum())

    return ScheduleAnalysis(
        compression_ratios=ratios,
        accuracy_headroom=headroom,
        unscheduled_tasks=tuple(int(j) for j in np.nonzero(flops <= 0.0)[0]),
        fully_processed_tasks=tuple(int(j) for j in np.nonzero(ratios >= 1.0 - 1e-9)[0]),
        machine_work_share=work_per_machine / total_work if total_work > 0 else np.zeros_like(work_per_machine),
        machine_energy_share=energy_per_machine / total_energy if total_energy > 0 else np.zeros_like(energy_per_machine),
        budget_utilisation=(
            schedule.total_energy / inst.budget
            if math.isfinite(inst.budget) and inst.budget > 0
            else float("nan")
        ),
    )


def format_analysis(schedule: Schedule) -> str:
    """Human-readable analytics block (used by ``repro solve --analyze``)."""
    a = describe(schedule)
    inst = schedule.instance
    lines = [
        "schedule analysis",
        "-----------------",
        f"mean compression:   {a.mean_compression:.1%} of full work "
        f"({len(a.fully_processed_tasks)} task(s) uncompressed, "
        f"{len(a.unscheduled_tasks)} unscheduled)",
        f"accuracy headroom:  {a.mean_headroom:.4f} below a_max on average",
        f"work share:         {np.array2string(a.machine_work_share, precision=2)}",
        f"energy share:       {np.array2string(a.machine_energy_share, precision=2)}",
    ]
    if not math.isnan(a.budget_utilisation):
        lines.append(f"budget utilisation: {a.budget_utilisation:.1%}")
    worst = np.argsort(-a.accuracy_headroom)[:3]
    parts = [f"task {int(j)} (−{a.accuracy_headroom[int(j)]:.3f})" for j in worst]
    lines.append(f"most compressed:    {', '.join(parts)}")
    return "\n".join(lines)
