"""Mutable segment records driving Algorithms 1–3.

The paper's pseudocode manipulates a ``listSegments`` structure whose
entries know their *slope*, owning *task*, *position* within the task's
accuracy function, *totalFlops*, and the *usedFlops* already granted by
the scheduler.  :class:`SegmentState` is that record;
:func:`build_segment_list` expands a task set into one flat list.

Invariant maintained by the algorithms (and asserted in tests): within a
task, segment ``k`` receives work only after segment ``k−1`` is full —
automatic when processing segments in non-increasing slope order, since
concavity makes earlier segments at least as steep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..utils.errors import ValidationError
from .task import TaskSet

__all__ = ["SegmentState", "build_segment_list", "order_by_slope", "task_used_flops"]


@dataclass
class SegmentState:
    """One linear piece of one task's accuracy function, with progress."""

    task_index: int
    position: int
    slope: float
    total_flops: float
    used_flops: float = 0.0

    @property
    def remaining_flops(self) -> float:
        """FLOP still available in this segment (never negative)."""
        return max(self.total_flops - self.used_flops, 0.0)

    @property
    def is_full(self) -> bool:
        """Whether the segment is (numerically) fully used."""
        return self.remaining_flops <= 1e-9 * max(self.total_flops, 1.0)

    def use(self, flops: float) -> None:
        """Consume ``flops`` from the segment (clamps tiny overshoot)."""
        if flops < -1e-9 * max(self.total_flops, 1.0):
            raise ValidationError(f"cannot use negative flops ({flops}) on a segment")
        self.used_flops = min(self.used_flops + max(flops, 0.0), self.total_flops)

    def release(self, flops: float) -> None:
        """Return ``flops`` to the segment (clamps tiny undershoot)."""
        if flops < -1e-9 * max(self.total_flops, 1.0):
            raise ValidationError(f"cannot release negative flops ({flops})")
        self.used_flops = max(self.used_flops - max(flops, 0.0), 0.0)


def build_segment_list(tasks: TaskSet) -> List[SegmentState]:
    """Expand every task's accuracy pieces into flat segment records."""
    out: List[SegmentState] = []
    for j, task in enumerate(tasks):
        for seg in task.accuracy.segments():
            out.append(
                SegmentState(
                    task_index=j,
                    position=seg.position,
                    slope=seg.slope,
                    total_flops=seg.total_flops,
                )
            )
    return out


def order_by_slope(segments: Iterable[SegmentState]) -> List[SegmentState]:
    """Sort by non-increasing slope (Algorithm 1 line 1).

    Ties are broken by (task_index, position) so the schedule is
    deterministic; within a task, concavity guarantees position order
    coincides with slope order.
    """
    return sorted(segments, key=lambda s: (-s.slope, s.task_index, s.position))


def task_used_flops(segments: Sequence[SegmentState], n_tasks: int) -> List[float]:
    """Total FLOP granted to each task across its segments."""
    totals = [0.0] * n_tasks
    for seg in segments:
        totals[seg.task_index] += seg.used_flops
    return totals
