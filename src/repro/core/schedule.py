"""Schedules and feasibility auditing.

A DSCT-EA solution is the matrix ``t_jr`` of processing times (Sec. 3).
:class:`Schedule` wraps that matrix together with its instance and
computes every derived quantity: per-task work ``f_j = Σ_r s_r t_jr``,
accuracies, energy, machine loads and the objective.

:func:`check_feasibility` audits all model constraints:

* non-negativity (1g),
* prefix deadlines ``Σ_{i≤j} t_ir ≤ d_j`` for every machine (1b),
* work caps ``f_j ≤ f_j^max`` (1c),
* the energy budget (1f),
* optionally single-machine assignment (1d)+(1e) for integral solutions.

Tasks are executed on each machine in EDF (index) order, so the start
time of task ``j`` on machine ``r`` is ``Σ_{i<j} t_ir``; the prefix
constraint is exactly "task j completes by d_j".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..utils.errors import ValidationError
from .instance import ProblemInstance

__all__ = ["Schedule", "Violation", "FeasibilityReport", "check_feasibility", "DEFAULT_TOLERANCE"]

#: Default relative tolerance for feasibility checks.  Audits scale it by
#: the magnitude of the audited quantity (deadline, f_max, budget).
DEFAULT_TOLERANCE = 1e-7


@dataclass(frozen=True)
class Violation:
    """One violated constraint, by how much, and where."""

    kind: str  # "negative_time" | "deadline" | "work_cap" | "budget" | "assignment"
    amount: float
    task: Optional[int] = None
    machine: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.task is not None:
            where.append(f"task {self.task}")
        if self.machine is not None:
            where.append(f"machine {self.machine}")
        loc = f" ({', '.join(where)})" if where else ""
        return f"{self.kind}{loc}: excess {self.amount:.6g}"


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility audit."""

    violations: tuple[Violation, ...]

    @property
    def feasible(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.feasible

    def summary(self) -> str:
        if self.feasible:
            return "feasible"
        lines = [f"{len(self.violations)} violation(s):"]
        lines += [f"  - {v}" for v in self.violations[:20]]
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


class Schedule:
    """An assignment of processing times ``t_jr`` for one instance."""

    def __init__(self, instance: ProblemInstance, times: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        expected = (instance.n_tasks, instance.n_machines)
        if times.shape != expected:
            raise ValidationError(f"times must have shape {expected}, got {times.shape}")
        self.instance = instance
        # Clamp float dust (tiny negative residues from the algorithms) to
        # zero, but keep genuine negatives so the feasibility audit can
        # report them.
        dust = (times < 0.0) & (times > -DEFAULT_TOLERANCE)
        self._times = np.where(dust, 0.0, times) if np.any(dust) else times.copy()
        self._times.setflags(write=False)

    @classmethod
    def empty(cls, instance: ProblemInstance) -> "Schedule":
        """The all-zero schedule (always budget/deadline feasible)."""
        return cls(instance, np.zeros((instance.n_tasks, instance.n_machines)))

    # -- raw data ---------------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """The ``t_jr`` matrix (read-only, seconds)."""
        return self._times

    # -- derived per-task quantities ---------------------------------------------

    @property
    def task_flops(self) -> np.ndarray:
        """``f_j = Σ_r s_r · t_jr`` (FLOP)."""
        return self._times @ self.instance.cluster.speeds

    @property
    def task_accuracies(self) -> np.ndarray:
        """Accuracy reached by each task at its granted work."""
        return self.instance.tasks.accuracies(self.task_flops)

    @property
    def total_accuracy(self) -> float:
        """``Σ_j a_j(f_j)`` — the quantity DSCT-EA maximises."""
        return float(self.task_accuracies.sum())

    @property
    def mean_accuracy(self) -> float:
        """Average task accuracy (what Fig. 3/5 plot)."""
        return self.total_accuracy / self.instance.n_tasks

    @property
    def accuracy_error(self) -> float:
        """``Σ_j (1 − a_j(f_j))`` — the paper's minimisation objective (1a)."""
        return self.instance.n_tasks - self.total_accuracy

    # -- derived per-machine quantities ---------------------------------------------

    @property
    def machine_loads(self) -> np.ndarray:
        """Busy seconds per machine ``Σ_j t_jr``."""
        return self._times.sum(axis=0)

    @property
    def machine_energy(self) -> np.ndarray:
        """Energy per machine (J): load × busy power."""
        return self.machine_loads * self.instance.cluster.powers

    @property
    def total_energy(self) -> float:
        """Total energy (J) under the paper's busy-power model (1f)."""
        return float(self.machine_energy.sum())

    @property
    def start_times(self) -> np.ndarray:
        """Start of task j on machine r: ``Σ_{i<j} t_ir`` (n × m)."""
        cumulative = np.cumsum(self._times, axis=0)
        return cumulative - self._times

    @property
    def completion_times(self) -> np.ndarray:
        """Completion of task j on machine r: ``Σ_{i≤j} t_ir`` (n × m)."""
        return np.cumsum(self._times, axis=0)

    @property
    def task_completion(self) -> np.ndarray:
        """Completion time of each task: latest completion over machines.

        Machines a task does not use contribute its start time there,
        which never exceeds the true completion; the max is correct for
        fractional schedules too (the task runs on several machines in
        parallel, each within the prefix deadline).
        """
        comp = self.completion_times
        used = self._times > 0.0
        # Where unused, completion equals the prefix of earlier tasks and
        # may exceed the task's own finish only for *later* deadlines —
        # mask them out; a task using no machine completes at time 0.
        masked = np.where(used, comp, 0.0)
        return masked.max(axis=1)

    # -- assignment ------------------------------------------------------------

    @property
    def assigned_machine(self) -> np.ndarray:
        """For integral schedules: machine index per task (−1 if none).

        Raises :class:`ValidationError` if some task uses >1 machine.
        """
        used = self._times > 0.0
        counts = used.sum(axis=1)
        if np.any(counts > 1):
            bad = int(np.argmax(counts > 1))
            raise ValidationError(f"task {bad} runs on {int(counts[bad])} machines; schedule is fractional")
        out = np.full(self.instance.n_tasks, -1, dtype=int)
        rows, cols = np.nonzero(used)
        out[rows] = cols
        return out

    @property
    def is_integral(self) -> bool:
        """Whether every task uses at most one machine."""
        return bool(np.all((self._times > 0.0).sum(axis=1) <= 1))

    def feasibility(self, *, integral: bool = False, tolerance: float = DEFAULT_TOLERANCE) -> FeasibilityReport:
        """Audit this schedule; see :func:`check_feasibility`."""
        return check_feasibility(self, integral=integral, tolerance=tolerance)

    def __repr__(self) -> str:
        return (
            f"Schedule(n={self.instance.n_tasks}, m={self.instance.n_machines}, "
            f"mean_acc={self.mean_accuracy:.4f}, energy={self.total_energy:.4g} J)"
        )


def check_feasibility(
    schedule: Schedule,
    *,
    integral: bool = False,
    tolerance: float = DEFAULT_TOLERANCE,
) -> FeasibilityReport:
    """Audit all DSCT-EA constraints on a schedule.

    ``tolerance`` is relative: each constraint admits slack
    ``tolerance × max(|bound|, 1)``, absorbing float round-off from the
    algorithms without masking real violations.
    """
    inst = schedule.instance
    t = schedule.times
    violations: List[Violation] = []

    # (1g) non-negativity — the constructor clamps dust, so detect real
    # negatives on the raw input by rebuilding from the stored matrix.
    neg = t < -tolerance
    for j, r in zip(*np.nonzero(neg)):
        violations.append(Violation("negative_time", float(-t[j, r]), task=int(j), machine=int(r)))

    # (1b) prefix deadlines per machine.
    completion = schedule.completion_times
    deadlines = inst.tasks.deadlines
    for r in range(inst.n_machines):
        excess = completion[:, r] - deadlines
        slack = tolerance * np.maximum(np.abs(deadlines), 1.0)
        bad = excess > slack
        for j in np.nonzero(bad)[0]:
            violations.append(Violation("deadline", float(excess[j]), task=int(j), machine=int(r)))

    # (1c) work caps.
    flops = schedule.task_flops
    caps = inst.tasks.f_max
    excess = flops - caps
    slack = tolerance * np.maximum(np.abs(caps), 1.0)
    for j in np.nonzero(excess > slack)[0]:
        violations.append(Violation("work_cap", float(excess[j]), task=int(j)))

    # (1f) energy budget.
    energy = schedule.total_energy
    if np.isfinite(inst.budget):
        budget_slack = tolerance * max(inst.budget, 1.0)
        if energy > inst.budget + budget_slack:
            violations.append(Violation("budget", float(energy - inst.budget)))

    # (1d)+(1e) single-machine assignment for integral solutions.
    if integral:
        counts = (t > 0.0).sum(axis=1)
        for j in np.nonzero(counts > 1)[0]:
            violations.append(Violation("assignment", float(counts[j] - 1), task=int(j)))

    return FeasibilityReport(tuple(violations))
