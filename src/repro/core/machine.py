"""Machines: heterogeneous servers characterised by speed and efficiency.

Paper Sec. 3: each machine ``r`` has a speed ``s_r`` (FLOP/s), a power
consumption ``P_r`` (W) and an energy efficiency ``E_r = s_r / P_r``
(FLOP/J).  Machines are conventionally indexed by *non-decreasing energy
efficiency* (``r < r'`` iff ``E_r < E_r'``); :class:`Cluster` exposes both
the user order and the canonical efficiency order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..utils import units
from ..utils.errors import ValidationError
from ..utils.validation import check_positive, require

__all__ = ["Machine", "Cluster"]


@dataclass(frozen=True)
class Machine:
    """One server.

    Attributes
    ----------
    speed:
        Processing speed ``s_r`` in FLOP/s.
    efficiency:
        Energy efficiency ``E_r`` in FLOP/J.
    name:
        Optional human-readable label (e.g. a GPU model).
    idle_power:
        Power drawn while idle (W).  The paper's model only charges busy
        time (Eq. 1f); the simulator can additionally account for idle
        power in its energy audit.  Defaults to 0 (paper model).
    """

    speed: float
    efficiency: float
    name: Optional[str] = None
    idle_power: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.speed, "speed")
        check_positive(self.efficiency, "efficiency")
        if self.idle_power < 0:
            raise ValidationError(f"idle_power must be >= 0, got {self.idle_power}")

    @classmethod
    def from_tflops(
        cls,
        speed_tflops: float,
        efficiency_gflops_per_watt: float,
        name: Optional[str] = None,
        idle_power: float = 0.0,
    ) -> "Machine":
        """Build from the paper's units (TFLOPS, GFLOPS/W)."""
        return cls(
            speed=units.tflops(speed_tflops),
            efficiency=units.gflops_per_watt(efficiency_gflops_per_watt),
            name=name,
            idle_power=idle_power,
        )

    @property
    def power(self) -> float:
        """Busy power draw ``P_r = s_r / E_r`` in Watts."""
        return self.speed / self.efficiency

    def energy_for_time(self, seconds: float) -> float:
        """Energy (J) consumed by ``seconds`` of busy time."""
        return seconds * self.power

    def energy_for_work(self, flops: float) -> float:
        """Energy (J) consumed to execute ``flops`` FLOP."""
        return flops / self.efficiency

    def time_for_work(self, flops: float) -> float:
        """Seconds needed to execute ``flops`` FLOP."""
        return flops / self.speed

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Machine({units.as_tflops(self.speed):.3g} TFLOPS, "
            f"{units.as_gflops_per_watt(self.efficiency):.3g} GFLOPS/W{label})"
        )


class Cluster:
    """An ordered collection of machines with vectorised attribute access."""

    def __init__(self, machines: Sequence[Machine]) -> None:
        machines = list(machines)
        require(len(machines) >= 1, "a cluster needs at least one machine")
        self._machines = tuple(machines)
        self._speeds = np.array([m.speed for m in machines], dtype=float)
        self._efficiencies = np.array([m.efficiency for m in machines], dtype=float)

    @classmethod
    def from_tflops(
        cls,
        speeds_tflops: Iterable[float],
        efficiencies_gflops_per_watt: Iterable[float],
    ) -> "Cluster":
        """Build a cluster from parallel lists in the paper's units."""
        speeds = list(speeds_tflops)
        effs = list(efficiencies_gflops_per_watt)
        if len(speeds) != len(effs):
            raise ValidationError("speeds and efficiencies must have equal length")
        return cls([Machine.from_tflops(s, e) for s, e in zip(speeds, effs)])

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines)

    def __getitem__(self, index: int) -> Machine:
        return self._machines[index]

    @property
    def machines(self) -> tuple[Machine, ...]:
        return self._machines

    # -- vector views ---------------------------------------------------------

    @property
    def speeds(self) -> np.ndarray:
        """``s_r`` vector (FLOP/s), read-only."""
        v = self._speeds.view()
        v.flags.writeable = False
        return v

    @property
    def efficiencies(self) -> np.ndarray:
        """``E_r`` vector (FLOP/J), read-only."""
        v = self._efficiencies.view()
        v.flags.writeable = False
        return v

    @property
    def powers(self) -> np.ndarray:
        """``P_r = s_r / E_r`` vector (W)."""
        return self._speeds / self._efficiencies

    @property
    def total_speed(self) -> float:
        """``Σ_r s_r`` (FLOP/s)."""
        return float(self._speeds.sum())

    @property
    def total_power(self) -> float:
        """``Σ_r P_r`` (W)."""
        return float(self.powers.sum())

    def efficiency_order(self, descending: bool = True) -> np.ndarray:
        """Machine indices sorted by energy efficiency.

        ``descending=True`` (default) gives the order used by Algorithm 2
        (most efficient first); ties broken by original index for
        determinism.
        """
        keys = -self._efficiencies if descending else self._efficiencies
        return np.argsort(keys, kind="stable")

    def __repr__(self) -> str:
        return f"Cluster(m={len(self)}, total_speed={units.as_tflops(self.total_speed):.3g} TFLOPS)"
