"""Energy profiles (paper Sec. 3.2, "The Energy Profiles").

The *energy profile* ``p_r`` of machine ``r`` caps the busy time that may
be scheduled on it; a profile vector is *budget-feasible* when
``Σ_r p_r · P_r ≤ B``.  Algorithm 2 starts from the **naive profile**:
machines taken in non-increasing energy-efficiency order are granted time
up to ``d_max`` until the budget is exhausted.  Algorithm 3 then refines
the profile when that greedy split is suboptimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.errors import ValidationError
from .instance import ProblemInstance

__all__ = ["EnergyProfile", "naive_profile"]


@dataclass(frozen=True)
class EnergyProfile:
    """A per-machine busy-time allowance ``p = (p_1, ..., p_m)``."""

    limits: np.ndarray  # seconds per machine

    def __post_init__(self) -> None:
        limits = np.asarray(self.limits, dtype=float)
        if limits.ndim != 1:
            raise ValidationError(f"profile must be a vector, got shape {limits.shape}")
        if np.any(limits < 0):
            raise ValidationError(f"profile limits must be >= 0, got {limits.tolist()}")
        limits = limits.copy()
        limits.setflags(write=False)
        object.__setattr__(self, "limits", limits)

    def __len__(self) -> int:
        return int(self.limits.size)

    def __getitem__(self, r: int) -> float:
        return float(self.limits[r])

    def energy(self, powers: np.ndarray) -> float:
        """Energy (J) consumed if every machine runs up to its profile."""
        powers = np.asarray(powers, dtype=float)
        if powers.shape != self.limits.shape:
            raise ValidationError("powers vector length must match profile length")
        return float(self.limits @ powers)

    def fits_budget(self, powers: np.ndarray, budget: float, *, tolerance: float = 1e-7) -> bool:
        """Whether ``Σ_r p_r P_r ≤ B`` (with relative tolerance)."""
        return self.energy(powers) <= budget + tolerance * max(budget, 1.0)

    def admits(self, loads: np.ndarray, *, tolerance: float = 1e-7) -> bool:
        """Whether per-machine loads (s) stay within the profile."""
        loads = np.asarray(loads, dtype=float)
        slack = tolerance * np.maximum(self.limits, 1.0)
        return bool(np.all(loads <= self.limits + slack))

    def __repr__(self) -> str:
        return f"EnergyProfile({np.array2string(self.limits, precision=4)})"


def naive_profile(instance: ProblemInstance, *, horizon: float | None = None) -> EnergyProfile:
    """The naive energy profile (Algorithm 2, lines 1–5).

    Machines sorted by non-increasing efficiency receive busy time
    ``min(remaining_budget / P_r, horizon)``; ``horizon`` defaults to the
    last deadline ``d_max`` (no task may run past it).  With an infinite
    budget every machine gets the full horizon.
    """
    cluster = instance.cluster
    if horizon is None:
        horizon = instance.tasks.d_max
    limits = np.zeros(len(cluster))
    if np.isinf(instance.budget):
        limits[:] = horizon
        return EnergyProfile(limits)
    remaining = instance.budget
    powers = cluster.powers
    for r in cluster.efficiency_order(descending=True):
        if remaining <= 0:
            break
        grant = min(remaining / powers[r], horizon)
        limits[r] = grant
        remaining -= grant * powers[r]
    return EnergyProfile(limits)
