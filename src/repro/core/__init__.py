"""Core data model: accuracy functions, tasks, machines, instances, schedules."""

from .accuracy import (
    AccuracyFunction,
    ExponentialAccuracy,
    PiecewiseLinearAccuracy,
    fit_piecewise,
)
from .analysis import ScheduleAnalysis, describe, format_analysis
from .instance import ProblemInstance, beta_of_budget, budget_for_beta
from .machine import Cluster, Machine
from .profiles import EnergyProfile, naive_profile
from .schedule import FeasibilityReport, Schedule, Violation, check_feasibility
from .segments import SegmentState, build_segment_list, order_by_slope, task_used_flops
from .serialization import (
    cluster_from_dict,
    cluster_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .task import Task, TaskSet

__all__ = [
    "AccuracyFunction",
    "ScheduleAnalysis",
    "describe",
    "format_analysis",
    "ExponentialAccuracy",
    "PiecewiseLinearAccuracy",
    "fit_piecewise",
    "ProblemInstance",
    "budget_for_beta",
    "beta_of_budget",
    "Machine",
    "Cluster",
    "EnergyProfile",
    "naive_profile",
    "Schedule",
    "FeasibilityReport",
    "Violation",
    "check_feasibility",
    "cluster_to_dict",
    "cluster_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "SegmentState",
    "build_segment_list",
    "order_by_slope",
    "task_used_flops",
    "Task",
    "TaskSet",
]
