"""Problem instances: tasks + machines + energy budget.

:class:`ProblemInstance` bundles everything the schedulers consume and
exposes the paper's derived scenario descriptors:

* deadline tolerance ``ρ = d_max · Σ_r s_r / Σ_j f_j^max``,
* energy budget ratio ``β = B / (d_max · Σ_r P_r)``,
* task heterogeneity ``μ = θ_max / θ_min``.

(The printed formulas for ρ and β in the paper are dimensionally garbled;
DESIGN.md §3 records the reconstruction used here, which matches the
paper's semantics: larger ρ ⇒ looser deadlines, β = 1 ⇒ budget covers
running every machine flat-out until ``d_max``.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.errors import ValidationError
from ..utils.validation import check_nonnegative, require
from .machine import Cluster
from .task import TaskSet

__all__ = ["ProblemInstance", "budget_for_beta", "beta_of_budget"]


def budget_for_beta(beta: float, tasks: TaskSet, cluster: Cluster) -> float:
    """Energy budget ``B`` realising budget ratio ``beta`` (J).

    ``B = β · d_max · Σ_r P_r`` — at β = 1 every machine can run at full
    power until the last deadline, so all tasks can be fully processed.
    """
    check_nonnegative(beta, "beta")
    return beta * tasks.d_max * cluster.total_power


def beta_of_budget(budget: float, tasks: TaskSet, cluster: Cluster) -> float:
    """Inverse of :func:`budget_for_beta`."""
    check_nonnegative(budget, "budget")
    return budget / (tasks.d_max * cluster.total_power)


@dataclass(frozen=True)
class ProblemInstance:
    """A complete DSCT-EA instance.

    Attributes
    ----------
    tasks:
        Jobs in EDF order.
    cluster:
        Machines (arbitrary order; algorithms re-order as needed).
    budget:
        Energy budget ``B`` in Joules (>= 0).  ``float('inf')`` disables
        the budget constraint, recovering the DSCT problem of [5].
    """

    tasks: TaskSet
    cluster: Cluster
    budget: float

    def __post_init__(self) -> None:
        if not self.budget >= 0:
            raise ValidationError(f"budget must be >= 0, got {self.budget!r}")

    @classmethod
    def with_beta(cls, tasks: TaskSet, cluster: Cluster, beta: float) -> "ProblemInstance":
        """Build an instance whose budget realises the given β ratio."""
        return cls(tasks, cluster, budget_for_beta(beta, tasks, cluster))

    # -- sizes ---------------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_machines(self) -> int:
        return len(self.cluster)

    # -- scenario descriptors --------------------------------------------------

    @property
    def beta(self) -> float:
        """Energy budget ratio β of this instance."""
        if np.isinf(self.budget):
            return float("inf")
        return beta_of_budget(self.budget, self.tasks, self.cluster)

    @property
    def rho(self) -> float:
        """Deadline tolerance ρ = d_max · Σ_r s_r / Σ_j f_j^max."""
        return self.tasks.d_max * self.cluster.total_speed / self.tasks.total_f_max

    @property
    def mu(self) -> float:
        """Task heterogeneity ratio μ = θ_max / θ_min."""
        return self.tasks.heterogeneity_mu

    def energy_of_times(self, times: np.ndarray) -> float:
        """Energy (J) of a ``t_jr`` matrix under the paper's busy-power model.

        ``Σ_{j,r} (s_r / E_r) · t_jr`` — Eq. (1f)'s left-hand side.
        """
        times = np.asarray(times, dtype=float)
        require(
            times.shape == (self.n_tasks, self.n_machines),
            f"times must have shape ({self.n_tasks}, {self.n_machines}), got {times.shape}",
        )
        return float(times.sum(axis=0) @ self.cluster.powers)

    def __repr__(self) -> str:
        return (
            f"ProblemInstance(n={self.n_tasks}, m={self.n_machines}, "
            f"beta={self.beta:.3g}, rho={self.rho:.3g})"
        )
