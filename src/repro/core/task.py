"""Tasks: compressible inference jobs with deadlines.

Paper Sec. 3: each job ``j`` needs ``f_j^max`` FLOP for full execution,
must finish by deadline ``d_j``, and carries an accuracy function
``a_j(f)``.  Jobs are conventionally indexed by *non-decreasing deadline*
(``i < j`` iff ``d_i < d_j``); :class:`TaskSet` enforces/creates this
EDF order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..utils.errors import ValidationError
from ..utils.validation import check_positive, require
from .accuracy import PiecewiseLinearAccuracy

__all__ = ["Task", "TaskSet"]


@dataclass(frozen=True)
class Task:
    """One compressible inference job.

    Attributes
    ----------
    deadline:
        ``d_j`` in seconds (> 0).
    accuracy:
        Piecewise-linear accuracy function; its ``f_max`` is the work
        ``f_j^max`` of full (uncompressed) execution.
    name:
        Optional label for traces and examples.
    """

    deadline: float
    accuracy: PiecewiseLinearAccuracy
    name: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive(self.deadline, "deadline")
        if not isinstance(self.accuracy, PiecewiseLinearAccuracy):
            raise ValidationError(
                "Task.accuracy must be a PiecewiseLinearAccuracy "
                f"(got {type(self.accuracy).__name__}); fit exponential "
                "curves with repro.core.accuracy.fit_piecewise first"
            )

    @property
    def f_max(self) -> float:
        """``f_j^max``: FLOP for full execution."""
        return self.accuracy.f_max

    @property
    def a_max(self) -> float:
        """Accuracy of full execution."""
        return self.accuracy.a_max

    @property
    def a_min(self) -> float:
        """Accuracy with zero work (random guess)."""
        return self.accuracy.a_min

    @property
    def efficiency_theta(self) -> float:
        """The paper's task efficiency θ_j: slope of the first segment."""
        return self.accuracy.first_slope

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Task(d={self.deadline:.4g}s, f_max={self.f_max:.4g} FLOP{label})"


class TaskSet:
    """Tasks sorted by non-decreasing deadline (the paper's job order)."""

    def __init__(self, tasks: Sequence[Task], *, assume_sorted: bool = False) -> None:
        tasks = list(tasks)
        require(len(tasks) >= 1, "a task set needs at least one task")
        if not assume_sorted:
            tasks = sorted(tasks, key=lambda t: t.deadline)
        else:
            deadlines = [t.deadline for t in tasks]
            if any(b < a for a, b in zip(deadlines, deadlines[1:])):
                raise ValidationError("assume_sorted=True but deadlines are not sorted")
        self._tasks = tuple(tasks)
        self._deadlines = np.array([t.deadline for t in tasks], dtype=float)
        self._f_max = np.array([t.f_max for t in tasks], dtype=float)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    @property
    def tasks(self) -> tuple[Task, ...]:
        return self._tasks

    # -- vector views ---------------------------------------------------------

    @property
    def deadlines(self) -> np.ndarray:
        """``d_j`` vector (s), non-decreasing, read-only."""
        v = self._deadlines.view()
        v.flags.writeable = False
        return v

    @property
    def f_max(self) -> np.ndarray:
        """``f_j^max`` vector (FLOP), read-only."""
        v = self._f_max.view()
        v.flags.writeable = False
        return v

    @property
    def d_max(self) -> float:
        """The last (largest) deadline ``d^max``."""
        return float(self._deadlines[-1])

    @property
    def total_f_max(self) -> float:
        """Total uncompressed demand ``Σ_j f_j^max`` (FLOP)."""
        return float(self._f_max.sum())

    @property
    def theta_min(self) -> float:
        """Smallest task efficiency over the set."""
        return min(t.efficiency_theta for t in self._tasks)

    @property
    def theta_max(self) -> float:
        """Largest task efficiency over the set."""
        return max(t.efficiency_theta for t in self._tasks)

    @property
    def heterogeneity_mu(self) -> float:
        """Task heterogeneity ratio μ = θ_max / θ_min (paper Sec. 6)."""
        return self.theta_max / self.theta_min

    def accuracies(self, flops: Sequence[float]) -> np.ndarray:
        """Evaluate each task's accuracy at the given per-task work."""
        flops = np.asarray(flops, dtype=float)
        if flops.shape != (len(self),):
            raise ValidationError(f"expected {len(self)} work values, got shape {flops.shape}")
        return np.array([t.accuracy.value(f) for t, f in zip(self._tasks, flops)])

    def max_accuracy_sum(self) -> float:
        """``Σ_j a_j^max`` — upper bound on any schedule's total accuracy."""
        return float(sum(t.a_max for t in self._tasks))

    def __repr__(self) -> str:
        return f"TaskSet(n={len(self)}, d_max={self.d_max:.4g}s)"
