"""Synthetic Once-For-All model families — the substrate behind Fig. 2.

The paper's tasks are inference jobs on *slimmable* networks trained with
Once-For-All [3]: one supernet whose subnetworks trade FLOPs for
accuracy along four dimensions (width, kernel size, depth, resolution).
The experiments only consume the resulting accuracy-vs-FLOPs curve
(exponential saturating shape, Fig. 2), so we model the family
synthetically:

* a combinatorial subnetwork space (stages × depth × per-layer options)
  whose size reproduces the paper's ">10¹⁹ subnetworks for MobileNet"
  observation;
* a multiplicative FLOPs model over the configuration dimensions;
* an accuracy law ``a(flops) = a_max − Δ·exp(−θ·flops/Δ)`` plus a small
  deterministic per-configuration residual, mimicking that individual
  subnetworks scatter around the envelope in Fig. 2.

:meth:`OnceForAllFamily.accuracy_function` returns the concave
piecewise-linear fit the schedulers consume, and
:meth:`OnceForAllFamily.batch_task` lifts it to a batch-inference task.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.accuracy import ExponentialAccuracy, PiecewiseLinearAccuracy, fit_piecewise
from ..core.task import Task
from ..utils.errors import ValidationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_fraction, check_positive, require

__all__ = ["SubnetworkConfig", "SubnetworkProfile", "OnceForAllFamily"]


@dataclass(frozen=True)
class SubnetworkConfig:
    """One subnetwork: per-stage depths and per-stage option indices.

    ``depths[i]`` is the number of active layers in stage ``i``;
    ``options[i]`` indexes the (kernel, expand) choice used by stage
    ``i``'s layers; ``width_index`` and ``resolution_index`` select the
    global width multiplier and input resolution.
    """

    depths: Tuple[int, ...]
    options: Tuple[int, ...]
    width_index: int
    resolution_index: int


@dataclass(frozen=True)
class SubnetworkProfile:
    """A subnetwork with its simulated cost/quality measurements."""

    config: SubnetworkConfig
    flops: float  # per-image FLOP
    accuracy: float


class OnceForAllFamily:
    """A synthetic OFA supernet with a saturating accuracy/FLOPs law."""

    def __init__(
        self,
        name: str,
        *,
        full_flops: float,
        a_min: float = 0.001,
        a_max: float = 0.82,
        theta: Optional[float] = None,
        n_stages: int = 5,
        depth_choices: Sequence[int] = (2, 3, 4),
        options_per_layer: int = 9,
        width_multipliers: Sequence[float] = (1.0,),
        resolutions: Sequence[int] = (224,),
        residual_scale: float = 0.01,
        min_flops_fraction: float = 0.08,
    ):
        check_positive(full_flops, "full_flops")
        check_fraction(a_min, "a_min")
        check_fraction(a_max, "a_max")
        require(a_max > a_min, "a_max must exceed a_min")
        require(n_stages >= 1, "need at least one stage")
        require(options_per_layer >= 1, "need at least one per-layer option")
        require(0 < min_flops_fraction < 1, "min_flops_fraction must lie in (0, 1)")
        self.name = name
        self.full_flops = float(full_flops)
        self.a_min = float(a_min)
        self.a_max = float(a_max)
        self.n_stages = int(n_stages)
        self.depth_choices = tuple(sorted(depth_choices))
        self.options_per_layer = int(options_per_layer)
        self.width_multipliers = tuple(sorted(width_multipliers))
        self.resolutions = tuple(sorted(resolutions))
        self.residual_scale = float(residual_scale)
        self.min_flops_fraction = float(min_flops_fraction)
        delta = self.a_max - self.a_min
        if theta is None:
            # Default: the curve covers 99.9 % of Δ at full_flops.
            theta = -delta * math.log1p(-0.999) / self.full_flops
        # Anchor the curve so its f_max is exactly the full model's cost:
        # coverage is whatever fraction of Δ θ buys over full_flops.
        coverage = -math.expm1(-theta * self.full_flops / delta)
        coverage = min(max(coverage, 1e-12), 1.0 - 1e-12)
        self._curve = ExponentialAccuracy(theta, a_min=self.a_min, a_max=self.a_max, coverage=coverage)
        self._f_top = min(self._curve.f_max, self.full_flops)

    # -- combinatorics -----------------------------------------------------

    def count_subnetworks(self) -> int:
        """Size of the subnetwork space.

        Per stage: ``Σ_{d∈depths} options_per_layer**d`` layer settings;
        stages multiply, then width and resolution choices.  With OFA
        MobileNetV3's parameters (5 stages, depths {2,3,4}, 9 options)
        this is ≈ 2.2 × 10¹⁹ — the paper's ">10¹⁹" remark.
        """
        per_stage = sum(self.options_per_layer**d for d in self.depth_choices)
        return per_stage**self.n_stages * len(self.width_multipliers) * len(self.resolutions)

    # -- cost & quality models -----------------------------------------------

    def config_flops(self, config: SubnetworkConfig) -> float:
        """Per-image FLOP of a configuration (multiplicative model).

        Depth contributes linearly per stage, the per-layer option and
        width quadratically (channel widths), resolution quadratically
        (spatial dims) — the standard CNN cost scaling.  The result is
        normalised so the maximal configuration costs ``full_flops`` and
        the minimal one ``min_flops_fraction · full_flops``.
        """
        self._validate_config(config)
        d_max = self.depth_choices[-1]
        # Option index o ∈ [0, options) maps to a per-layer cost factor in
        # [min_fraction, 1]: denser kernels / expansion ratios cost more.
        span = self.options_per_layer - 1 if self.options_per_layer > 1 else 1
        raw = 0.0
        for depth, opt in zip(config.depths, config.options):
            opt_factor = self.min_flops_fraction + (1 - self.min_flops_fraction) * (opt / span if span else 1.0)
            raw += (depth / d_max) * opt_factor
        raw /= self.n_stages
        width = self.width_multipliers[config.width_index]
        res = self.resolutions[config.resolution_index]
        raw *= (width / self.width_multipliers[-1]) ** 2
        raw *= (res / self.resolutions[-1]) ** 2
        lo = self.min_flops_fraction
        return self.full_flops * (lo + (1.0 - lo) * raw)

    def config_accuracy(self, config: SubnetworkConfig) -> float:
        """Accuracy of a configuration: envelope value + small residual.

        The residual is a deterministic hash-based perturbation (same
        config ⇒ same accuracy, as for a real trained supernet), always
        ≤ 0 so the envelope stays an upper bound.
        """
        flops = self.config_flops(config)
        base = self._curve.value(flops)
        # zlib.crc32 rather than hash(): stable across processes (hash()
        # of strings is salted per interpreter run).
        h = zlib.crc32(repr((self.name, config)).encode()) & 0xFFFF
        residual = self.residual_scale * (h / 0xFFFF) * (self.a_max - self.a_min)
        return max(self.a_min, base - residual)

    def profile(self, config: SubnetworkConfig) -> SubnetworkProfile:
        """Bundle a configuration with its simulated measurements."""
        return SubnetworkProfile(config, self.config_flops(config), self.config_accuracy(config))

    def sample_configs(self, count: int, seed: SeedLike = None) -> List[SubnetworkConfig]:
        """Uniformly sample ``count`` configurations."""
        require(count >= 0, "count must be >= 0")
        rng = ensure_rng(seed)
        out = []
        for _ in range(count):
            depths = tuple(int(rng.choice(self.depth_choices)) for _ in range(self.n_stages))
            options = tuple(int(rng.integers(0, self.options_per_layer)) for _ in range(self.n_stages))
            out.append(
                SubnetworkConfig(
                    depths=depths,
                    options=options,
                    width_index=int(rng.integers(0, len(self.width_multipliers))),
                    resolution_index=int(rng.integers(0, len(self.resolutions))),
                )
            )
        return out

    def largest_config(self) -> SubnetworkConfig:
        """The uncompressed (maximal) subnetwork."""
        return SubnetworkConfig(
            depths=(self.depth_choices[-1],) * self.n_stages,
            options=(self.options_per_layer - 1,) * self.n_stages,
            width_index=len(self.width_multipliers) - 1,
            resolution_index=len(self.resolutions) - 1,
        )

    # -- Fig. 2 data & scheduler input ------------------------------------------

    def accuracy_curve(self, num: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(flops, accuracy) arrays of the envelope — Fig. 2's curve."""
        flops = np.linspace(0.0, self._f_top, num)
        return flops, self._curve.value_array(flops)

    def scatter(self, count: int = 300, seed: SeedLike = None) -> List[SubnetworkProfile]:
        """Sampled subnetwork profiles — Fig. 2's point cloud."""
        return [self.profile(c) for c in self.sample_configs(count, seed)]

    def accuracy_function(self, n_segments: int = 5) -> PiecewiseLinearAccuracy:
        """Concave piecewise-linear fit of the envelope (scheduler input)."""
        return fit_piecewise(self._curve, n_segments)

    def batch_task(
        self,
        batch_size: int,
        deadline: float,
        *,
        n_segments: int = 5,
        name: Optional[str] = None,
    ) -> Task:
        """A batch-inference task over this family.

        A batch of B images compressed uniformly reaches the per-image
        accuracy at B× the per-image work, so the accuracy function's
        work axis is scaled by B.
        """
        require(batch_size >= 1, "batch_size must be >= 1")
        acc = self.accuracy_function(n_segments).scale_flops(float(batch_size))
        return Task(deadline=deadline, accuracy=acc, name=name or f"{self.name}×{batch_size}")

    def _validate_config(self, config: SubnetworkConfig) -> None:
        if len(config.depths) != self.n_stages or len(config.options) != self.n_stages:
            raise ValidationError(
                f"config must have {self.n_stages} stages, got "
                f"{len(config.depths)} depths / {len(config.options)} options"
            )
        for d in config.depths:
            if d not in self.depth_choices:
                raise ValidationError(f"depth {d} not in {self.depth_choices}")
        for o in config.options:
            if not 0 <= o < self.options_per_layer:
                raise ValidationError(f"option {o} out of range [0, {self.options_per_layer})")
        if not 0 <= config.width_index < len(self.width_multipliers):
            raise ValidationError(f"width_index {config.width_index} out of range")
        if not 0 <= config.resolution_index < len(self.resolutions):
            raise ValidationError(f"resolution_index {config.resolution_index} out of range")

    def __repr__(self) -> str:
        return (
            f"OnceForAllFamily({self.name!r}, full_flops={self.full_flops:.3g}, "
            f"a_max={self.a_max}, |space|≈{self.count_subnetworks():.3g})"
        )
