"""Simulated GPU profiling of OFA subnetworks.

The paper measured subnetwork latencies on an RTX A2000; offline we
substitute an analytic cost model with optional multiplicative
measurement noise: latency = FLOPs / speed, energy = FLOPs / efficiency,
each jittered by a log-normal factor.  The profiler is what the
quickstart example uses to turn "a batch of images on model X with
deadline d" into scheduler inputs, exercising the same pipeline as the
paper's testbed (profile → fit accuracy curve → schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.machine import Machine
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_nonnegative, require
from .ofa import OnceForAllFamily, SubnetworkConfig

__all__ = ["Measurement", "SimulatedProfiler"]


@dataclass(frozen=True)
class Measurement:
    """One simulated profiling run of a subnetwork on a machine."""

    config: SubnetworkConfig
    flops: float
    latency_seconds: float
    energy_joules: float
    accuracy: float


class SimulatedProfiler:
    """Profiles subnetworks on a machine with reproducible noise.

    ``noise`` is the standard deviation of the log-normal jitter applied
    to both latency and energy (0 ⇒ exact analytic model).
    """

    def __init__(self, machine: Machine, *, noise: float = 0.0, seed: SeedLike = None):
        check_nonnegative(noise, "noise")
        self.machine = machine
        self.noise = float(noise)
        self._rng = ensure_rng(seed)

    def _jitter(self) -> float:
        if self.noise == 0.0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.noise)))

    def measure(self, family: OnceForAllFamily, config: SubnetworkConfig, *, batch_size: int = 1) -> Measurement:
        """Profile one configuration (per-batch latency and energy)."""
        require(batch_size >= 1, "batch_size must be >= 1")
        flops = family.config_flops(config) * batch_size
        latency = self.machine.time_for_work(flops) * self._jitter()
        energy = self.machine.energy_for_work(flops) * self._jitter()
        return Measurement(
            config=config,
            flops=flops,
            latency_seconds=latency,
            energy_joules=energy,
            accuracy=family.config_accuracy(config),
        )

    def sweep(
        self,
        family: OnceForAllFamily,
        configs: Sequence[SubnetworkConfig],
        *,
        batch_size: int = 1,
    ) -> list[Measurement]:
        """Profile many configurations (the paper's calibration sweep)."""
        return [self.measure(family, c, batch_size=batch_size) for c in configs]
