"""Fitting accuracy curves from profiled measurements.

The paper profiles OFA subnetworks (FLOPs, accuracy) and fits the
exponential law before scheduling; this module implements that
calibration step so the full workflow — profile → fit → piecewise →
schedule — runs end to end on measured (noisy) data.

The exponential law ``a(f) = a_max − Δ·exp(−θ f / Δ)`` linearises:
``log(a_max − a) = log Δ − (θ/Δ)·f``, so θ comes from one least-squares
line fit in log space.  ``a_max`` itself can be taken from the best
measurement (plus a small headroom) when not known a priori.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.accuracy import ExponentialAccuracy, PiecewiseLinearAccuracy, fit_piecewise
from ..utils.errors import ValidationError
from ..utils.validation import check_fraction, require
from .profiler import Measurement

__all__ = ["FitResult", "fit_exponential", "accuracy_from_measurements"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of the exponential calibration."""

    curve: ExponentialAccuracy
    theta: float
    a_min: float
    a_max: float
    rmse: float  # accuracy-space root-mean-square residual
    n_points: int

    def piecewise(self, n_segments: int = 5) -> PiecewiseLinearAccuracy:
        """The scheduler-ready concave fit of the calibrated curve."""
        return fit_piecewise(self.curve, n_segments)


def fit_exponential(
    flops: Sequence[float],
    accuracies: Sequence[float],
    *,
    a_min: float = 0.001,
    a_max: Optional[float] = None,
    a_max_headroom: float = 0.005,
) -> FitResult:
    """Least-squares fit of the saturating exponential to (f, a) samples.

    Parameters
    ----------
    flops, accuracies:
        Profiled points (at least two distinct FLOP values).
    a_min:
        Accuracy at zero work (the random-guess floor).
    a_max:
        Saturation accuracy; when None, the best sample plus
        ``a_max_headroom`` is used (the curve must sit strictly above
        every sample for the log transform to exist).
    """
    f = np.asarray(list(flops), dtype=float)
    a = np.asarray(list(accuracies), dtype=float)
    if f.shape != a.shape or f.ndim != 1:
        raise ValidationError("flops and accuracies must be equal-length vectors")
    require(f.size >= 2, "need at least two measurements")
    if np.any(f < 0):
        raise ValidationError("flops must be >= 0")
    for ai in a:
        check_fraction(float(ai), "measured accuracy")
    check_fraction(a_min, "a_min")
    if np.unique(f).size < 2:
        raise ValidationError("need at least two distinct FLOP values")

    if a_max is None:
        a_max = min(float(a.max()) + a_max_headroom, 1.0)
    check_fraction(a_max, "a_max")
    require(a_max > a_min, "a_max must exceed a_min")
    if np.any(a >= a_max):
        # clip samples a hair under the asymptote so logs stay finite
        a = np.minimum(a, a_max - 1e-9)

    delta = a_max - a_min
    # log(a_max − a) = log Δ − (θ/Δ) f   →  slope = −θ/Δ
    y = np.log(a_max - a)
    slope, intercept = np.polyfit(f, y, 1)
    if slope >= 0:
        raise ValidationError(
            "measurements do not decay toward a_max (non-negative log-slope); "
            "check the samples or supply a_max explicitly"
        )
    theta = -slope * delta
    curve = ExponentialAccuracy(theta, a_min=a_min, a_max=a_max)
    predicted = curve.value_array(np.minimum(f, curve.f_max))
    rmse = float(np.sqrt(np.mean((predicted - a) ** 2)))
    return FitResult(
        curve=curve, theta=float(theta), a_min=float(a_min), a_max=float(a_max),
        rmse=rmse, n_points=int(f.size),
    )


def accuracy_from_measurements(
    measurements: Sequence[Measurement],
    *,
    a_min: float = 0.001,
    a_max: Optional[float] = None,
    n_segments: int = 5,
) -> tuple[PiecewiseLinearAccuracy, FitResult]:
    """Profiler output → scheduler input, in one call.

    Fits the exponential to the measurements' (flops, accuracy) pairs
    and returns the concave piecewise-linear function plus the fit
    diagnostics — exactly the paper's calibration pipeline.
    """
    if not measurements:
        raise ValidationError("need at least one measurement")
    fit = fit_exponential(
        [m.flops for m in measurements],
        [m.accuracy for m in measurements],
        a_min=a_min,
        a_max=a_max,
    )
    return fit.piecewise(n_segments), fit
