"""Preset Once-For-All model families used in examples and experiments.

Full-model FLOPs and top-1 accuracies follow the published numbers for
the corresponding OFA supernets; the paper's experiments use
``ofa-resnet`` with ``a_max = 0.82`` and ``a_min = 1/1000`` (random guess
over the 1000 ImageNet-1k classes).
"""

from __future__ import annotations

from .ofa import OnceForAllFamily

__all__ = ["ofa_resnet50", "ofa_mobilenet_v3", "ofa_proxyless", "MODEL_ZOO", "get_family"]


def ofa_resnet50() -> OnceForAllFamily:
    """OFA-ResNet50 (the paper's model): 4.1 GFLOPs full, a_max = 0.82.

    Elastic dimensions: depth {0,1,2} per stage (on top of a base), width
    multipliers {0.65, 0.8, 1.0}, expand ratios {0.2, 0.25, 0.35}
    (modelled as 3 per-layer options), resolutions 128–224.
    """
    return OnceForAllFamily(
        "ofa-resnet50",
        full_flops=4.1e9,
        a_min=0.001,
        a_max=0.82,
        n_stages=4,
        depth_choices=(1, 2, 3),
        options_per_layer=3,
        width_multipliers=(0.65, 0.8, 1.0),
        resolutions=(128, 160, 192, 224),
        min_flops_fraction=0.1,
    )


def ofa_mobilenet_v3() -> OnceForAllFamily:
    """OFA-MobileNetV3: 230 MFLOPs full, a_max ≈ 0.767, >10¹⁹ subnets."""
    return OnceForAllFamily(
        "ofa-mobilenetv3",
        full_flops=0.23e9,
        a_min=0.001,
        a_max=0.767,
        n_stages=5,
        depth_choices=(2, 3, 4),
        options_per_layer=9,  # kernel {3,5,7} × expand {3,4,6}
        width_multipliers=(1.0, 1.2),
        resolutions=(128, 160, 192, 224),
        min_flops_fraction=0.06,
    )


def ofa_proxyless() -> OnceForAllFamily:
    """OFA-ProxylessNAS: 320 MFLOPs full, a_max ≈ 0.752."""
    return OnceForAllFamily(
        "ofa-proxyless",
        full_flops=0.32e9,
        a_min=0.001,
        a_max=0.752,
        n_stages=5,
        depth_choices=(2, 3, 4),
        options_per_layer=9,
        width_multipliers=(1.0, 1.3),
        resolutions=(128, 160, 192, 224),
        min_flops_fraction=0.06,
    )


MODEL_ZOO = {
    "ofa-resnet50": ofa_resnet50,
    "ofa-mobilenetv3": ofa_mobilenet_v3,
    "ofa-proxyless": ofa_proxyless,
}


def get_family(name: str) -> OnceForAllFamily:
    """Instantiate a zoo family by name."""
    try:
        return MODEL_ZOO[name]()
    except KeyError:
        raise KeyError(f"unknown model family {name!r}; known: {sorted(MODEL_ZOO)}") from None
