"""Realised accuracy: from probabilities to measured correctness.

The accuracy functions give the *expected* top-1 accuracy of a
compressed model; a real batch of B images realises an empirical
accuracy with Binomial noise around it.  These helpers close that gap
for the simulator and the examples, standing in for the ImageNet-1k
evaluation the paper ran (which we cannot, offline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import Schedule
from ..utils.errors import ValidationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_fraction, require

__all__ = ["sample_batch_accuracy", "BatchEvaluation", "evaluate_schedule_batches"]


def sample_batch_accuracy(accuracy: float, batch_size: int, seed: SeedLike = None) -> float:
    """Empirical accuracy of one batch: Binomial(B, p) / B."""
    check_fraction(accuracy, "accuracy")
    require(batch_size >= 1, "batch_size must be >= 1")
    rng = ensure_rng(seed)
    return float(rng.binomial(batch_size, accuracy)) / batch_size


@dataclass(frozen=True)
class BatchEvaluation:
    """Measured (sampled) outcome of a scheduled batch workload."""

    expected: np.ndarray  # model-predicted accuracy per task
    realised: np.ndarray  # sampled empirical accuracy per task
    batch_sizes: np.ndarray

    @property
    def mean_expected(self) -> float:
        return float(self.expected.mean())

    @property
    def mean_realised(self) -> float:
        return float(self.realised.mean())

    @property
    def max_abs_gap(self) -> float:
        return float(np.abs(self.realised - self.expected).max())


def evaluate_schedule_batches(
    schedule: Schedule,
    batch_sizes,
    seed: SeedLike = None,
) -> BatchEvaluation:
    """Sample realised per-task accuracies for a schedule of batch tasks.

    ``batch_sizes[j]`` is the number of images task j classifies; the
    expected accuracy is the schedule's `task_accuracies` and each task
    realises a Binomial draw.  Large batches concentrate near the
    expectation (the paper's averages are over thousands of images).
    """
    sizes = np.asarray(list(batch_sizes), dtype=int)
    if sizes.shape != (schedule.instance.n_tasks,):
        raise ValidationError(
            f"need one batch size per task ({schedule.instance.n_tasks}), got {sizes.shape}"
        )
    if np.any(sizes < 1):
        raise ValidationError("batch sizes must be >= 1")
    rng = ensure_rng(seed)
    expected = schedule.task_accuracies
    realised = np.array(
        [float(rng.binomial(int(b), float(p))) / int(b) for p, b in zip(expected, sizes)]
    )
    return BatchEvaluation(expected=expected, realised=realised, batch_sizes=sizes)
