"""Synthetic Once-For-All model substrate (paper Fig. 2) and profiler."""

from .evaluation import BatchEvaluation, evaluate_schedule_batches, sample_batch_accuracy
from .fitting import FitResult, accuracy_from_measurements, fit_exponential
from .ofa import OnceForAllFamily, SubnetworkConfig, SubnetworkProfile
from .profiler import Measurement, SimulatedProfiler
from .zoo import MODEL_ZOO, get_family, ofa_mobilenet_v3, ofa_proxyless, ofa_resnet50

__all__ = [
    "BatchEvaluation",
    "evaluate_schedule_batches",
    "sample_batch_accuracy",
    "FitResult",
    "fit_exponential",
    "accuracy_from_measurements",
    "OnceForAllFamily",
    "SubnetworkConfig",
    "SubnetworkProfile",
    "Measurement",
    "SimulatedProfiler",
    "MODEL_ZOO",
    "get_family",
    "ofa_resnet50",
    "ofa_mobilenet_v3",
    "ofa_proxyless",
]
