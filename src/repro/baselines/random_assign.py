"""Random-assignment baseline (extra, not in the paper).

A floor for sanity checks and ablations: each task is assigned to a
uniformly random machine and granted the largest feasible continuous
processing time there.  Any serious scheduler must beat it.
"""

from __future__ import annotations

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..utils.rng import SeedLike, ensure_rng
from .edf import PlacementState

__all__ = ["RandomAssignScheduler"]


class RandomAssignScheduler(Scheduler):
    """Uniform random machine per task, maximal feasible grant."""

    name = "RANDOM-ASSIGN"

    def __init__(self, seed: SeedLike = None):
        self._rng = ensure_rng(seed)

    def solve(self, instance: ProblemInstance) -> Schedule:
        state = PlacementState(instance)
        speeds = instance.cluster.speeds
        powers = instance.cluster.powers
        machines = self._rng.integers(0, instance.n_machines, size=instance.n_tasks)
        for j, task in enumerate(instance.tasks):
            r = int(machines[j])
            seconds = min(
                max(task.deadline - state.loads[r], 0.0),
                task.f_max / speeds[r],
                max(state.energy_left, 0.0) / powers[r],
            )
            if seconds > 0:
                state.place(j, r, seconds)
        return state.to_schedule()
