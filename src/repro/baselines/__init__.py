"""Baseline schedulers the paper compares against, plus extra ablation floors."""

from .discrete_levels import PAPER_LEVELS, EDFDiscreteLevelsScheduler
from .edf import PlacementState, least_loaded_machine
from .genetic import GeneticScheduler, solve_fixed_assignment
from .greedy import GreedyEnergyScheduler
from .no_compression import EDFNoCompressionScheduler
from .random_assign import RandomAssignScheduler

__all__ = [
    "EDFNoCompressionScheduler",
    "EDFDiscreteLevelsScheduler",
    "PAPER_LEVELS",
    "GreedyEnergyScheduler",
    "GeneticScheduler",
    "solve_fixed_assignment",
    "RandomAssignScheduler",
    "PlacementState",
    "least_loaded_machine",
]
