"""Greedy energy-aware baseline (extra, not in the paper).

A natural "do the obvious thing" comparator for the ablation study:
tasks EDF; each task is offered to machines in decreasing energy
efficiency and granted as much continuous compression time as the
machine's deadline slack, its own ``f_max`` and the remaining budget
allow.  Unlike DSCT-EA-APPROX it never reasons about *which* tasks
deserve the energy, so it overspends on early flat tasks and starves
late steep ones.
"""

from __future__ import annotations

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from .edf import PlacementState

__all__ = ["GreedyEnergyScheduler"]


class GreedyEnergyScheduler(Scheduler):
    """EDF + most-efficient-machine-first, maximal continuous grant."""

    name = "GREEDY-ENERGY"

    def solve(self, instance: ProblemInstance) -> Schedule:
        state = PlacementState(instance)
        speeds = instance.cluster.speeds
        powers = instance.cluster.powers
        order = instance.cluster.efficiency_order(descending=True)
        for j, task in enumerate(instance.tasks):
            best_r, best_seconds = -1, 0.0
            for r in order:
                r = int(r)
                slack = task.deadline - state.loads[r]
                if slack <= 0:
                    continue
                seconds = min(
                    slack,
                    task.f_max / speeds[r],
                    max(state.energy_left, 0.0) / powers[r],
                )
                if seconds > best_seconds:
                    best_r, best_seconds = r, seconds
                    break  # efficiency order: first machine with room wins
            if best_r >= 0 and best_seconds > 0:
                state.place(j, best_r, best_seconds)
        return state.to_schedule()
