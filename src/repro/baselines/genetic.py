"""Genetic-algorithm baseline over task→machine assignments.

The paper's related work (Wu & Che [24], Tsao et al. [21]) attacks
energy-aware scheduling with evolutionary metaheuristics; this module
provides that comparison point for DSCT-EA:

* a chromosome is an assignment σ: tasks → machines;
* fitness is **exact**: with σ fixed, DSCT-EA restricts to a small LP
  (the relaxation with ``t_jr = 0`` for ``r ≠ σ(j)``), solved by HiGHS —
  so the GA searches only the combinatorial layer, like the rounding
  step of DSCT-EA-APPROX does;
* standard machinery: tournament selection, uniform crossover, per-gene
  mutation, elitism, fitness memoisation.

It is *much* slower than DSCT-EA-APPROX (one LP per distinct
chromosome) and, in the benchmark matrix, also no better — which is the
point the paper's "first approximation algorithm with proven guarantees"
framing makes against the metaheuristic line of work.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..exact.model import build_relaxation, extract_times
from ..utils.errors import SolverError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import require

__all__ = ["GeneticScheduler", "solve_fixed_assignment"]


def solve_fixed_assignment(
    instance: ProblemInstance, assignment: np.ndarray
) -> Tuple[Schedule, float]:
    """Optimal processing times for a fixed task→machine assignment.

    Solves the DSCT-EA-FR LP with every off-assignment ``t_jr`` fixed to
    zero; with the assignment given, the relaxation *is* the integral
    problem, so the result is the exact optimum for σ.
    """
    from scipy.optimize import linprog

    assignment = np.asarray(assignment, dtype=int)
    require(assignment.shape == (instance.n_tasks,), "assignment must have one machine per task")
    require(
        bool(np.all((assignment >= 0) & (assignment < instance.n_machines))),
        "assignment entries must be valid machine indices",
    )
    model = build_relaxation(instance)
    upper = model.upper.copy()
    for j in range(instance.n_tasks):
        for r in range(instance.n_machines):
            if r != assignment[j]:
                upper[model.layout.t(j, r)] = 0.0
    res = linprog(
        model.c,
        A_ub=model.a_ub,
        b_ub=model.b_ub,
        bounds=np.column_stack([model.lower, upper]),
        method="highs",
    )
    if res.status != 0:
        raise SolverError(f"fixed-assignment LP failed: status={res.status} ({res.message})")
    times = extract_times(model.layout, res.x)
    return Schedule(instance, times), float(-res.fun)


class GeneticScheduler(Scheduler):
    """GA over assignments with exact LP fitness."""

    name = "GENETIC-ASSIGNMENT"

    def __init__(
        self,
        *,
        population: int = 24,
        generations: int = 30,
        mutation_rate: float = 0.08,
        tournament: int = 3,
        elite: int = 2,
        seed: SeedLike = None,
    ):
        require(population >= 4, "population must be >= 4")
        require(generations >= 1, "generations must be >= 1")
        require(0.0 <= mutation_rate <= 1.0, "mutation_rate must lie in [0, 1]")
        require(2 <= tournament <= population, "tournament size out of range")
        require(0 <= elite < population, "elite count out of range")
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament = tournament
        self.elite = elite
        self._rng = ensure_rng(seed)

    # -- GA machinery -----------------------------------------------------------

    def _seed_population(self, instance: ProblemInstance) -> np.ndarray:
        n, m = instance.n_tasks, instance.n_machines
        pop = self._rng.integers(0, m, size=(self.population, n))
        # Two informed seeds: everything on the most efficient machine,
        # and the DSCT-EA-APPROX assignment (when it assigns).
        best_eff = int(instance.cluster.efficiency_order(descending=True)[0])
        pop[0, :] = best_eff
        try:
            from ..algorithms.approx import ApproxScheduler

            approx = ApproxScheduler().solve(instance)
            assigned = approx.assigned_machine
            pop[1, :] = np.where(assigned >= 0, assigned, best_eff)
        except Exception:  # noqa: BLE001 — seeding is best-effort
            pass
        return pop

    def _fitness(
        self, instance: ProblemInstance, chromo: np.ndarray, cache: Dict[bytes, float]
    ) -> float:
        key = chromo.tobytes()
        if key not in cache:
            _, objective = solve_fixed_assignment(instance, chromo)
            cache[key] = objective
        return cache[key]

    def solve(self, instance: ProblemInstance) -> Schedule:
        return self.solve_with_info(instance).schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        start = time.perf_counter()
        n, m = instance.n_tasks, instance.n_machines
        cache: Dict[bytes, float] = {}
        pop = self._seed_population(instance)
        fitness = np.array([self._fitness(instance, c, cache) for c in pop])

        for _generation in range(self.generations):
            order = np.argsort(-fitness)
            pop, fitness = pop[order], fitness[order]
            next_pop = [pop[i].copy() for i in range(self.elite)]
            while len(next_pop) < self.population:
                # tournament selection of two parents
                parents = []
                for _ in range(2):
                    contenders = self._rng.integers(0, self.population, size=self.tournament)
                    parents.append(pop[contenders[np.argmax(fitness[contenders])]])
                # uniform crossover + mutation
                mask = self._rng.random(n) < 0.5
                child = np.where(mask, parents[0], parents[1])
                mutate = self._rng.random(n) < self.mutation_rate
                if m > 1 and np.any(mutate):
                    child = child.copy()
                    child[mutate] = self._rng.integers(0, m, size=int(mutate.sum()))
                next_pop.append(child)
            pop = np.asarray(next_pop)
            fitness = np.array([self._fitness(instance, c, cache) for c in pop])

        best = pop[int(np.argmax(fitness))]
        schedule, objective = solve_fixed_assignment(instance, best)
        elapsed = time.perf_counter() - start
        info = SolveInfo(
            self.name,
            status="ok",
            runtime_seconds=elapsed,
            extra={
                "generations": self.generations,
                "distinct_chromosomes": len(cache),
                "best_objective": objective,
            },
        )
        return SolveResult(schedule, info)
