"""EDF-3CompressionLevels baseline (paper Sec. 6, "Baselines").

Considers a discrete number of compression levels — by default the
paper's three accuracy targets of 27 %, 55 % and 82 % — instead of the
continuous compression of DSCT-EA-APPROX.  The placement strategy
follows the quality-oriented allocation of Lee & Song [11]: tasks are
first admitted EDF onto the least-loaded machine at the *lowest* level
that fits the deadline and remaining budget (maximising admissions),
then an iterative *upgrade pass* spends the remaining budget raising
levels in decreasing accuracy-gain-per-Joule order where deadline slack
allows — [11]'s quality-maximisation loop.  Without the two-phase
structure the baseline degenerates to burning the whole budget on the
earliest tasks, which is not what a quality-oriented allocator does.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..algorithms.base import Scheduler
from ..algorithms.refine_profile import deadline_slack
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..utils.errors import ValidationError
from .edf import PlacementState

__all__ = ["EDFDiscreteLevelsScheduler", "PAPER_LEVELS"]

#: The paper's three accuracy levels (fractions).
PAPER_LEVELS: tuple[float, ...] = (0.27, 0.55, 0.82)


class EDFDiscreteLevelsScheduler(Scheduler):
    """EDF + least-loaded placement over discrete compression levels."""

    name = "EDF-3COMPRESSIONLEVELS"

    def __init__(self, levels: Sequence[float] = PAPER_LEVELS, *, upgrade_pass: bool = True):
        levels = tuple(sorted(levels))
        if not levels:
            raise ValidationError("need at least one compression level")
        if any(not 0.0 < lv <= 1.0 for lv in levels):
            raise ValidationError(f"levels must lie in (0, 1], got {levels}")
        self.levels = levels
        self.upgrade_pass = upgrade_pass
        if len(levels) != 3:
            self.name = f"EDF-{len(levels)}COMPRESSIONLEVELS"

    def _level_flops(self, task) -> list[float]:
        """FLOP demand of each level for this task (capped at f_max)."""
        flops = []
        for lv in self.levels:
            target = min(lv, task.a_max)
            flops.append(task.accuracy.inverse(target))
        return flops

    def solve(self, instance: ProblemInstance) -> Schedule:
        state = PlacementState(instance)
        speeds = instance.cluster.speeds
        powers = instance.cluster.powers
        chosen_level = np.full(instance.n_tasks, -1, dtype=int)
        chosen_machine = np.full(instance.n_tasks, -1, dtype=int)

        for j, task in enumerate(instance.tasks):
            flops_per_level = self._level_flops(task)
            placed = False
            for r in np.argsort(state.loads, kind="stable"):
                for level in range(len(self.levels)):
                    seconds = flops_per_level[level] / speeds[r]
                    if state.fits(j, int(r), seconds):
                        state.place(j, int(r), seconds)
                        chosen_level[j] = level
                        chosen_machine[j] = int(r)
                        placed = True
                        break
                if placed:
                    break
            # Unplaceable tasks stay at a_min (random guess).

        if self.upgrade_pass:
            self._upgrade(instance, state, chosen_level, chosen_machine)
        return state.to_schedule()

    def _upgrade(
        self,
        instance: ProblemInstance,
        state: PlacementState,
        chosen_level: np.ndarray,
        chosen_machine: np.ndarray,
    ) -> None:
        """Spend leftover budget raising levels (best gain-per-Joule first)."""
        speeds = instance.cluster.speeds
        powers = instance.cluster.powers
        improved = True
        while improved:
            improved = False
            slack = deadline_slack(state.times, instance.tasks.deadlines)
            # Candidate upgrades: one level step per task per round, ranked
            # by accuracy gained per Joule spent.
            best: Optional[tuple[float, int, float]] = None
            for j, task in enumerate(instance.tasks):
                r = chosen_machine[j]
                level = chosen_level[j]
                if r < 0 or level + 1 >= len(self.levels):
                    continue
                flops = self._level_flops(task)
                extra_seconds = (flops[level + 1] - flops[level]) / speeds[r]
                if extra_seconds <= 0:
                    # The task saturates below the next nominal level; a
                    # zero-cost "upgrade" would loop forever — mark done.
                    chosen_level[j] = len(self.levels) - 1
                    continue
                extra_energy = extra_seconds * powers[r]
                if extra_seconds > slack[j, r] * (1.0 + 1e-12):
                    continue
                if extra_energy > state.energy_left * (1.0 + 1e-12):
                    continue
                gain = task.accuracy.value(flops[level + 1]) - task.accuracy.value(flops[level])
                ratio = gain / extra_energy
                if best is None or ratio > best[0]:
                    best = (ratio, j, extra_seconds)
            if best is not None:
                _, j, extra_seconds = best
                r = int(chosen_machine[j])
                state.times[j, r] += extra_seconds
                state.loads[r] += extra_seconds
                state.energy_used += extra_seconds * powers[r]
                chosen_level[j] += 1
                improved = True
