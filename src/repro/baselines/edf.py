"""Shared helpers for the EDF-family baselines.

All baselines walk tasks in EDF order (the :class:`~repro.core.task.TaskSet`
index order) and place each task on one machine, so they share the
bookkeeping of per-machine loads, per-machine deadline slack and the
energy meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule

__all__ = ["PlacementState", "least_loaded_machine"]


@dataclass
class PlacementState:
    """Running state of a greedy EDF placement."""

    instance: ProblemInstance
    times: np.ndarray = field(init=False)
    loads: np.ndarray = field(init=False)
    energy_used: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.times = np.zeros((self.instance.n_tasks, self.instance.n_machines))
        self.loads = np.zeros(self.instance.n_machines)

    @property
    def energy_left(self) -> float:
        return self.instance.budget - self.energy_used

    def fits(self, j: int, r: int, seconds: float) -> bool:
        """Whether running task ``j`` for ``seconds`` on ``r`` keeps the
        task within its deadline and the system within budget.

        Deadline check: the task starts at the machine's current load
        (earlier-deadline tasks were placed first), so it completes at
        ``loads[r] + seconds``.
        """
        if seconds < 0:
            return False
        deadline = self.instance.tasks.deadlines[j]
        power = self.instance.cluster.powers[r]
        return (
            self.loads[r] + seconds <= deadline * (1.0 + 1e-12)
            and self.energy_used + seconds * power <= self.instance.budget * (1.0 + 1e-12)
        )

    def place(self, j: int, r: int, seconds: float) -> None:
        """Commit task ``j`` to machine ``r`` for ``seconds``."""
        self.times[j, r] = seconds
        self.loads[r] += seconds
        self.energy_used += seconds * self.instance.cluster.powers[r]

    def to_schedule(self) -> Schedule:
        return Schedule(self.instance, self.times)


def least_loaded_machine(loads: np.ndarray, *, exclude: Optional[np.ndarray] = None) -> int:
    """Index of the machine with the least work ([29]'s placement rule).

    ``exclude`` is an optional boolean mask of machines to skip; returns
    −1 when every machine is excluded.
    """
    candidates = np.where(exclude, np.inf, loads) if exclude is not None else loads
    r = int(np.argmin(candidates))
    if exclude is not None and exclude[r]:
        return -1
    return r
