"""EDF-NoCompression baseline (paper Sec. 6, "Baselines").

No compression is applied: a scheduled task always performs its full
``f_j^max`` floating-point operations.  Tasks are taken Earliest Deadline
First and placed on the machine with the least amount of work [29].
"Scheduling is performed until the energy budget is reached, at which
point no further tasks are scheduled."

Placement details (the paper leaves them implicit):

* a task whose full execution cannot meet its deadline on the
  least-loaded machine is tried on the remaining machines in load order
  and *skipped* if none fits — it still answers with a random guess, so
  it scores ``a_min`` like every other method's unscheduled tasks;
* a task whose full execution would exceed the remaining energy budget
  stops the scheduling loop (per the paper's wording), leaving all later
  tasks unscheduled.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from .edf import PlacementState

__all__ = ["EDFNoCompressionScheduler"]


class EDFNoCompressionScheduler(Scheduler):
    """EDF + least-loaded placement, full processing only."""

    name = "EDF-NOCOMPRESSION"

    def solve(self, instance: ProblemInstance) -> Schedule:
        state = PlacementState(instance)
        speeds = instance.cluster.speeds
        powers = instance.cluster.powers
        for j, task in enumerate(instance.tasks):
            budget_blocked = True
            placed = False
            for r in np.argsort(state.loads, kind="stable"):
                seconds = task.f_max / speeds[r]
                if state.loads[r] + seconds > task.deadline * (1.0 + 1e-12):
                    budget_blocked = False  # deadline, not energy, is the issue here
                    continue
                if state.energy_used + seconds * powers[r] > instance.budget * (1.0 + 1e-12):
                    continue
                state.place(j, int(r), seconds)
                placed = True
                break
            if placed:
                continue
            if budget_blocked:
                # Every deadline-feasible machine was blocked by energy:
                # the budget is reached, stop scheduling entirely.
                break
            # Otherwise the task just cannot meet its deadline uncompressed;
            # skip it and keep going.
        return state.to_schedule()
