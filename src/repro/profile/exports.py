"""Profile exports: collapsed stacks, speedscope, Perfetto, flamegraph.

All exporters consume the plain-data profile document produced by
:meth:`~repro.profile.sampler.StackSampler.profile` (and by the cluster's
``/debug/profile`` merge), so one captured profile feeds every viewer:

* :func:`collapsed_stacks` — Brendan-Gregg collapsed text
  (``root;child;leaf count`` lines), the lingua franca of flamegraph
  tooling; the active phase rides as a synthetic ``phase:`` root frame;
* :func:`speedscope_document` — a ``"sampled"``-type profile for
  https://www.speedscope.app (pure JSON, no dependency);
* :func:`perfetto_profile` — Chrome/Perfetto ``traceEvents`` laying the
  aggregated stacks out as a synthetic flame chart (each distinct stack
  occupies ``count / hz`` seconds; ordering is by weight, not arrival,
  because an aggregated profile has no timeline);
* :func:`flamegraph_html` — a self-contained flamegraph as nested HTML
  ``<div>``s with CSS-proportional widths and ``title`` tooltips —
  openable anywhere, zero JavaScript dependencies;
* :func:`merge_profiles` — cross-shard aggregation by
  ``(stack, phase, trace_id)`` key, used by the front-end.
"""

from __future__ import annotations

import html
import io
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "collapsed_stacks",
    "speedscope_document",
    "perfetto_profile",
    "flamegraph_html",
    "merge_profiles",
]

Profile = Dict[str, Any]


def _frames_of(sample: Dict[str, Any]) -> Tuple[str, ...]:
    """A sample's frame list with the phase as synthetic root frame."""
    frames: List[str] = []
    if sample.get("phase"):
        frames.append(f"phase:{sample['phase']}")
    frames.extend(sample.get("stack", []))
    return tuple(frames)


def merge_profiles(profiles: Iterable[Optional[Profile]]) -> Profile:
    """Sum sample counts across profiles keyed by (stack, phase, trace)."""
    counts: Dict[Tuple[Tuple[str, ...], Optional[str], Optional[str]], int] = {}
    hz: Optional[float] = None
    duration = 0.0
    total = 0
    dropped = 0
    for profile in profiles:
        if not profile:
            continue
        hz = hz or float(profile.get("hz", 0.0)) or None
        duration = max(duration, float(profile.get("duration_seconds", 0.0)))
        total += int(profile.get("total_samples", 0))
        dropped += int(profile.get("dropped_samples", 0))
        for sample in profile.get("samples", []):
            key = (tuple(sample.get("stack", [])), sample.get("phase"), sample.get("trace_id"))
            counts[key] = counts.get(key, 0) + int(sample.get("count", 0))
    samples = [
        {"stack": list(stack), "phase": phase, "trace_id": trace_id, "count": count}
        for (stack, phase, trace_id), count in counts.items()
    ]
    samples.sort(key=lambda s: (-s["count"], s["stack"], s["phase"] or ""))
    phases: Dict[str, Dict[str, float]] = {}
    for sample in samples:
        if sample["phase"] is None:
            continue
        bucket = phases.setdefault(sample["phase"], {"samples": 0, "seconds": 0.0})
        bucket["samples"] += sample["count"]
    if hz:
        for bucket in phases.values():
            bucket["seconds"] = bucket["samples"] / hz
    return {
        "hz": hz or 0.0,
        "duration_seconds": duration,
        "total_samples": total,
        "dropped_samples": dropped,
        "samples": samples,
        "phases": phases,
    }


def collapsed_stacks(profile: Profile) -> str:
    """Collapsed-stack text, one ``frame;frame;... count`` line per stack.

    Lines are sorted (and equal stacks from different traces merged), so
    output is deterministic and diffable.
    """
    weights: Dict[Tuple[str, ...], int] = {}
    for sample in profile.get("samples", []):
        frames = _frames_of(sample)
        if not frames:
            continue
        weights[frames] = weights.get(frames, 0) + int(sample.get("count", 0))
    out = io.StringIO()
    for frames in sorted(weights):
        out.write(";".join(frames) + f" {weights[frames]}\n")
    return out.getvalue()


def speedscope_document(profile: Profile, *, name: str = "repro profile") -> Dict[str, Any]:
    """A speedscope ``sampled`` profile (weights in sample counts)."""
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    samples: List[List[int]] = []
    weights: List[int] = []
    for sample in profile.get("samples", []):
        stack = []
        for frame in _frames_of(sample):
            at = frame_index.get(frame)
            if at is None:
                at = len(frames)
                frame_index[frame] = at
                frames.append({"name": frame})
            stack.append(at)
        if not stack:
            continue
        samples.append(stack)
        weights.append(int(sample.get("count", 0)))
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro.profile",
    }


def perfetto_profile(profile: Profile, *, pid: int = 1) -> Dict[str, Any]:
    """Chrome/Perfetto ``traceEvents`` of the aggregated profile.

    An aggregated profile has no timeline, so stacks are laid out
    sequentially, heaviest first, each occupying its estimated wall time
    (``count / hz``); every frame becomes one complete (``"X"``) event
    so the result renders as a flame chart.
    """
    hz = float(profile.get("hz", 0.0)) or 1.0
    events: List[Dict[str, Any]] = []
    cursor_us = 0.0
    for sample in profile.get("samples", []):
        frames = _frames_of(sample)
        count = int(sample.get("count", 0))
        if not frames or count <= 0:
            continue
        width_us = count / hz * 1e6
        for frame in frames:
            event: Dict[str, Any] = {
                "name": frame,
                "ph": "X",
                "ts": round(cursor_us, 3),
                "dur": round(width_us, 3),
                "pid": pid,
                "tid": 1,
                "cat": "profile",
            }
            if sample.get("trace_id"):
                event["args"] = {"trace_id": sample["trace_id"]}
            events.append(event)
        cursor_us += width_us
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "exporter": "repro.profile",
            "hz": profile.get("hz"),
            "total_samples": profile.get("total_samples"),
            "synthetic_timeline": True,
        },
    }


# -- flamegraph HTML -------------------------------------------------------------


class _Node:
    __slots__ = ("name", "weight", "children")

    def __init__(self, name: str):
        self.name = name
        self.weight = 0
        self.children: Dict[str, "_Node"] = {}


def _build_tree(profile: Profile) -> _Node:
    root = _Node("all")
    for sample in profile.get("samples", []):
        count = int(sample.get("count", 0))
        if count <= 0:
            continue
        root.weight += count
        node = root
        for frame in _frames_of(sample):
            child = node.children.get(frame)
            if child is None:
                child = _Node(frame)
                node.children[frame] = child
            child.weight += count
            node = child
    return root


def _frame_color(name: str) -> str:
    """A stable warm color per frame name (hash-keyed, no randomness)."""
    seed = sum(ord(c) for c in name) % 991
    red = 205 + seed % 50
    green = 60 + (seed * 7) % 130
    blue = 40 + (seed * 13) % 40
    return f"rgb({red},{green},{blue})"


def _render_node(out: io.StringIO, node: _Node, parent_weight: int) -> None:
    share = node.weight / parent_weight if parent_weight else 0.0
    label = html.escape(node.name)
    tooltip = html.escape(f"{node.name} — {node.weight} samples ({share:.1%} of parent)")
    style = f"width:{share * 100:.4f}%;background:{_frame_color(node.name)}"
    out.write(f'<div class="frame" style="{style}" title="{tooltip}">')
    out.write(f'<span class="label">{label}</span>')
    if node.children:
        out.write('<div class="row">')
        ordered = sorted(node.children.values(), key=lambda c: (-c.weight, c.name))
        for child in ordered:
            _render_node(out, child, node.weight)
        out.write("</div>")
    out.write("</div>")


_FLAME_CSS = """
body { font: 12px/1.4 system-ui, sans-serif; margin: 16px; }
h1 { font-size: 16px; }
.meta { color: #555; margin-bottom: 12px; }
.flame { border: 1px solid #ccc; }
.frame { box-sizing: border-box; overflow: hidden; border: 1px solid rgba(255,255,255,.55); }
.frame .label { display: block; padding: 1px 4px; white-space: nowrap;
                overflow: hidden; text-overflow: ellipsis; font-size: 11px; }
.row { display: flex; width: 100%; }
"""


def flamegraph_html(profile: Profile, *, title: str = "repro profile") -> str:
    """A dependency-free flamegraph: nested flex ``<div>``s, no JS.

    Width encodes sample share; hover shows exact counts via the
    ``title`` tooltip.  Root is at the top (icicle orientation).
    """
    root = _build_tree(profile)
    body = io.StringIO()
    _render_node(body, root, max(root.weight, 1))
    meta = (
        f"{profile.get('total_samples', 0)} samples at {profile.get('hz', 0):g} Hz "
        f"over {profile.get('duration_seconds', 0.0):.2f}s; "
        f"{profile.get('dropped_samples', 0)} dropped"
    )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_FLAME_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1><div class='meta'>{html.escape(meta)}</div>"
        f"<div class='flame'>{body.getvalue()}</div>"
        f"<script type='application/json' id='profile-data'>"
        f"{json.dumps({'phases': profile.get('phases', {})}, sort_keys=True)}"
        "</script></body></html>"
    )
