"""The profiling benchmark behind ``repro bench profile``.

Runs the seeded two-case solver workload (the two micro-benchmark
instances) down each hot path — fractional water-filling, the LP
relaxation, fractional rounding, and the rolling-horizon planner —
under a telemetry registry, and reports:

* **per-phase wall-time splits** — exact self/total seconds per span
  name from :func:`~repro.profile.phases.phase_breakdown`, plus each
  phase's *share* of its path's root-span time.  Shares, not absolute
  seconds, are what ``benchmarks/check_regression.py --profile`` gates:
  they survive CI machines of different speeds;
* **span coverage** — root-span seconds over measured wall seconds per
  path, and aggregated over the fractional/LP/rounding solve paths
  (the acceptance bar is ≥90%: the phase attribution must account for
  where the solve wall time actually went);
* **sampler overhead** — median wall time of the solve workload with a
  running :class:`~repro.profile.sampler.StackSampler` against the
  unprofiled median (<5% is the budget; <2% typical at the default Hz);
* **artifacts** — an attributed sampled profile exported as flamegraph
  HTML, speedscope JSON and collapsed text when paths are given.

The output document is committed as ``benchmarks/BENCH_profile.json``
(the per-phase budget baseline ROADMAP item 2's vectorization PRs will
be measured against).
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..algorithms import ApproxScheduler, round_fractional, solve_fractional
from ..exact import solve_lp_relaxation
from ..online.planner import RollingHorizonPlanner
from ..telemetry import MetricsRegistry, collector
from ..utils.fileio import atomic_write
from ..workloads import runtime_instance
from ..workloads.arrivals import PoissonArrivals
from .exports import collapsed_stacks, flamegraph_html, speedscope_document
from .phases import phase_breakdown
from .sampler import DEFAULT_HZ, StackSampler

__all__ = ["run_profile_bench", "SOLVE_PATHS", "WORKLOAD_CASES"]

#: The seeded two-case workload: the micro-benchmark instance plus a
#: smaller second case so per-phase shares are not a single-size artifact.
WORKLOAD_CASES: Tuple[Tuple[int, int, int], ...] = ((100, 5, 7), (60, 3, 11))

#: The solve paths whose spans must cover >=90% of the measured wall time.
SOLVE_PATHS = ("fractional", "lp", "rounding")


def _instances():
    return [runtime_instance(n, m, seed=seed) for n, m, seed in WORKLOAD_CASES]


def _planner_workload() -> Tuple[RollingHorizonPlanner, list]:
    instance = runtime_instance(40, 3, seed=7)
    planner = RollingHorizonPlanner(
        instance.cluster,
        ApproxScheduler(),
        window_seconds=1.0,
        power_cap_fraction=0.5,
    )
    arrivals = PoissonArrivals(rate_per_second=25.0, seed=13)
    return planner, arrivals.generate(4.0)


def _path_runners() -> Dict[str, Callable[[], None]]:
    """One zero-arg runner per profiled path (inputs prebuilt, unprofiled)."""
    instances = _instances()
    fractionals = [solve_fractional(instance)[0] for instance in instances]
    planner, requests = _planner_workload()
    return {
        "fractional": lambda: [solve_fractional(i) for i in instances],
        "lp": lambda: [solve_lp_relaxation(i) for i in instances],
        "rounding": lambda: [
            round_fractional(i, f) for i, f in zip(instances, fractionals)
        ],
        "planner": lambda: planner.run(requests),
    }


def _profile_path(runner: Callable[[], None], repeats: int) -> Dict[str, Any]:
    """Run one path under a registry; return wall, coverage and phase splits."""
    registry = MetricsRegistry()
    with collector(registry):
        began = time.perf_counter()
        for _ in range(repeats):
            runner()
        wall = time.perf_counter() - began
    snapshot = registry.snapshot()
    breakdown = phase_breakdown(snapshot)
    root_seconds = sum(
        float(s["duration"])
        for s in snapshot["spans"]
        if s.get("parent_id") is None and s.get("duration") is not None
    )
    phases = {
        name: {
            "count": entry["count"],
            "total_seconds": entry["total_seconds"],
            "self_seconds": entry["self_seconds"],
            "share": (entry["self_seconds"] / root_seconds) if root_seconds else 0.0,
        }
        for name, entry in sorted(breakdown.items())
    }
    return {
        "wall_seconds": wall,
        "span_seconds": root_seconds,
        "span_coverage": (root_seconds / wall) if wall else 0.0,
        "phases": phases,
    }


def _measure_overhead(
    runners: Dict[str, Callable[[], None]], hz: float, repeats: int
) -> Dict[str, Any]:
    """Median solve wall time with and without a running sampler."""

    def one_pass() -> float:
        began = time.perf_counter()
        for path in SOLVE_PATHS:
            runners[path]()
        return time.perf_counter() - began

    base: List[float] = []
    sampled: List[float] = []
    registry = MetricsRegistry()
    for _ in range(max(repeats, 1)):
        base.append(one_pass())
        with collector(registry), StackSampler(registry, hz=hz):
            sampled.append(one_pass())
    base_median = statistics.median(base)
    sampled_median = statistics.median(sampled)
    raw = (sampled_median / base_median - 1.0) if base_median else 0.0
    return {
        "hz": hz,
        "repeats": len(base),
        "base_seconds": base_median,
        "sampled_seconds": sampled_median,
        "raw_overhead_fraction": raw,
        "overhead_fraction": max(raw, 0.0),
    }


def _capture_profile(runners: Dict[str, Callable[[], None]], hz: float) -> Dict[str, Any]:
    """One attributed sampled profile of the full workload (artifacts).

    The workload is fast (fractions of a second), so it loops until the
    sampler has seen at least ~2 seconds of it — enough ticks for a
    readable flamegraph — capped at 50 iterations.
    """
    registry = MetricsRegistry()
    with collector(registry), StackSampler(registry, hz=max(hz, 47.0)) as sampler:
        began = time.perf_counter()
        for _ in range(50):
            for runner in runners.values():
                runner()
            if time.perf_counter() - began >= 2.0:
                break
        return sampler.profile()


def run_profile_bench(
    *,
    out: Optional[str] = None,
    flame: Optional[str] = None,
    speedscope: Optional[str] = None,
    collapsed: Optional[str] = None,
    repeats: int = 3,
    hz: float = DEFAULT_HZ,
    stream: Any = None,
) -> Dict[str, Any]:
    """Run the profiling benchmark; write the report and any artifacts."""
    say = stream.write if stream is not None else (lambda _t: None)
    runners = _path_runners()
    paths: Dict[str, Any] = {}
    for path, runner in runners.items():
        runner()  # warm-up: imports, caches, allocator
        paths[path] = _profile_path(runner, repeats)
        say(
            f"{path:<12} wall {paths[path]['wall_seconds']:.4f}s  "
            f"span coverage {paths[path]['span_coverage']:.1%}  "
            f"{len(paths[path]['phases'])} phase(s)\n"
        )
    solve_wall = sum(paths[p]["wall_seconds"] for p in SOLVE_PATHS)
    solve_span = sum(paths[p]["span_seconds"] for p in SOLVE_PATHS)
    overhead = _measure_overhead(runners, hz, repeats)
    say(
        f"sampler overhead at {hz:g} Hz: {overhead['overhead_fraction']:.2%} "
        f"({overhead['sampled_seconds']:.4f}s vs {overhead['base_seconds']:.4f}s)\n"
    )
    budgets = {
        f"{path}/{phase}": entry["share"]
        for path, doc in paths.items()
        for phase, entry in doc["phases"].items()
    }
    report: Dict[str, Any] = {
        "meta": {
            "workload": [list(case) for case in WORKLOAD_CASES],
            "repeats": repeats,
            "hz": hz,
            "note": "shares are self_seconds / path root-span seconds; "
            "check_regression.py --profile gates on share regressions",
        },
        "paths": paths,
        "solve": {
            "paths": list(SOLVE_PATHS),
            "wall_seconds": solve_wall,
            "span_seconds": solve_span,
            "coverage": (solve_span / solve_wall) if solve_wall else 0.0,
        },
        "sampler_overhead": overhead,
        "budgets": budgets,
    }
    profile = None
    if flame or speedscope or collapsed:
        profile = _capture_profile(runners, hz)
    if out:
        atomic_write(out, json.dumps(report, indent=2, sort_keys=True) + "\n")
        say(f"report -> {out}\n")
    if flame and profile is not None:
        atomic_write(flame, flamegraph_html(profile, title="repro bench profile"))
        say(f"flamegraph -> {flame}\n")
    if speedscope and profile is not None:
        atomic_write(speedscope, json.dumps(speedscope_document(profile)) + "\n")
        say(f"speedscope -> {speedscope}\n")
    if collapsed and profile is not None:
        atomic_write(collapsed, collapsed_stacks(profile))
        say(f"collapsed stacks -> {collapsed}\n")
    return report
