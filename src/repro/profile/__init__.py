"""Continuous profiling and performance attribution.

The observability stack built by the rest of :mod:`repro` answers *what
happened* (metrics) and *what belonged together* (traces); this package
answers *where the time went*:

* :class:`~repro.profile.sampler.StackSampler` — a thread-based
  sampling wall-clock profiler (``sys._current_frames()`` at a
  configurable rate) that attributes every sample to the active
  telemetry phase span and trace id via the registry's per-thread span
  map, at <2% overhead;
* :mod:`~repro.profile.exports` — collapsed-stack text, speedscope
  JSON, Perfetto/Chrome trace JSON and a dependency-free flamegraph
  HTML, all from the same plain-data profile document, plus cross-shard
  profile merging;
* :mod:`~repro.profile.phases` — exact per-phase wall-time splits
  (total / self / count) computed from closed telemetry spans, the
  attribution that ``repro bench profile`` turns into per-phase CI
  budgets;
* :mod:`~repro.profile.bench` — the seeded profiling benchmark behind
  ``repro bench profile`` and ``benchmarks/BENCH_profile.json``;
* :mod:`~repro.profile.top` — the ``repro top`` live cluster dashboard.
"""

from .exports import (
    collapsed_stacks,
    flamegraph_html,
    merge_profiles,
    perfetto_profile,
    speedscope_document,
)
from .phases import hottest_phases, merge_phase_breakdowns, phase_breakdown
from .sampler import StackSampler

__all__ = [
    "StackSampler",
    "collapsed_stacks",
    "speedscope_document",
    "perfetto_profile",
    "flamegraph_html",
    "merge_profiles",
    "phase_breakdown",
    "merge_phase_breakdowns",
    "hottest_phases",
]
