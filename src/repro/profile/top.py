"""``repro top`` — a live terminal dashboard for a running cluster.

One screenful, refreshed in place, answering the operator's first five
questions without leaving the terminal:

* **shard table** — per shard: up/down, restarts, solve throughput
  (qps, from the delta of solve-span counts between refreshes), queue
  delay p99, admit rate, and energy-lease utilization;
* **budget line** — global budget, total spend, rebalance count;
* **overload line** — the cluster-wide brownout rung by name;
* **hottest phases** — the top-5 phases by self time from the merged
  continuous profile (``/debug/profile``).

Everything renders from three HTTP endpoints the front-end already
serves (``/health``, ``/metrics``, ``/debug/profile``) — the dashboard
is a pure client and works against any reachable cluster.  In loop mode
the screen repaints with ANSI clear/home and ``q`` quits; ``--once``
renders a single frame with no escape codes (scriptable, and what the
pty test drives).
"""

from __future__ import annotations

import io
import json
import select
import sys
import time
import urllib.request
from typing import Any, Dict, Optional, Tuple

from ..telemetry import parse_prometheus
from ..utils.errors import ReproError

__all__ = ["ClusterTop", "run_top"]

_CLEAR = "\x1b[H\x1b[2J"


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    return f"{value:.2f}s"


def _fmt_pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.0%}"


class ClusterTop:
    """Poll a cluster front-end and render dashboard frames."""

    def __init__(self, base_url: str, *, interval: float = 1.0, timeout: float = 5.0):
        self.base_url = base_url.rstrip("/")
        self.interval = float(interval)
        self.timeout = float(timeout)
        #: previous (monotonic time, per-shard solve count) for qps deltas
        self._last_counts: Optional[Tuple[float, Dict[str, int]]] = None

    # -- data plane ------------------------------------------------------------

    def _get(self, path: str) -> bytes:
        with urllib.request.urlopen(self.base_url + path, timeout=self.timeout) as response:
            return response.read()

    def _solve_counts(self, metrics_text: str) -> Dict[str, int]:
        """Per-shard completed-solve counts from the exposition text."""
        counts: Dict[str, int] = {}
        for entry in parse_prometheus(metrics_text)["metrics"]:
            labels = entry.get("labels", {})
            if (
                entry.get("kind") == "histogram"
                and entry.get("name") == "span_duration_seconds"
                and labels.get("span") == "worker.solve"
                and "shard" in labels
            ):
                counts[labels["shard"]] = counts.get(labels["shard"], 0) + int(entry.get("count", 0))
        return counts

    def sample(self) -> Dict[str, Any]:
        """One poll of the cluster: health, qps deltas, hottest phases."""
        health = json.loads(self._get("/health"))
        counts = self._solve_counts(self._get("/metrics").decode())
        now = time.monotonic()
        qps: Dict[str, Optional[float]] = {shard: None for shard in counts}
        if self._last_counts is not None:
            then, previous = self._last_counts
            elapsed = max(now - then, 1e-9)
            for shard, count in counts.items():
                qps[shard] = max(count - previous.get(shard, 0), 0) / elapsed
        self._last_counts = (now, counts)
        profile = json.loads(self._get("/debug/profile"))
        return {"health": health, "qps": qps, "profile": profile}

    # -- rendering -------------------------------------------------------------

    def render(self, state: Dict[str, Any]) -> str:
        health = state["health"]
        qps = state["qps"]
        overload = health.get("overload", {})
        brownout = overload.get("brownout")
        ledger = health.get("ledger", {})
        out = io.StringIO()
        rung = "off" if brownout is None else f"{brownout['level']} ({brownout['name']})"
        out.write(
            f"repro top — {self.base_url}   status: {health.get('status', '?')}   "
            f"brownout: {rung}   refresh: {self.interval:g}s   [q quits]\n\n"
        )
        out.write(
            f"{'SHARD':<12}{'STATE':<7}{'RESTARTS':<10}{'QPS':<8}"
            f"{'QUEUE P99':<12}{'ADMIT':<8}{'LEASE UTIL':<12}\n"
        )
        shard_overload = overload.get("shards", {})
        lease_rows = ledger.get("shards", {})
        for shard, shard_state in sorted(health.get("shards", {}).items()):
            signal = shard_overload.get(shard, {}).get("queue_delay", {})
            admit = shard_overload.get(shard, {}).get("admit_rate")
            lease = lease_rows.get(shard, {})
            util = None
            if lease.get("lease"):
                util = (lease.get("spent", 0.0) + lease.get("reserved", 0.0)) / lease["lease"]
            rate = qps.get(shard)
            out.write(
                f"{shard:<12}{shard_state:<7}"
                f"{health.get('restarts', {}).get(shard, 0):<10}"
                f"{('-' if rate is None else f'{rate:.1f}'):<8}"
                f"{_fmt_seconds(signal.get('sojourn_p99')):<12}"
                f"{_fmt_pct(admit):<8}"
                f"{_fmt_pct(util):<12}\n"
            )
        budget = ledger.get("budget")
        if budget is not None:
            spent = float(ledger.get("total_spent", 0.0))
            out.write(
                f"\nbudget: {budget:.1f} J   spent: {spent:.1f} J "
                f"({spent / budget:.1%})   rebalances: {ledger.get('rebalances', 0)}\n"
            )
        else:
            out.write("\nbudget: unbounded\n")
        hottest = state["profile"].get("merged", {}).get("hottest", [])
        out.write("\nHOTTEST PHASES (self seconds, cluster-wide)\n")
        if not hottest:
            out.write("  (no closed spans yet)\n")
        for row in hottest[:5]:
            out.write(
                f"  {row['phase']:<28}{row.get('self_seconds', 0.0):>10.3f}s"
                f"  ({int(row.get('count', 0))} span(s))\n"
            )
        merged_profile = state["profile"].get("merged", {}).get("profile", {})
        out.write(
            f"\nprofiler: {merged_profile.get('total_samples', 0)} samples at "
            f"{merged_profile.get('hz', 0):g} Hz across "
            f"{len(state['profile'].get('shards', {}))} shard(s)\n"
        )
        return out.getvalue()

    # -- the loop --------------------------------------------------------------

    def run(self, *, once: bool = False, max_frames: Optional[int] = None, stream: Any = None) -> int:
        """Render frames until ``q``/EOF/interrupt; returns an exit code."""
        out = stream if stream is not None else sys.stdout
        frames = 0
        try:
            while True:
                frame = self.render(self.sample())
                if once:
                    out.write(frame)
                    out.flush()
                    return 0
                out.write(_CLEAR + frame)
                out.flush()
                frames += 1
                if max_frames is not None and frames >= max_frames:
                    return 0
                if self._wait_for_quit(self.interval):
                    return 0
        except KeyboardInterrupt:
            return 0
        except (OSError, ValueError, ReproError) as exc:
            out.write(f"repro top: {exc}\n")
            return 1

    @staticmethod
    def _wait_for_quit(interval: float) -> bool:
        """Sleep one refresh; ``True`` means the user pressed ``q``."""
        if not sys.stdin.isatty():
            time.sleep(interval)
            return False
        ready, _, _ = select.select([sys.stdin], [], [], interval)
        if not ready:
            return False
        pressed = sys.stdin.read(1)
        return pressed in ("q", "Q", "")


def run_top(
    base_url: str,
    *,
    interval: float = 1.0,
    once: bool = False,
    max_frames: Optional[int] = None,
    stream: Any = None,
) -> int:
    """CLI entry: run the dashboard, in cbreak mode when on a tty."""
    top = ClusterTop(base_url, interval=interval)
    if once or not sys.stdin.isatty():
        return top.run(once=once, max_frames=max_frames, stream=stream)
    try:
        import termios
        import tty
    except ImportError:  # pragma: no cover — non-POSIX terminal
        return top.run(max_frames=max_frames, stream=stream)
    fd = sys.stdin.fileno()
    saved = termios.tcgetattr(fd)
    try:
        tty.setcbreak(fd)  # unbuffered 'q', no Enter needed
        return top.run(max_frames=max_frames, stream=stream)
    finally:
        termios.tcsetattr(fd, termios.TCSADRAIN, saved)
