"""Exact per-phase wall-time attribution from telemetry spans.

The sampler estimates; spans *measure*.  :func:`phase_breakdown` folds a
registry snapshot's closed spans into per-phase totals:

* ``total_seconds`` — summed durations of every span with that name
  (a parent's total includes its children);
* ``self_seconds`` — durations minus each span's direct children, so
  self times *partition* the root spans' wall time exactly:
  ``sum(self) == sum(root totals)`` up to float error;
* ``count`` — spans closed under that name.

``repro bench profile`` turns these self-time shares into the per-phase
CI budgets in ``benchmarks/BENCH_profile.json``, and the cluster's
``/debug/profile`` serves the same shape per shard (merged by
:func:`merge_phase_breakdowns` at the front-end).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["phase_breakdown", "merge_phase_breakdowns", "hottest_phases"]

Snapshot = Dict[str, list]


def phase_breakdown(snapshot: Snapshot) -> Dict[str, Dict[str, float]]:
    """Per-span-name totals, self times and counts from closed spans."""
    spans = [s for s in snapshot.get("spans", []) if s.get("duration") is not None]
    child_seconds: Dict[Any, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + float(span["duration"])
    out: Dict[str, Dict[str, float]] = {}
    for span in spans:
        duration = float(span["duration"])
        entry = out.setdefault(
            span["name"], {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += duration
        entry["self_seconds"] += max(duration - child_seconds.get(span["span_id"], 0.0), 0.0)
    return out


def merge_phase_breakdowns(
    breakdowns: Iterable[Dict[str, Dict[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Sum per-phase breakdowns across shards/processes."""
    merged: Dict[str, Dict[str, float]] = {}
    for breakdown in breakdowns:
        for name, entry in breakdown.items():
            bucket = merged.setdefault(
                name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
            )
            bucket["count"] += entry.get("count", 0)
            bucket["total_seconds"] += float(entry.get("total_seconds", 0.0))
            bucket["self_seconds"] += float(entry.get("self_seconds", 0.0))
    return merged


def hottest_phases(
    breakdown: Dict[str, Dict[str, float]], n: int = 5
) -> List[Tuple[str, Dict[str, float]]]:
    """The ``n`` phases with the most self time, hottest first."""
    ordered = sorted(
        breakdown.items(), key=lambda item: (-item[1].get("self_seconds", 0.0), item[0])
    )
    return ordered[: max(n, 0)]
