"""A thread-based sampling wall-clock profiler.

:class:`StackSampler` wakes ``hz`` times a second, snapshots every
thread's Python stack via :func:`sys._current_frames`, and aggregates
the stacks into ``(stack, phase, trace_id)`` counters.  Phase and trace
attribution come from the active registry's per-thread open-span map
(:meth:`~repro.telemetry.registry.MetricsRegistry.active_spans_by_thread`):
span open/close events are rare next to the sampling rate, so the
bookkeeping lives on the span path and the sampler's hot loop is one
dict read per thread per tick.

Design constraints:

* **low overhead** — at the default 19 Hz the sampler costs well under
  2% of a solver-bound workload (measured by ``repro bench profile``
  and recorded in ``benchmarks/BENCH_profile.json``); the tick does no
  allocation beyond the stack tuples and takes no registry lock while
  walking frames;
* **always-on safe** — aggregated storage is bounded
  (``max_stacks`` distinct keys; overflow increments ``dropped``
  rather than growing), the sampler thread is a daemon, and it never
  samples itself;
* **wall-clock honest** — blocked threads (a worker waiting on its
  request queue) are sampled like running ones, so the profile shows
  where *time* went, not just where CPU went.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry import MetricsRegistry
from ..utils.validation import check_positive

__all__ = ["StackSampler", "DEFAULT_HZ"]

#: Default sampling rate: a prime-ish rate well below timer-interrupt
#: harmonics, cheap enough to leave on permanently.
DEFAULT_HZ = 19.0

#: Frames deeper than this are truncated (runaway recursion guard).
MAX_DEPTH = 128

StackKey = Tuple[Tuple[str, ...], Optional[str], Optional[str]]


def _frame_label(filename: str, function: str) -> str:
    """``package/relative/path.py:function`` with site noise stripped."""
    path = filename.replace("\\", "/")
    marker = "/repro/"
    at = path.rfind(marker)
    if at >= 0:
        path = "repro/" + path[at + len(marker) :]
    else:
        path = path.rsplit("/", 1)[-1]
    return f"{path}:{function}"


class StackSampler:
    """Sample every thread's stack at ``hz``, attributed to phase spans.

    Use as a context manager or via :meth:`start`/:meth:`stop`;
    :meth:`profile` returns the aggregated plain-data profile document
    at any time (also while running).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        hz: float = DEFAULT_HZ,
        max_stacks: int = 50_000,
    ):
        check_positive(hz, "hz")
        check_positive(max_stacks, "max_stacks")
        self.registry = registry
        self.hz = float(hz)
        self.max_stacks = int(max_stacks)
        self._counts: Dict[StackKey, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._total = 0
        self._dropped = 0
        self._started_at: Optional[float] = None
        self._active_seconds = 0.0

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        """Start the sampling thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.monotonic()
        # The sampler observes *other* threads' frames; it records no
        # trace-scoped telemetry of its own, so no context is propagated.
        self._thread = threading.Thread(  # repro: noqa[RL012]
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        if self._started_at is not None:
            self._active_seconds += time.monotonic() - self._started_at
            self._started_at = None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- the sampling loop -----------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        next_tick = time.monotonic() + interval
        while True:
            delay = next_tick - time.monotonic()
            if delay > 0:
                if self._stop.wait(delay):
                    return
            else:
                # Fell behind (a long GC pause, a suspended VM): resync
                # instead of bursting to catch up.
                next_tick = time.monotonic()
            if self._stop.is_set():
                return
            next_tick += interval
            self._sample_once(own)

    def _sample_once(self, own_ident: int) -> None:
        active = (
            self.registry.active_spans_by_thread() if self.registry is not None else {}
        )
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < MAX_DEPTH:
                code = frame.f_code
                stack.append(_frame_label(code.co_filename, code.co_name))
                frame = frame.f_back
                depth += 1
            stack.reverse()  # root first, collapsed-stack order
            span = active.get(ident)
            key: StackKey = (
                tuple(stack),
                span.name if span is not None else None,
                span.trace_id if span is not None else None,
            )
            with self._lock:
                self._total += 1
                if key in self._counts:
                    self._counts[key] += 1
                elif len(self._counts) < self.max_stacks:
                    self._counts[key] = 1
                else:
                    self._dropped += 1

    # -- results ---------------------------------------------------------------

    def profile(self) -> Dict[str, Any]:
        """The aggregated profile as a plain-data document.

        ``samples`` holds one entry per distinct ``(stack, phase,
        trace_id)`` key, heaviest first; ``phases`` maps each observed
        phase to its sample count and estimated seconds
        (``samples / hz``).
        """
        with self._lock:
            counts = dict(self._counts)
            total = self._total
            dropped = self._dropped
        duration = self._active_seconds
        if self._started_at is not None:
            duration += time.monotonic() - self._started_at
        samples = [
            {
                "stack": list(stack),
                "phase": phase,
                "trace_id": trace_id,
                "count": count,
            }
            for (stack, phase, trace_id), count in counts.items()
        ]
        samples.sort(key=lambda s: (-s["count"], s["stack"], s["phase"] or ""))
        phases: Dict[str, Dict[str, float]] = {}
        for sample in samples:
            phase = sample["phase"]
            if phase is None:
                continue
            bucket = phases.setdefault(phase, {"samples": 0, "seconds": 0.0})
            bucket["samples"] += sample["count"]
        for bucket in phases.values():
            bucket["seconds"] = bucket["samples"] / self.hz
        return {
            "hz": self.hz,
            "duration_seconds": duration,
            "total_samples": total,
            "dropped_samples": dropped,
            "samples": samples,
            "phases": phases,
        }
