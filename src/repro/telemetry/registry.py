"""The metric store: labeled counters, gauges, histograms and spans.

A :class:`MetricsRegistry` is the library's *collector*: solvers, the
planner and the simulators report into whichever registry is active (see
:mod:`repro.telemetry.context`).  The design follows the Prometheus data
model — a metric is identified by a name plus a set of label key/value
pairs, and every distinct label-value combination is its own time
series — restricted to what an offline scheduling library needs:

* **counters** only go up (``inc``/``add``);
* **gauges** hold the last value ``set`` (with ``add`` for deltas);
* **histograms** accumulate observations into fixed buckets plus a
  running count/sum/min/max;
* **spans** trace nested phases (segment build → water-filling →
  refine; model build → solve; window plan → dispatch) with wall-clock
  durations.  Every finished span also observes its duration into the
  ``span_duration_seconds`` histogram labeled by span name, so phase
  latency distributions come for free.

The registry is thread-safe: scalar updates take a lock, and the span
stack lives in a :class:`~contextvars.ContextVar` so concurrent server
requests trace independently *and* parent links survive context-aware
thread hops (``contextvars.copy_context().run`` in the resilience
layer's deadline workers).

Tracing (see :mod:`repro.observe.tracing` for the high-level API) hangs
off the same spans: a *trace id* set with :func:`trace_scope` is stamped
onto every span opened while the scope is active, which is what lets one
served request be followed across the server, solver and journal.
"""

from __future__ import annotations

import contextlib
import threading
import time
import uuid
import warnings
from bisect import bisect_left
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "TelemetryError",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanRecord",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "new_trace_id",
    "current_trace_id",
    "trace_scope",
    "ensure_trace",
]

#: Latency-oriented default histogram buckets (seconds); an implicit
#: +Inf bucket always follows the last bound.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: Hard cap on distinct label-value combinations per metric name — a
#: guard against accidentally labeling by an unbounded value (task id,
#: timestamp) and blowing up memory.
MAX_SERIES_PER_METRIC = 1000

LabelItems = Tuple[Tuple[str, str], ...]


#: Self-metric bumped when a series is dropped at the cardinality cap.
#: Exempt from the cap itself (its cardinality is bounded by the number
#: of distinct metric *names*, which is finite by construction).
DROPPED_SERIES_METRIC = "telemetry_series_dropped_total"


class TelemetryError(ValueError):
    """Raised on inconsistent metric declarations (kind/labels clashes)."""


# -- trace identity ----------------------------------------------------------------
#
# The trace id is a context-local string; spans opened while one is set
# carry it.  These primitives live here (not in repro.observe) so the
# registry can stamp spans without an upward dependency.

_TRACE_ID: ContextVar[Optional[str]] = ContextVar("repro_trace_id", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace id active in this context, or ``None``."""
    return _TRACE_ID.get()


@contextlib.contextmanager
def trace_scope(trace_id: str) -> Iterator[str]:
    """Activate ``trace_id`` for the enclosed block (nested scopes shadow)."""
    tid = str(trace_id)
    token = _TRACE_ID.set(tid)
    try:
        yield tid
    finally:
        _TRACE_ID.reset(token)


@contextlib.contextmanager
def ensure_trace() -> Iterator[str]:
    """Reuse the active trace id, or open a fresh scope around the block."""
    tid = _TRACE_ID.get()
    if tid is not None:
        yield tid
        return
    with trace_scope(new_trace_id()) as tid:
        yield tid


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self) -> None:
        """Increment by one."""
        self.value += 1.0

    def add(self, amount: float) -> None:
        """Increment by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease (add({amount}))")
        self.value += float(amount)


class Gauge:
    """Last-value metric; can move in both directions."""

    kind = "gauge"

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the current value by ``amount`` (may be negative)."""
        self.value += float(amount)


class Histogram:
    """Bucketed distribution of observations.

    Each series also keeps one OpenMetrics-style *exemplar*: the
    largest observation recorded while a trace was active, with its
    trace id.  A slow bucket in an exposition scrape therefore links
    straight back to the ``/trace/<id>`` timeline of the request that
    produced it.
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "labels",
        "buckets",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "exemplar_value",
        "exemplar_trace_id",
    )

    def __init__(self, name: str, labels: LabelItems, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(f"histogram {name!r} buckets must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.exemplar_value: Optional[float] = None
        self.exemplar_trace_id: Optional[str] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.exemplar_value is None or value >= self.exemplar_value:
            trace_id = _TRACE_ID.get()
            if trace_id is not None:
                self.exemplar_value = value
                self.exemplar_trace_id = trace_id

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (ends with ``count``)."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


@dataclass
class SpanRecord:
    """One traced phase: a named interval with nesting links.

    ``start`` and ``duration`` come from ``time.perf_counter()`` — a
    monotonic clock that cannot run backwards under NTP adjustment —
    while ``wall_start`` is the ``time.time()`` instant the span opened,
    kept for aligning traces against external timestamps (journal
    records, log lines).  ``trace_id`` is the request-scoped trace the
    span belongs to (``None`` outside any :func:`trace_scope`).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    start: float  #: monotonic seconds since the registry was created
    labels: LabelItems = ()
    duration: Optional[float] = None  #: filled when the span closes
    wall_start: float = 0.0  #: wall-clock (epoch) seconds at open
    trace_id: Optional[str] = None  #: active trace id at open

    @property
    def closed(self) -> bool:
        return self.duration is not None


class _SpanContext:
    """Context manager produced by :meth:`MetricsRegistry.span`."""

    __slots__ = ("_registry", "record", "_t0")

    def __init__(self, registry: "MetricsRegistry", record: SpanRecord):
        self._registry = registry
        self.record = record
        self._t0 = 0.0

    def __enter__(self) -> SpanRecord:
        self._t0 = time.perf_counter()
        return self.record

    def __exit__(self, *exc) -> None:
        self._registry._close_span(self.record, time.perf_counter() - self._t0)


class MetricsRegistry:
    """Holds every metric series and span of one collection run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}
        self._label_keys: Dict[str, Tuple[str, ...]] = {}
        self._series_count: Dict[str, int] = {}
        self._overflow_warned: set = set()
        self.spans: List[SpanRecord] = []
        # Immutable tuple per context: new threads/contexts start empty,
        # copy_context() hand-offs inherit the parent chain read-only.
        self._stack: ContextVar[Tuple[SpanRecord, ...]] = ContextVar(
            "repro_span_stack", default=()
        )
        # Per-OS-thread open-span stacks, for *cross-thread* attribution:
        # a sampling profiler reading ``sys._current_frames()`` cannot see
        # another thread's ContextVars, so the registry mirrors span
        # open/close events into this map (span churn is rare next to
        # sample rate, so the extra lock work is off the sampling path).
        self._thread_spans: Dict[int, List[SpanRecord]] = {}
        self._next_span_id = 0
        self._epoch = time.perf_counter()

    # -- series management -----------------------------------------------------

    def _series(self, cls, name: str, labels: Dict[str, object], **kwargs):
        items = _label_items(labels)
        key = (name, items)
        warn = False
        with self._lock:
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                raise TelemetryError(f"metric {name!r} already registered as a {kind}, not a {cls.kind}")
            metric = self._metrics.get(key)
            if metric is not None:
                return metric
            keys = tuple(k for k, _ in items)
            known_keys = self._label_keys.get(name)
            if known_keys is not None and known_keys != keys:
                raise TelemetryError(
                    f"metric {name!r} used with label keys {keys}, previously {known_keys} — "
                    "label *values* may vary, label keys must not"
                )
            if (
                self._series_count.get(name, 0) >= MAX_SERIES_PER_METRIC
                and name != DROPPED_SERIES_METRIC
            ):
                # Over the cap: do NOT register the new combination.  The
                # caller still gets a working (detached) series so hot
                # paths never crash on cardinality, and the overflow is
                # made visible below instead of silently capping.
                if name not in self._overflow_warned:
                    self._overflow_warned.add(name)
                    warn = True
            else:
                metric = cls(name, items, **kwargs)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
                self._label_keys[name] = keys
                self._series_count[name] = self._series_count.get(name, 0) + 1
                return metric
        # Overflow path, outside the lock (the self-metric re-enters _series).
        if warn:
            warnings.warn(
                f"metric {name!r} exceeded {MAX_SERIES_PER_METRIC} label combinations — "
                "an unbounded value (id, timestamp) is probably being used as a label; "
                "further combinations are dropped (see telemetry_series_dropped_total)",
                RuntimeWarning,
                stacklevel=4,
            )
        self.counter(DROPPED_SERIES_METRIC, metric=name).inc()
        return cls(name, items, **kwargs)

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        return self._series(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        return self._series(Gauge, name, labels)

    def histogram(
        self, name: str, *, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """Get or create the histogram series ``name{labels}``.

        ``buckets`` only takes effect when the series is first created;
        later calls return the existing series unchanged.
        """
        return self._series(Histogram, name, labels, buckets=buckets)

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, **labels) -> _SpanContext:
        """Open a traced phase; nest freely (per thread / context)."""
        stack = self._stack.get()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            record = SpanRecord(
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                depth=len(stack),
                start=time.perf_counter() - self._epoch,
                labels=_label_items(labels),
                wall_start=time.time(),
                trace_id=current_trace_id(),
            )
            self.spans.append(record)
            self._thread_spans.setdefault(threading.get_ident(), []).append(record)
        self._stack.set(stack + (record,))
        return _SpanContext(self, record)

    def _close_span(self, record: SpanRecord, elapsed: float) -> None:
        record.duration = elapsed
        stack = self._stack.get()
        # The span being closed is normally the innermost; guard against
        # out-of-order exits from generator-based context managers.
        if record in stack:
            self._stack.set(tuple(s for s in stack if s is not record))
        ident = threading.get_ident()
        with self._lock:
            open_spans = self._thread_spans.get(ident)
            if open_spans is not None and record in open_spans:
                open_spans.remove(record)
                if not open_spans:
                    del self._thread_spans[ident]
            else:
                # Context-aware thread hops can close a span on a different
                # thread than the one that opened it.
                for key, other in list(self._thread_spans.items()):
                    if record in other:
                        other.remove(record)
                        if not other:
                            del self._thread_spans[key]
                        break
        self.histogram("span_duration_seconds", span=record.name).observe(elapsed)

    def active_spans_by_thread(self) -> Dict[int, SpanRecord]:
        """Innermost open span per OS thread (profiler attribution)."""
        with self._lock:
            return {ident: spans[-1] for ident, spans in self._thread_spans.items() if spans}

    def timer(self, name: str, *, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels) -> "_TimerContext":
        """Context manager observing its elapsed seconds into histogram ``name``."""
        return _TimerContext(self.histogram(name, buckets=buckets, **labels))

    # -- introspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[object]:
        """Iterate metric series in insertion order."""
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels):
        """Return the series ``name{labels}`` or ``None``."""
        return self._metrics.get((name, _label_items(labels)))

    def snapshot(self) -> dict:
        """Plain-data view of every series and span (exporters build on this)."""
        metrics: List[dict] = []
        for metric in self:
            entry: dict = {
                "kind": metric.kind,
                "name": metric.name,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["bucket_counts"] = list(metric.bucket_counts)
                entry["count"] = metric.count
                entry["sum"] = metric.sum
                if metric.count:
                    entry["min"] = metric.min
                    entry["max"] = metric.max
                if metric.exemplar_trace_id is not None:
                    entry["exemplar"] = {
                        "value": metric.exemplar_value,
                        "trace_id": metric.exemplar_trace_id,
                    }
            else:
                entry["value"] = metric.value
            metrics.append(entry)
        with self._lock:
            spans = [
                {
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "name": s.name,
                    "depth": s.depth,
                    "start": s.start,
                    "duration": s.duration,
                    "labels": dict(s.labels),
                    "wall_start": s.wall_start,
                    "trace_id": s.trace_id,
                }
                for s in self.spans
            ]
        return {"metrics": metrics, "spans": spans}


class _TimerContext:
    """Minimal timing context manager bound to one histogram series."""

    __slots__ = ("_histogram", "_t0", "elapsed")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._t0 = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._histogram.observe(self.elapsed)
