"""Observability for every solver and serving path.

The measurement substrate the perf/scaling work reports against:

* :class:`MetricsRegistry` — labeled counters, gauges, histograms, plus
  a span/timer API tracing nested solver phases;
* :func:`collector` / :func:`get_collector` — context-local activation
  with a shared no-op default, so uninstrumented runs pay (almost)
  nothing;
* exporters — JSON-lines, CSV and Prometheus text, each with a parser
  (:func:`load_file`) for round-tripping and offline inspection.

Quick start::

    from repro.telemetry import collector, export_file

    with collector() as reg:
        ApproxScheduler().solve(instance)
    export_file(reg, "metrics.jsonl")

or from the CLI: ``repro solve --metrics-out metrics.jsonl`` then
``repro telemetry metrics.jsonl``.
"""

from .context import NOOP, NullCollector, active_collector, collector, get_collector
from .exporters import (
    detect_format,
    export_file,
    load_file,
    parse_prometheus,
    prometheus_text,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
    write_prometheus,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecord,
    TelemetryError,
    current_trace_id,
    ensure_trace,
    new_trace_id,
    trace_scope,
)

__all__ = [
    "MetricsRegistry",
    "new_trace_id",
    "current_trace_id",
    "trace_scope",
    "ensure_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanRecord",
    "TelemetryError",
    "DEFAULT_BUCKETS",
    "collector",
    "get_collector",
    "active_collector",
    "NullCollector",
    "NOOP",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
    "write_prometheus",
    "prometheus_text",
    "parse_prometheus",
    "export_file",
    "load_file",
    "detect_format",
]
