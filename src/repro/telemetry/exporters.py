"""Serialize a metrics registry — JSON-lines, CSV, Prometheus text.

All three exporters work from the plain-data
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` shape and
each has a matching parser, so a written file reads back to the same
snapshot (Prometheus, a metrics-only wire format, round-trips every
counter/gauge/histogram but drops spans and histogram min/max).

Every writer renders the full document in memory and publishes it with
:func:`repro.utils.fileio.atomic_write` (temp file + fsync + rename), so
a crash mid-export leaves either the previous file or the new one —
never a truncated half-written export.

Format is normally inferred from the file suffix via
:func:`export_file` / :func:`load_file`:

========================  ==========
suffix                    format
========================  ==========
``.jsonl`` / ``.json``    JSON-lines
``.csv``                  CSV
``.prom`` / ``.txt``      Prometheus
========================  ==========
"""

from __future__ import annotations

import csv
import io
import json
import re
from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..utils.fileio import atomic_write
from .registry import MetricsRegistry, TelemetryError

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
    "write_prometheus",
    "parse_prometheus",
    "export_file",
    "load_file",
    "detect_format",
]

Snapshot = Dict[str, list]

_CSV_COLUMNS = [
    "kind",
    "name",
    "labels",
    "value",
    "count",
    "sum",
    "min",
    "max",
    "buckets",
    "bucket_counts",
    "exemplar",
    "span_id",
    "parent_id",
    "depth",
    "start",
    "duration",
    "wall_start",
    "trace_id",
]

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$")
# OpenMetrics exemplar suffix (` # {trace_id="..."} 0.42`).  Stripped
# *before* the line regex runs.  The labelset must be well-formed
# `key="escaped"` pairs — label *values* in the main labelset may contain
# `#`/`{`/`}` unescaped but never a bare `"`, so this cannot fire inside
# one.
_PROM_EXEMPLAR_RE = re.compile(
    r"\s+#\s+\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*)\}\s+(?P<value>\S+)$"
)
_PROM_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def _snap(source: Union[MetricsRegistry, Snapshot]) -> Snapshot:
    return source.snapshot() if isinstance(source, MetricsRegistry) else source


# -- JSON-lines ------------------------------------------------------------------


def write_jsonl(source: Union[MetricsRegistry, Snapshot], path: Union[str, Path]) -> Path:
    """One JSON object per metric series and per span."""
    snap = _snap(source)
    out = io.StringIO()
    for entry in snap["metrics"]:
        out.write(json.dumps(entry, sort_keys=True) + "\n")
    for span in snap["spans"]:
        out.write(json.dumps({"kind": "span", **span}, sort_keys=True) + "\n")
    return atomic_write(path, out.getvalue())


def read_jsonl(path: Union[str, Path]) -> Snapshot:
    """Parse a JSON-lines export back into a snapshot."""
    metrics: List[dict] = []
    spans: List[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if entry.get("kind") == "span":
            entry.pop("kind")
            spans.append(entry)
        else:
            metrics.append(entry)
    return {"metrics": metrics, "spans": spans}


# -- CSV -------------------------------------------------------------------------


def write_csv(source: Union[MetricsRegistry, Snapshot], path: Union[str, Path]) -> Path:
    """Wide CSV: one row per series/span, JSON-encoded structured cells."""
    snap = _snap(source)
    with io.StringIO(newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_COLUMNS)
        writer.writeheader()
        for entry in snap["metrics"]:
            row = {k: entry[k] for k in ("kind", "name") }
            row["labels"] = json.dumps(entry["labels"], sort_keys=True)
            for key in ("value", "count", "sum", "min", "max"):
                if key in entry:
                    row[key] = repr(entry[key])
            for key in ("buckets", "bucket_counts", "exemplar"):
                if key in entry:
                    row[key] = json.dumps(entry[key], sort_keys=True)
            writer.writerow(row)
        for span in snap["spans"]:
            writer.writerow(
                {
                    "kind": "span",
                    "name": span["name"],
                    "labels": json.dumps(span["labels"], sort_keys=True),
                    "span_id": span["span_id"],
                    "parent_id": "" if span["parent_id"] is None else span["parent_id"],
                    "depth": span["depth"],
                    "start": repr(span["start"]),
                    "duration": "" if span["duration"] is None else repr(span["duration"]),
                    "wall_start": repr(span.get("wall_start", 0.0)),
                    "trace_id": span.get("trace_id") or "",
                }
            )
        return atomic_write(path, fh.getvalue())


def _num(text: str) -> float:
    return float(text)


def read_csv(path: Union[str, Path]) -> Snapshot:
    """Parse a CSV export back into a snapshot."""
    metrics: List[dict] = []
    spans: List[dict] = []
    with Path(path).open("r", encoding="utf-8", newline="") as fh:
        for row in csv.DictReader(fh):
            labels = json.loads(row["labels"]) if row.get("labels") else {}
            if row["kind"] == "span":
                spans.append(
                    {
                        "span_id": int(row["span_id"]),
                        "parent_id": int(row["parent_id"]) if row["parent_id"] else None,
                        "name": row["name"],
                        "depth": int(row["depth"]),
                        "start": _num(row["start"]),
                        "duration": _num(row["duration"]) if row["duration"] else None,
                        "labels": labels,
                        # Columns added later; absent in older exports.
                        "wall_start": _num(row["wall_start"]) if row.get("wall_start") else 0.0,
                        "trace_id": row.get("trace_id") or None,
                    }
                )
                continue
            entry: dict = {"kind": row["kind"], "name": row["name"], "labels": labels}
            if row["kind"] == "histogram":
                entry["buckets"] = json.loads(row["buckets"])
                entry["bucket_counts"] = json.loads(row["bucket_counts"])
                entry["count"] = int(row["count"])
                entry["sum"] = _num(row["sum"])
                if row.get("min"):
                    entry["min"] = _num(row["min"])
                if row.get("max"):
                    entry["max"] = _num(row["max"])
                if row.get("exemplar"):
                    entry["exemplar"] = json.loads(row["exemplar"])
            else:
                entry["value"] = _num(row["value"])
            metrics.append(entry)
    return {"metrics": metrics, "spans": spans}


# -- Prometheus text format ------------------------------------------------------


def _prom_name(name: str) -> str:
    name = _PROM_NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        value = str(merged[key]).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{_prom_name(key)}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prom_float(value: float) -> str:
    return repr(float(value))


def write_prometheus(source: Union[MetricsRegistry, Snapshot], path: Union[str, Path]) -> Path:
    """Prometheus exposition text (metrics only; spans are not exported)."""
    return atomic_write(path, prometheus_text(source))


def _exemplar_suffix(entry: dict, bucket_index: int, n_bounds: int) -> str:
    """OpenMetrics exemplar suffix for the bucket line it falls in."""
    exemplar = entry.get("exemplar")
    if not exemplar:
        return ""
    value = float(exemplar["value"])
    target = min(bisect_left(entry["buckets"], value), n_bounds)
    if target != bucket_index:
        return ""
    labels = _prom_labels({"trace_id": exemplar["trace_id"]})
    return f" # {labels} {_prom_float(value)}"


def prometheus_text(source: Union[MetricsRegistry, Snapshot]) -> str:
    """Render the snapshot in Prometheus text exposition format.

    Series are emitted sorted by metric name then label items, so output
    is deterministic regardless of registration order (stable diffs,
    golden tests).  Histogram exemplars ride the bucket line containing
    the exemplar observation, OpenMetrics-style.
    """
    snap = _snap(source)
    out = io.StringIO()
    typed: set = set()
    ordered = sorted(
        snap["metrics"], key=lambda e: (e["name"], sorted(e["labels"].items()))
    )
    for entry in ordered:
        name = _prom_name(entry["name"])
        labels = entry["labels"]
        if name not in typed:
            out.write(f"# TYPE {name} {entry['kind']}\n")
            typed.add(name)
        if entry["kind"] == "histogram":
            n_bounds = len(entry["buckets"])
            cumulative = 0
            for k, (bound, count) in enumerate(zip(entry["buckets"], entry["bucket_counts"])):
                cumulative += count
                out.write(
                    f"{name}_bucket{_prom_labels(labels, {'le': _prom_float(bound)})} "
                    f"{cumulative}{_exemplar_suffix(entry, k, n_bounds)}\n"
                )
            cumulative += entry["bucket_counts"][-1]
            out.write(
                f'{name}_bucket{_prom_labels(labels, {"le": "+Inf"})} '
                f"{cumulative}{_exemplar_suffix(entry, n_bounds, n_bounds)}\n"
            )
            out.write(f"{name}_sum{_prom_labels(labels)} {_prom_float(entry['sum'])}\n")
            out.write(f"{name}_count{_prom_labels(labels)} {entry['count']}\n")
        else:
            out.write(f"{name}{_prom_labels(labels)} {_prom_float(entry['value'])}\n")
    return out.getvalue()


def _parse_prom_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    for match in _PROM_LABEL_RE.finditer(text):
        value = match.group("value")
        value = value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        labels[match.group("key")] = value
    return labels


def parse_prometheus(path_or_text: Union[str, Path]) -> Snapshot:
    """Parse exposition text (a path or the text itself) into a snapshot.

    Histograms are re-assembled from their ``_bucket``/``_sum``/``_count``
    series; spans and histogram min/max are not part of the wire format.
    """
    if isinstance(path_or_text, Path) or "\n" not in str(path_or_text) and Path(str(path_or_text)).exists():
        text = Path(path_or_text).read_text(encoding="utf-8")
    else:
        text = str(path_or_text)

    kinds: Dict[str, str] = {}
    scalars: List[dict] = []
    # histogram assembly: (name, labels-json) -> partial entry
    partial: Dict[tuple, dict] = {}

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        exemplar = None
        exemplar_match = _PROM_EXEMPLAR_RE.search(line)
        if exemplar_match is not None:
            exemplar = {
                "value": float(exemplar_match.group("value")),
                "trace_id": _parse_prom_labels(exemplar_match.group("labels")).get("trace_id"),
            }
            line = line[: exemplar_match.start()]
        match = _PROM_LINE_RE.match(line)
        if not match:
            raise TelemetryError(f"unparseable Prometheus line: {line!r}")
        name = match.group("name")
        labels = _parse_prom_labels(match.group("labels"))
        value = float(match.group("value").replace("+Inf", "inf"))
        base, suffix = name, None
        for cand in ("_bucket", "_sum", "_count"):
            if name.endswith(cand) and kinds.get(name[: -len(cand)]) == "histogram":
                base, suffix = name[: -len(cand)], cand
                break
        if suffix is None:
            scalars.append(
                {"kind": kinds.get(name, "gauge"), "name": name, "labels": labels, "value": value}
            )
            continue
        le = labels.pop("le", None)
        key = (base, json.dumps(labels, sort_keys=True))
        entry = partial.setdefault(
            key,
            {"kind": "histogram", "name": base, "labels": labels, "buckets": [], "cumulative": []},
        )
        if suffix == "_bucket":
            if le != "+Inf":
                entry["buckets"].append(float(le))
            entry["cumulative"].append(int(value))
            if exemplar is not None:
                entry["exemplar"] = exemplar
        elif suffix == "_sum":
            entry["sum"] = value
        else:
            entry["count"] = int(value)

    metrics: List[dict] = list(scalars)
    for entry in partial.values():
        cumulative = entry.pop("cumulative")
        counts = [cumulative[0]] if cumulative else []
        counts.extend(b - a for a, b in zip(cumulative, cumulative[1:]))
        entry["bucket_counts"] = counts
        entry.setdefault("sum", 0.0)
        entry.setdefault("count", cumulative[-1] if cumulative else 0)
        metrics.append(entry)
    return {"metrics": metrics, "spans": []}


# -- auto-dispatch ---------------------------------------------------------------

_FORMATS = {
    ".jsonl": "jsonl",
    ".json": "jsonl",
    ".csv": "csv",
    ".prom": "prometheus",
    ".txt": "prometheus",
    ".prometheus": "prometheus",
}


def detect_format(path: Union[str, Path]) -> str:
    """Map a file suffix to an exporter name (default: jsonl)."""
    return _FORMATS.get(Path(path).suffix.lower(), "jsonl")


def export_file(
    source: Union[MetricsRegistry, Snapshot], path: Union[str, Path], format: Optional[str] = None
) -> Path:
    """Write ``source`` to ``path`` in ``format`` (inferred when omitted)."""
    fmt = format or detect_format(path)
    if fmt == "jsonl":
        return write_jsonl(source, path)
    if fmt == "csv":
        return write_csv(source, path)
    if fmt == "prometheus":
        return write_prometheus(source, path)
    raise TelemetryError(f"unknown telemetry export format {fmt!r}")


def load_file(path: Union[str, Path], format: Optional[str] = None) -> Snapshot:
    """Read ``path`` back into a snapshot (format inferred when omitted)."""
    fmt = format or detect_format(path)
    if fmt == "jsonl":
        return read_jsonl(path)
    if fmt == "csv":
        return read_csv(path)
    if fmt == "prometheus":
        return parse_prometheus(Path(path))
    raise TelemetryError(f"unknown telemetry export format {fmt!r}")
