"""Context-local collector activation and the zero-cost default.

Instrumented code never checks "is telemetry on?" — it asks
:func:`get_collector` and reports unconditionally.  When no collector is
active the call lands on the module-level :data:`NOOP` sink, whose
counters, gauges, histograms, timers and spans are shared do-nothing
singletons, so an uninstrumented run pays one ``ContextVar.get`` plus a
method call per instrumentation point and allocates nothing.

Activation is a context manager::

    from repro.telemetry import collector

    with collector() as reg:
        scheduler.solve(instance)
    reg.snapshot()          # every counter/histogram/span of the solve

``collector`` uses a :class:`contextvars.ContextVar`, so activation is
scoped to the current thread/async task and nests: an inner
``collector()`` shadows the outer registry until it exits.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, Optional, Union

from .registry import MetricsRegistry

__all__ = ["NullCollector", "NOOP", "collector", "get_collector", "active_collector"]


class _NoopInstrument:
    """Stands in for Counter, Gauge, Histogram and timer alike."""

    __slots__ = ()

    def inc(self) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NoopSpan:
    """Reusable, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_INSTRUMENT = _NoopInstrument()
_NOOP_SPAN = _NoopSpan()


class NullCollector:
    """API-compatible sink that records nothing (the inactive default)."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, **kwargs) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def timer(self, name: str, **kwargs) -> _NoopSpan:
        return _NOOP_SPAN

    def span(self, name: str, **labels) -> _NoopSpan:
        return _NOOP_SPAN


#: The process-wide inactive sink; ``get_collector() is NOOP`` tests activation.
NOOP = NullCollector()

_ACTIVE: ContextVar[Optional[MetricsRegistry]] = ContextVar("repro_telemetry_collector", default=None)


def get_collector() -> Union[MetricsRegistry, NullCollector]:
    """The active registry, or the shared no-op sink when none is active."""
    reg = _ACTIVE.get()
    return reg if reg is not None else NOOP


def active_collector() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` — for code that must branch."""
    return _ACTIVE.get()


@contextlib.contextmanager
def collector(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Activate ``registry`` (a fresh one by default) for the enclosed block."""
    reg = registry if registry is not None else MetricsRegistry()
    token = _ACTIVE.set(reg)
    try:
        yield reg
    finally:
        _ACTIVE.reset(token)
