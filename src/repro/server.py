"""A minimal HTTP scheduling service (stdlib only).

Turns the library into a local JSON-over-HTTP planner, the shape an
MLaaS control plane would embed:

* ``GET  /health``            — liveness and version;
* ``GET  /schedulers``        — registered method names;
* ``GET  /metrics``           — Prometheus text exposition of the
  server's telemetry registry (request counters, solve-phase spans);
* ``GET  /slo``               — the configured SLOs evaluated against
  the live registry (see :mod:`repro.observe.slo`);
* ``GET  /trace/<id>``        — one request's spans as Chrome/Perfetto
  ``trace_event`` JSON (load at https://ui.perfetto.dev);
* ``POST /solve?scheduler=X`` — body: an instance document (the
  ``repro.core.serialization`` format); response: the schedule document
  plus headline metrics and the feasibility audit.

Every ``/solve`` request runs under a trace: the ``X-Repro-Trace-Id``
request header (when well-formed) or a fresh id becomes the request's
trace id, is echoed back on the response, stamps every span the solve
opens (admission → solve → schedule), and is attached to the journal
record — so one id correlates the HTTP exchange, the flame graph at
``/trace/<id>`` and the durable ledger entry.

The serving path is guarded by :mod:`repro.resilience`: an
:class:`~repro.resilience.admission.AdmissionController` bounds
concurrent solves and trips a circuit breaker on repeated solver
failures (rejections answer ``503`` with a ``Retry-After`` header), an
optional per-request wall-clock deadline cancels runaway solves, and
``fallback=True`` degrades through cheaper solver tiers instead of
failing the request.

Intended for trusted local use (demos, integration tests, sidecars) —
there is no authentication; bind to localhost.

    python -m repro serve --port 8080 --solver-timeout 5 --fallback
    curl -s localhost:8080/health
    curl -s -X POST localhost:8080/solve?scheduler=approx -d @instance.json
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from . import __version__
from .algorithms.registry import available_schedulers
from .cluster.solve_service import SolveService, SolveServiceConfig, solve_payload
from .core.serialization import instance_from_dict
from .observe.slo import SLOSpec, evaluate
from .observe.tracing import to_trace_events, trace_spans, valid_trace_id
from .resilience.admission import AdmissionController
from .telemetry import (
    MetricsRegistry,
    collector,
    export_file,
    new_trace_id,
    prometheus_text,
    trace_scope,
)
from .utils.errors import FallbackExhaustedError, ReproError, SolverTimeoutError

__all__ = ["make_server", "serve"]

#: The Prometheus text exposition content type, including charset.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _journal_solve(server, scheduler_name: str, energy: float, trace_id: Optional[str] = None) -> None:
    """Append one solve to the server's energy ledger (crash-safe).

    Handler threads race here, so the whole append-snapshot sequence runs
    under the server's journal lock; the journal's fsync policy makes the
    record durable before the response leaves the building.
    """
    journal = getattr(server, "journal", None)
    if journal is None:
        return
    with server.journal_lock:
        server.energy_spent += float(energy)
        record = {
            "type": "solve",
            "scheduler": scheduler_name,
            "energy": float(energy),
            "cum_energy": server.energy_spent,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        # The fsync under the lock is deliberate: cum_energy must be
        # strictly ordered in the ledger, so appends serialise here.
        journal.append(record)  # repro: noqa[RL011]
        server.solves_since_snapshot += 1
        if server.snapshot_every > 0 and server.solves_since_snapshot >= server.snapshot_every:
            # Snapshot under the same lock: it must capture a settled ledger.
            server.snapshots.save(  # repro: noqa[RL011]
                {
                    "meta": {"kind": "server"},
                    "windows": [],
                    "cum_energy": server.energy_spent,
                    "level": -1,
                },
                journal_records=journal.record_count,
            )
            server.solves_since_snapshot = 0


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro/{__version__}"

    # -- helpers ---------------------------------------------------------------

    #: Trace id of the request being handled (set by the solve route);
    #: echoed back on every response while set.
    _trace_id: Optional[str] = None

    def _send_json(self, payload: dict, status: int = 200, headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id is not None:
            self.send_header("X-Repro-Trace-Id", self._trace_id)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int, headers: Optional[dict] = None) -> None:
        self._send_json({"error": message}, status, headers)

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- routes ----------------------------------------------------------------

    @property
    def _telemetry(self) -> MetricsRegistry:
        return self.server.telemetry  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = urlparse(self.path).path
        self._telemetry.counter("server_requests_total", path=path).inc()
        if path == "/health":
            payload = {"status": "ok", "version": __version__}
            if getattr(self.server, "journal", None) is not None:
                payload["energy_spent_joules"] = self.server.energy_spent  # type: ignore[attr-defined]
            self._send_json(payload)
        elif path == "/schedulers":
            self._send_json({"schedulers": available_schedulers()})
        elif path == "/metrics":
            body = prometheus_text(self._telemetry).encode()
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/slo":
            spec: SLOSpec = getattr(self.server, "slo", None) or SLOSpec()
            payload = evaluate(self._telemetry, spec).to_dict()
            payload["configured"] = not spec.empty
            self._send_json(payload)
        elif path.startswith("/trace/"):
            trace_id = path[len("/trace/") :]
            if valid_trace_id(trace_id) is None:
                self._send_error_json(f"malformed trace id {trace_id!r}", 400)
                return
            spans = trace_spans(self._telemetry, trace_id)
            if not spans:
                self._send_error_json(f"unknown trace {trace_id!r}", 404)
                return
            self._send_json(to_trace_events(spans, trace_id=trace_id))
        else:
            self._send_error_json(f"unknown path {path!r}", 404)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        # The broad catch is the outermost wall: whatever goes wrong in a
        # handler must come back as a JSON 500, never a dropped connection.
        try:
            self._do_post()
        except Exception as exc:  # noqa: BLE001 — serving boundary
            self._telemetry.counter("server_errors_total", status="500").inc()
            try:
                self._send_error_json(f"internal error: {exc}", 500)
            except OSError:
                pass  # client already gone

    def _do_post(self) -> None:
        parsed = urlparse(self.path)
        tele = self._telemetry
        tele.counter("server_requests_total", path=parsed.path).inc()
        if parsed.path != "/solve":
            self._send_error_json(f"unknown path {parsed.path!r}", 404)
            return
        # The request's trace identity: honour a well-formed inbound
        # X-Repro-Trace-Id (cross-service propagation), mint one otherwise.
        # Echoed on every response from here on, including errors.
        trace_id = valid_trace_id(self.headers.get("X-Repro-Trace-Id")) or new_trace_id()
        self._trace_id = trace_id
        try:
            # Activate the server's registry for this handler thread so
            # every span and counter below lands in it, under the trace.
            with collector(tele), trace_scope(trace_id):
                with tele.span("server.request", path="/solve"):
                    self._solve_route(parsed, tele)
        finally:
            self._trace_id = None  # keep-alive connections reuse the handler

    def _solve_route(self, parsed, tele: MetricsRegistry) -> None:
        query = parse_qs(parsed.query)
        name = query.get("scheduler", ["approx"])[0]
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            data = json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            tele.counter("server_errors_total", status="400").inc()
            self._send_error_json(f"invalid JSON body: {exc}", 400)
            return
        try:
            instance = instance_from_dict(data)
            scheduler = self._build_scheduler(name)
        except ReproError as exc:
            tele.counter("server_errors_total", status="400").inc()
            self._send_error_json(str(exc), 400)
            return

        admission: AdmissionController = self.server.admission  # type: ignore[attr-defined]
        with tele.span("server.admission"):
            decision = admission.try_begin()
        if not decision.admitted:
            tele.counter("server_errors_total", status="503").inc()
            self._send_error_json(
                f"overloaded ({decision.reason})",
                503,
                headers={"Retry-After": str(int(max(decision.retry_after_seconds, 1)))},
            )
            return
        try:
            with tele.span("server.solve", scheduler=name):
                result = self._solve(scheduler, instance)
        except (SolverTimeoutError, FallbackExhaustedError) as exc:
            # Record the failure BEFORE responding: a client retrying on the
            # 503 must observe the breaker state this failure produced.
            admission.finish(failure=True)
            tele.counter("server_errors_total", status="503").inc()
            self._send_error_json(
                f"solve timed out: {exc}",
                503,
                headers={"Retry-After": str(int(max(admission.retry_after_seconds, 1)))},
            )
            return
        except ReproError as exc:
            admission.finish(failure=True)
            tele.counter("server_errors_total", status="500").inc()
            self._send_error_json(f"solve failed: {exc}", 500)
            return
        except Exception:
            admission.finish(failure=True)
            raise  # the outer wall answers with the JSON 500
        admission.finish(failure=False)
        with tele.span("server.schedule"):
            _journal_solve(self.server, scheduler.name, result.schedule.total_energy, self._trace_id)
            payload = solve_payload(scheduler.name, result, instance, trace_id=self._trace_id)
        self._send_json(payload)

    @property
    def _solve_service(self) -> SolveService:
        """The shared solve path (also run, identically, by cluster workers)."""
        return self.server.solve_service  # type: ignore[attr-defined]

    def _build_scheduler(self, name: str):
        return self._solve_service.build_scheduler(name)

    def _solve(self, scheduler, instance):
        return self._solve_service.solve(scheduler, instance)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
    telemetry: Optional[MetricsRegistry] = None,
    admission: Optional[AdmissionController] = None,
    solver_timeout: Optional[float] = None,
    fallback: bool = False,
    journal_dir: Optional[str] = None,
    snapshot_every: int = 10,
    slo: Optional[SLOSpec] = None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; port 0 picks a free port.

    Every server carries a :class:`~repro.telemetry.MetricsRegistry`
    (``server.telemetry``; pass one to share it) that backs ``GET
    /metrics`` and collects per-request solve traces, plus an
    :class:`~repro.resilience.admission.AdmissionController`
    (``server.admission``) guarding ``POST /solve``.  ``solver_timeout``
    bounds each solve's wall clock (seconds); ``fallback`` serves every
    request through :meth:`FallbackChain.default` with the requested
    scheduler pinned to the front of the ladder.

    ``journal_dir`` makes the service durable: every served solve's
    energy is appended to a write-ahead log there (snapshot every
    ``snapshot_every`` solves), and on startup the previous incarnation's
    cumulative spend is recovered into ``server.energy_spent`` (surfaced
    on ``GET /health``) — a restarted server keeps its ledger.

    ``slo`` configures the targets ``GET /slo`` evaluates against the
    live registry (an empty spec answers with no objectives).
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.verbose = verbose  # type: ignore[attr-defined]
    server.telemetry = telemetry if telemetry is not None else MetricsRegistry()  # type: ignore[attr-defined]
    server.admission = admission if admission is not None else AdmissionController(max_in_flight=8)  # type: ignore[attr-defined]
    server.solver_timeout = solver_timeout  # type: ignore[attr-defined]
    server.fallback = fallback  # type: ignore[attr-defined]
    server.solve_service = SolveService(  # type: ignore[attr-defined]
        SolveServiceConfig(solver_timeout=solver_timeout, fallback=fallback)
    )
    server.slo = slo  # type: ignore[attr-defined]
    server.journal = None  # type: ignore[attr-defined]
    if journal_dir is not None:
        from .durability import JournalWriter, SnapshotStore, recover

        state = recover(journal_dir)
        server.journal = JournalWriter(journal_dir)  # type: ignore[attr-defined]
        server.snapshots = SnapshotStore(journal_dir)  # type: ignore[attr-defined]
        server.snapshot_every = int(snapshot_every)  # type: ignore[attr-defined]
        server.solves_since_snapshot = 0  # type: ignore[attr-defined]
        server.energy_spent = state.energy_spent  # type: ignore[attr-defined]
        server.journal_lock = threading.Lock()  # type: ignore[attr-defined]
        if state.total_records == 0:
            server.journal.append({"type": "run_start", "meta": {"kind": "server"}})  # type: ignore[attr-defined]
        else:
            server.journal.append({"type": "resume", "cum_energy": state.energy_spent})  # type: ignore[attr-defined]
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    metrics_out: Optional[str] = None,
    solver_timeout: Optional[float] = None,
    fallback: bool = False,
    max_in_flight: int = 8,
    journal_dir: Optional[str] = None,
    snapshot_every: int = 10,
    slo: Optional[SLOSpec] = None,
) -> None:
    """Run the service until interrupted (the CLI's ``serve`` command).

    ``metrics_out`` exports the accumulated telemetry on shutdown (the
    live view is always available at ``GET /metrics``).
    """
    server = make_server(
        host,
        port,
        verbose=True,
        admission=AdmissionController(max_in_flight=max_in_flight),
        solver_timeout=solver_timeout,
        fallback=fallback,
        journal_dir=journal_dir,
        snapshot_every=snapshot_every,
        slo=slo,
    )
    print(f"repro scheduling service on http://{host}:{server.server_address[1]}")
    print(f"methods: {', '.join(available_schedulers())}")
    if solver_timeout is not None or fallback:
        mode = "fallback chain" if fallback else "single solver"
        print(f"resilience: {mode}, solver timeout {solver_timeout or 'none'}, max in-flight {max_in_flight}")
    if journal_dir is not None:
        print(
            f"durability: journal at {journal_dir}, snapshot every {snapshot_every} solves, "
            f"recovered spend {server.energy_spent:.1f} J"  # type: ignore[attr-defined]
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if server.journal is not None:  # type: ignore[attr-defined]
            server.journal.close()  # type: ignore[attr-defined]
        if metrics_out is not None:
            path = export_file(server.telemetry, metrics_out)  # type: ignore[attr-defined]
            print(f"telemetry written to {path}")
