"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``solve``
    Generate a synthetic instance (paper parameterisation: n, m, β, ρ,
    θ-range) and schedule it with any registered method; prints the
    schedule summary, the simulator audit and optionally a Gantt chart.
``compare``
    Run several methods on the same instance and print one row each.
``figures``
    Regenerate paper tables/figures by name (or ``all``).
``catalog``
    Print the Fig. 1 GPU catalog and its efficiency/speed trend.
``schedulers``
    List registered scheduling methods.
``validate``
    Cross-check DSCT-EA-FR-OPT against the exact LP on random instances
    (the library's own optimality audit; useful after modifications).
``serve``
    Run the local JSON-over-HTTP scheduling service (see repro.server);
    ``--solver-timeout``/``--fallback``/``--max-in-flight`` arm the
    resilience layer (admission control, deadlines, fallback chain) and
    ``--journal-dir`` makes the energy ledger crash-safe (recovered and
    reported on restart).
``cluster``
    Run the sharded multi-worker serving front-end (see repro.cluster):
    requests are consistent-hash routed to worker processes, coalesced
    into bounded solve windows, and the global energy budget ``--budget``
    is split into per-shard leases with demand-weighted rebalancing;
    ``--journal-root`` gives every shard a crash-safe energy ledger that
    ``repro.cluster.audit_cluster`` certifies against the budget.
``bench serve``
    Serving benchmark: drive the same closed/open-loop load through a
    single process and an N-shard cluster, report throughput and
    p50/p90/p99 latency for both, and write the comparison (plus
    per-shard energy spend and the budget audit) to
    ``benchmarks/BENCH_serve.json``.
``bench profile``
    Profiling benchmark: run the seeded two-case workload down the
    fractional/LP/rounding/planner paths under telemetry, record the
    per-phase wall-time splits, span coverage and sampler overhead to
    ``benchmarks/BENCH_profile.json``, and optionally export a
    flamegraph/speedscope/collapsed-stack profile of the run
    (``benchmarks/check_regression.py --profile`` gates CI on the
    recorded per-phase budgets).
``top``
    Live terminal dashboard for a running cluster: per-shard qps, queue
    delay p99, admit rate, energy-lease utilization, the brownout rung,
    and the top-5 hottest phases from the continuous profiler —
    refreshed in place (``q`` quits; ``--once`` prints a single frame).
``online``
    Rolling-horizon serving of a Poisson stream; with ``--journal-dir``
    the run is durable (write-ahead journal + snapshots) and *resumes*
    an interrupted run deterministically (see repro.durability).
``crashtest``
    Crash-injection campaign: kill a durable run at random journal byte
    offsets (mid-record included), recover, resume, and require the
    outcome to be identical to the uninterrupted run with energy within
    budget.  Exit code 0 iff every kill point passes.
``chaos soak`` / ``chaos timeline``
    Cluster-level chaos (see repro.chaos): ``soak`` runs N seeded
    fault-injection campaigns (worker SIGKILL/exit, stalls, dropped
    replies, torn journal writes, lease-release delays, rebalance clock
    skew) against live clusters and certifies the energy-budget,
    at-most-once and liveness invariants after each; ``timeline``
    prints a seed's planned fault schedule without running anything.
    Exit code 0 iff every campaign certifies.
``robustness``
    Failure-injection sweeps: ``--sweep outage`` (most-loaded machine
    dies mid-horizon) or ``--sweep slowdown`` (uniform throttling).
``resilience``
    Online-serving outage demo comparing the stale plan against
    failure-aware replanning (see repro.resilience).
``report``
    Regenerate the full reproduction report into one Markdown file.
``telemetry``
    Inspect a metrics file written by ``--metrics-out`` (counters,
    histograms and the solver-phase span tree).
``trace``
    Extract request traces from a metrics file or a running server and
    export them as Chrome/Perfetto ``trace_event`` JSON or a
    self-contained HTML timeline (see repro.observe).
``slo``
    Evaluate a metrics file against SLO targets (p99 solve latency,
    accuracy floor, deadline-miss rate) and optionally replay a
    durability journal through the energy burn-rate monitor.
``explain``
    Decision provenance: attribute every task's compression level to
    its binding constraint (deadline / energy / work cap / none) using
    LP shadow prices, and price +1 J and +1 s of slack.
``lint``
    Domain-aware static analysis (see repro.lint): unit-dimension
    checking, float-equality and atomic-write rules, concurrency-safety
    lints, and scheduling-invariant conventions; ``--select/--ignore``
    filter rules, ``--format json`` is machine-readable, exit code 1
    means findings.

``solve``, ``compare`` and ``serve`` accept ``--metrics-out PATH``:
the run executes under an active telemetry collector and the collected
metrics/spans are exported to PATH (format from the suffix: ``.jsonl``,
``.csv``, or ``.prom``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Iterator, Optional, Sequence

from .algorithms.registry import available_schedulers, make_scheduler
from .core.instance import ProblemInstance
from .experiments import (
    EnergyGainConfig,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    Table1Config,
    run_energy_gain,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4_machines,
    run_fig4_tasks,
    run_fig5,
    run_fig6,
    run_table1,
)
from .experiments.records import ResultTable
from .hardware import sample_uniform_cluster
from .simulator import ClusterSimulator, PowerModel
from .workloads import TaskGenConfig, generate_tasks

__all__ = ["main", "build_parser"]


def _make_instance(args: argparse.Namespace) -> ProblemInstance:
    cluster = sample_uniform_cluster(args.machines, seed=args.seed)
    config = TaskGenConfig(
        n=args.tasks,
        theta_range=(args.theta_min, args.theta_max),
        rho=args.rho,
    )
    tasks = generate_tasks(config, cluster, seed=args.seed + 1 if args.seed is not None else None)
    return ProblemInstance.with_beta(tasks, cluster, args.beta)


def _add_metrics_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="collect telemetry and export it here (.jsonl/.csv/.prom)",
    )


@contextlib.contextmanager
def _metrics_scope(args: argparse.Namespace) -> Iterator[None]:
    """Collect and export telemetry when ``--metrics-out`` was given."""
    path = getattr(args, "metrics_out", None)
    if path is None:
        yield
        return
    from .telemetry import collector, ensure_trace, export_file

    # The whole command runs under one trace (reused if already active),
    # so every exported capture is `repro trace`-able.
    with collector() as registry, ensure_trace():
        yield
    out = export_file(registry, path)
    print(f"telemetry written to {out}")


def _add_instance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tasks", "-n", type=int, default=50, help="number of tasks")
    parser.add_argument("--machines", "-m", type=int, default=3, help="number of machines")
    parser.add_argument("--beta", type=float, default=0.5, help="energy budget ratio β")
    parser.add_argument("--rho", type=float, default=0.5, help="deadline tolerance ρ")
    parser.add_argument("--theta-min", type=float, default=0.1, help="min task efficiency θ")
    parser.add_argument("--theta-max", type=float, default=1.0, help="max task efficiency θ")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _cmd_solve(args: argparse.Namespace) -> int:
    with _metrics_scope(args):
        return _run_solve(args)


def _run_solve(args: argparse.Namespace) -> int:
    if args.load is not None:
        import json

        from .core.serialization import instance_from_dict

        data = json.loads(Path(args.load).read_text())
        # Accept either an instance document or a schedule document with
        # an embedded instance (as written by `solve --save`).
        if data.get("format") == "repro.schedule" and "instance" in data:
            data = data["instance"]
        instance = instance_from_dict(data)
    else:
        instance = _make_instance(args)
    if args.fallback:
        from .resilience import FallbackChain

        scheduler = FallbackChain.default(deadline_seconds=args.solver_timeout, first=args.scheduler)
        result = scheduler.solve_with_info(instance)
    else:
        scheduler = make_scheduler(args.scheduler)
        if args.solver_timeout is not None:
            from .resilience import run_with_deadline

            result = run_with_deadline(
                lambda: scheduler.solve_with_info(instance), args.solver_timeout, solver=scheduler.name
            )
        else:
            result = scheduler.solve_with_info(instance)
    schedule = result.schedule
    report = ClusterSimulator(
        instance,
        power_model=PowerModel(instance.cluster, idle_fraction=args.idle_fraction, account_idle=args.idle_fraction > 0),
    ).run(schedule)
    print(f"instance: {instance}")
    print(f"method:   {scheduler.name}" + (f"  ({result.info.runtime_seconds:.4f}s)" if result.info.runtime_seconds else ""))
    if "tier" in result.info.extra:
        print(f"served by fallback tier: {result.info.extra['tier']} (index {result.info.extra['tier_index']})")
    print(report.summary())
    audit = schedule.feasibility()
    print(f"model feasibility: {audit.summary()}")
    if args.gantt:
        print(report.trace.gantt())
    if args.analyze:
        from .core.analysis import format_analysis

        print(format_analysis(schedule))
    if args.save is not None:
        from .core.serialization import save_schedule

        save_schedule(schedule, args.save)
        print(f"schedule saved to {args.save}")
    return 0 if audit.feasible else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    with _metrics_scope(args):
        return _run_compare(args)


def _run_compare(args: argparse.Namespace) -> int:
    instance = _make_instance(args)
    table = ResultTable(
        title=f"method comparison on {instance}",
        columns=["method", "mean_accuracy", "energy_J", "budget_used_pct", "runtime_s"],
    )
    for name in args.schedulers:
        scheduler = make_scheduler(name)
        result = scheduler.solve_with_info(instance)
        sched = result.schedule
        table.add_row(
            scheduler.name,
            sched.mean_accuracy,
            sched.total_energy,
            100.0 * sched.total_energy / instance.budget if instance.budget else 0.0,
            result.info.runtime_seconds or 0.0,
        )
    print(table.format())
    return 0


_FIGURE_RUNNERS = {
    "fig1": lambda scale: run_fig1(),
    "fig2": lambda scale: run_fig2(),
    "fig3": lambda scale: run_fig3(
        Fig3Config() if scale == "paper" else Fig3Config(mu_values=(5.0, 10.0, 20.0), repetitions=5, n=40, m=3)
    ),
    "fig4a": lambda scale: run_fig4_tasks(
        Fig4Config() if scale == "paper" else Fig4Config(task_counts=(10, 20, 30), repetitions=1, time_limit=10.0, fixed_m=3)
    ),
    "fig4b": lambda scale: run_fig4_machines(
        Fig4Config() if scale == "paper" else Fig4Config(machine_counts=(2, 4), fixed_n=20, repetitions=1, time_limit=10.0)
    ),
    "table1": lambda scale: run_table1(
        Table1Config() if scale == "paper" else Table1Config(task_counts=(100, 200), repetitions=1)
    ),
    "fig5": lambda scale: run_fig5(Fig5Config() if scale == "paper" else Fig5Config(n=40, repetitions=2)),
    "gain": lambda scale: run_energy_gain(
        EnergyGainConfig() if scale == "paper" else EnergyGainConfig(n=40, repetitions=2)
    ),
    "fig6a": lambda scale: run_fig6("uniform", Fig6Config() if scale == "paper" else Fig6Config(n=40, repetitions=2)),
    "fig6b": lambda scale: run_fig6("earliest", Fig6Config() if scale == "paper" else Fig6Config(n=40, repetitions=2)),
}


def _cmd_figures(args: argparse.Namespace) -> int:
    names = list(_FIGURE_RUNNERS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in _FIGURE_RUNNERS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; known: {', '.join(_FIGURE_RUNNERS)}", file=sys.stderr)
        return 2
    for name in names:
        table = _FIGURE_RUNNERS[name](args.scale)
        print(table.format())
        print()
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            table.to_csv(args.out / f"{name}.csv")
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    print(run_fig1().format())
    return 0


def _cmd_schedulers(_args: argparse.Namespace) -> int:
    for name in available_schedulers():
        print(name)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import ReportConfig, write_report

    path = write_report(
        args.out,
        ReportConfig(scale=args.scale),
        progress=lambda label: print(f"  running {label} ..."),
    )
    print(f"report written to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .observe import SLOSpec
    from .server import serve

    slo = SLOSpec(
        p99_solve_latency=args.slo_p99,
        accuracy_floor=args.slo_accuracy_floor,
        deadline_miss_rate=args.slo_miss_rate,
    )
    serve(
        args.host,
        args.port,
        metrics_out=args.metrics_out,
        solver_timeout=args.solver_timeout,
        fallback=args.fallback,
        max_in_flight=args.max_in_flight,
        journal_dir=str(args.journal_dir) if args.journal_dir is not None else None,
        snapshot_every=args.snapshot_every,
        slo=None if slo.empty else slo,
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import ClusterConfig, serve_cluster

    config = ClusterConfig(
        shards=args.shards,
        budget=args.budget,
        journal_root=str(args.journal_root) if args.journal_root is not None else None,
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait / 1000.0,
        solver_timeout=args.solver_timeout,
        fallback=args.fallback,
        max_in_flight=args.max_in_flight,
        rebalance_seconds=args.rebalance_seconds,
        queue_target_seconds=args.queue_target,
        brownout_target_p99_seconds=args.brownout_target,
        max_queue_per_shard=args.max_queue,
        adaptive_lifo=args.adaptive_lifo,
        profile_hz=args.profile_hz,
    )
    serve_cluster(args.host, args.port, config=config)
    return 0


def _cmd_bench_overload(args: argparse.Namespace) -> int:
    from .overload.bench import bench_overload

    report = bench_overload(
        str(args.out),
        shards=args.shards,
        scheduler=args.scheduler,
        n_tasks=args.tasks,
        n_machines=args.machines,
        beta=args.beta,
        budget=args.budget,
        journal_root=str(args.journal_root) if args.journal_root is not None else None,
        seed=args.seed,
        calibrate_seconds=args.calibrate,
        phase_seconds=args.phase_seconds,
        concurrency=args.concurrency,
        deadline_seconds=args.deadline,
        queue_target_seconds=args.queue_target,
        brownout_target_p99_seconds=args.brownout_target,
        recovery_settle_seconds=args.settle,
        min_recovery=args.min_recovery,
    )
    audit = report.get("audit")
    audited = audit is None or audit["certified"]
    return 0 if report["recovered"] and audited and report["doomed_dispatched"] == 0 else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from .cluster import bench_serve

    report = bench_serve(
        str(args.out),
        shards=args.shards,
        duration=args.duration,
        concurrency=args.concurrency,
        rate=args.rate,
        scheduler=args.scheduler,
        n_tasks=args.tasks,
        n_machines=args.machines,
        beta=args.beta,
        budget=args.budget,
        journal_root=str(args.journal_root) if args.journal_root is not None else None,
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait / 1000.0,
        seed=args.seed,
        skip_single=args.skip_single,
    )
    audit = report.get("audit")
    return 0 if audit is None or audit["certified"] else 1


def _cmd_bench_profile(args: argparse.Namespace) -> int:
    from .profile.bench import run_profile_bench

    report = run_profile_bench(
        out=str(args.out),
        flame=str(args.flame) if args.flame is not None else None,
        speedscope=str(args.speedscope) if args.speedscope is not None else None,
        collapsed=str(args.collapsed) if args.collapsed is not None else None,
        repeats=args.repeats,
        hz=args.hz,
        stream=sys.stdout,
    )
    solve_coverage = report["solve"]["coverage"]
    overhead = report["sampler_overhead"]["overhead_fraction"]
    ok = solve_coverage >= 0.9 and overhead < 0.05
    if not ok:
        print(
            f"FAIL: solve span coverage {solve_coverage:.1%} (need >= 90%) "
            f"or sampler overhead {overhead:.2%} (need < 5%)",
            file=sys.stderr,
        )
    return 0 if ok else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from .profile.top import run_top

    return run_top(
        args.url,
        interval=args.interval,
        once=args.once,
        max_frames=args.frames,
    )


def _cmd_online(args: argparse.Namespace) -> int:
    """Durable (or plain) rolling-horizon serving of a Poisson stream."""
    with _metrics_scope(args):
        return _run_online(args)


def _run_online(args: argparse.Namespace) -> int:
    from .online.planner import RollingHorizonPlanner
    from .workloads.arrivals import PoissonArrivals

    cluster = sample_uniform_cluster(args.machines, seed=args.seed)
    requests = PoissonArrivals(args.rate, seed=args.seed + 1).generate(args.horizon)
    if not requests:
        print("the arrival process generated no requests; raise --rate or --horizon", file=sys.stderr)
        return 2
    planner = RollingHorizonPlanner(
        cluster,
        make_scheduler(args.scheduler),
        window_seconds=args.window,
        power_cap_fraction=args.power_cap_fraction,
    )
    budget = args.budget_fraction * args.horizon * cluster.total_power
    degradation = None
    if args.degrade:
        from .resilience.degrade import DegradationPolicy

        degradation = DegradationPolicy.default()

    if args.journal_dir is None:
        report = planner.run(requests)
        print(f"served {report.n_requests} requests in {len(report.windows)} windows ({args.scheduler})")
        print(f"mean accuracy {report.mean_accuracy:.4f}, on-time {100.0 * report.on_time_fraction:.1f}%")
        print(f"energy {report.total_energy:.1f} J")
        return 0

    report = planner.run_durable(
        requests,
        args.journal_dir,
        energy_budget=budget,
        degradation=degradation,
        snapshot_every=args.snapshot_every,
        meta={"seed": args.seed, "rate": args.rate, "horizon": args.horizon},
    )
    print(f"served {report.n_requests} requests in {len(report.windows)} windows ({args.scheduler})")
    if report.replayed_windows:
        print(f"resumed interrupted run: {report.replayed_windows} windows replayed from the journal")
    print(f"mean accuracy {report.mean_accuracy:.4f}, on-time {100.0 * report.on_time_fraction:.1f}%")
    print(f"energy {report.total_energy:.1f} J of budget {budget:.1f} J")
    print(f"journal at {args.journal_dir} (snapshot every {args.snapshot_every} windows)")
    return 0 if report.total_energy <= budget * (1 + 1e-9) else 1


def _cmd_crashtest(args: argparse.Namespace) -> int:
    """Crash-injection campaign over the durable serving loop."""
    from .durability.crashtest import CrashTestConfig, run_crash_test

    config = CrashTestConfig(
        kills=args.kills,
        seed=args.seed,
        machines=args.machines,
        rate=args.rate,
        horizon=args.horizon,
        window_seconds=args.window,
        scheduler=args.scheduler,
        snapshot_every=args.snapshot_every,
        degrade=not args.no_degrade,
    )
    result = run_crash_test(
        config,
        workdir=args.workdir,
        progress=print if args.verbose else None,
    )
    print(result.summary())
    return 0 if result.passed else 1


def _cmd_chaos_soak(args: argparse.Namespace) -> int:
    """Seeded chaos campaigns against live clusters; exit 1 on violations."""
    import json as _json

    from .chaos import run_soak
    from .utils.fileio import atomic_write

    seeds = args.seed_list if args.seed_list else list(range(args.seed, args.seed + args.seeds))
    out_root = args.out
    if out_root is None:
        import tempfile

        out_root = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    report = run_soak(
        seeds,
        out_root,
        shards=args.shards,
        budget=args.budget,
        requests=args.requests,
        n_events=args.events,
        max_op=args.max_op,
        scheduler=args.scheduler,
        request_timeout_seconds=args.request_timeout,
        min_resolve_rate=args.min_resolve_rate,
        progress=print,
    )
    atomic_write(Path(out_root) / "soak_report.json", _json.dumps(report.to_dict(), indent=2))
    print(report.summary())
    print(f"campaign artifacts (shard ledgers + chaos journals) under {out_root}")
    if not report.ok:
        for violation in report.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos_timeline(args: argparse.Namespace) -> int:
    """Print a seed's planned fault timeline (no cluster is started)."""
    from .chaos import ChaosSchedule

    shard_ids = [f"shard-{i:02d}" for i in range(args.shards)]
    schedule = ChaosSchedule(args.seed, shard_ids, n_events=args.events, max_op=args.max_op)
    print(f"chaos timeline for seed {args.seed} over {args.shards} shard(s):")
    for event in schedule.events:
        print(f"  {event.describe()}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .experiments.robustness import RobustnessConfig, run_outage_sweep, run_slowdown_sweep

    config = RobustnessConfig(
        n=args.tasks, m=args.machines, beta=args.beta, repetitions=args.repetitions, seed=args.seed
    )
    runner = run_outage_sweep if args.sweep == "outage" else run_slowdown_sweep
    table = runner(config)
    print(table.format())
    if args.out is not None:
        table.to_csv(args.out)
        print(f"csv written to {args.out}")
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    """The headline resilience demo: stale plan vs failure-aware replanning."""
    with _metrics_scope(args):
        return _run_resilience(args)


def _run_resilience(args: argparse.Namespace) -> int:
    from .experiments.records import ResultTable
    from .simulator.failures import FailureModel, Outage
    from .simulator.online_sim import OnlineSimulation
    from .workloads.arrivals import PoissonArrivals

    cluster = sample_uniform_cluster(args.machines, seed=args.seed)
    requests = PoissonArrivals(args.rate, seed=args.seed + 1).generate(args.horizon)
    if not requests:
        print("the arrival process generated no requests; raise --rate or --horizon", file=sys.stderr)
        return 2
    # The most efficient machine carries the most planned load under the
    # paper's energy-greedy policies, so killing machine 0 mid-stream is
    # the worst single outage.
    failures = FailureModel(outages=(Outage(machine=0, at=args.outage_at * args.horizon),))
    scheduler = make_scheduler(args.scheduler)

    def run(replan: bool):
        sim = OnlineSimulation(
            cluster,
            scheduler,
            window_seconds=args.window,
            failures=failures,
            replan=replan,
        )
        return sim.run(requests)

    stale, aware = run(False), run(True)
    table = ResultTable(
        title=(
            f"Resilience — outage of machine 0 at t={args.outage_at * args.horizon:.1f}s, "
            f"{len(requests)} requests over {args.horizon:.0f}s ({scheduler.name})"
        ),
        columns=["mode", "mean_accuracy", "served_pct", "slo_pct", "disrupted", "energy_J"],
    )
    for mode, rep in (("stale plan", stale), ("replanned", aware)):
        table.add_row(
            mode,
            rep.mean_accuracy,
            100.0 * rep.served_fraction,
            100.0 * rep.slo_attainment,
            rep.disrupted_count,
            rep.energy,
        )
    recovered = aware.mean_accuracy - stale.mean_accuracy
    table.notes.append(
        f"replanning recovered {recovered:.4g} mean accuracy "
        f"({100.0 * recovered / max(stale.mean_accuracy, 1e-12):.1f}% over the stale plan)"
    )
    print(table.format())
    if args.out is not None:
        table.to_csv(args.out)
        print(f"csv written to {args.out}")
    return 0 if aware.mean_accuracy >= stale.mean_accuracy else 1


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Summarise an exported metrics file: series tables + span tree."""
    from .telemetry import TelemetryError, load_file

    try:
        snap = load_file(args.path, format=args.format)
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except (TelemetryError, ValueError, KeyError) as exc:
        fmt = args.format or "auto-detected"
        print(f"error: {args.path} does not parse as {fmt} telemetry: {exc}", file=sys.stderr)
        return 2
    # Deterministic inspector output: series sort by (name, labels), so
    # two inspections of the same capture diff clean regardless of
    # registration order.
    by_series = lambda m: (m["name"], sorted(m["labels"].items()))  # noqa: E731
    scalars = sorted(
        (m for m in snap["metrics"] if m["kind"] in ("counter", "gauge")), key=by_series
    )
    histograms = sorted(
        (m for m in snap["metrics"] if m["kind"] == "histogram"), key=by_series
    )
    spans = snap["spans"]

    if scalars:
        print(f"-- counters / gauges ({len(scalars)} series)")
        for m in scalars:
            print(f"  {m['kind']:<8} {m['name']}{_format_labels(m['labels'])} = {m['value']:g}")
    if histograms:
        print(f"-- histograms ({len(histograms)} series)")
        for m in histograms:
            mean = m["sum"] / m["count"] if m["count"] else 0.0
            # Prometheus exposition carries no min/max, so they may be absent.
            has_extremes = m.get("count") and m.get("min") is not None and m.get("max") is not None
            extremes = f"  min={m['min']:.6g} max={m['max']:.6g}" if has_extremes else ""
            exemplar = m.get("exemplar")
            linked = (
                f"  exemplar={exemplar['value']:.6g} trace={exemplar['trace_id']}"
                if exemplar
                else ""
            )
            print(
                f"  {m['name']}{_format_labels(m['labels'])}: "
                f"count={m['count']} sum={m['sum']:.6g} mean={mean:.6g}{extremes}{linked}"
            )
    if spans:
        shown = spans if args.spans is None else spans[: args.spans]
        print(f"-- spans ({len(spans)} recorded, showing {len(shown)})")
        for s in shown:
            duration = "open" if s["duration"] is None else f"{s['duration'] * 1e3:.3f} ms"
            indent = "  " * s["depth"]
            print(f"  {s['start']:9.4f}s  {indent}{s['name']}{_format_labels(s['labels'])}  {duration}")
    if not (scalars or histograms or spans):
        print("(no telemetry in file)")
    return 0


def _load_trace_snapshot(args: argparse.Namespace) -> Optional[dict]:
    """The span snapshot behind ``repro trace``: a file or a live server."""
    source = str(args.source)
    if source.startswith(("http://", "https://")):
        import json as _json
        from urllib.request import urlopen

        if args.trace_id is None:
            print("error: a server source needs --trace-id (ids are per request)", file=sys.stderr)
            return None
        with urlopen(f"{source.rstrip('/')}/trace/{args.trace_id}") as resp:
            document = _json.loads(resp.read().decode())
        # Back-convert trace_event JSON into the span-dict shape the
        # exporters consume, so every output path below works uniformly.
        spans = [
            {
                "span_id": e["args"]["span_id"],
                "parent_id": e["args"].get("parent_id"),
                "name": e["name"],
                "depth": e["args"].get("depth", 0),
                "start": e["ts"] / 1e6,
                "duration": None if e["args"].get("unfinished") else e["dur"] / 1e6,
                "labels": {
                    k: v
                    for k, v in e["args"].items()
                    if k not in ("span_id", "parent_id", "depth", "trace_id", "unfinished")
                },
                "trace_id": e["args"].get("trace_id", args.trace_id),
            }
            for e in document.get("traceEvents", [])
        ]
        return {"metrics": [], "spans": spans}
    from .telemetry import TelemetryError, load_file

    try:
        return load_file(args.source, format=args.format)
    except OSError as exc:
        print(f"error: cannot read {args.source}: {exc}", file=sys.stderr)
        return None
    except (TelemetryError, ValueError, KeyError) as exc:
        print(f"error: {args.source} does not parse as telemetry: {exc}", file=sys.stderr)
        return None


def _cmd_trace(args: argparse.Namespace) -> int:
    """Export one trace (or list the traces) from a snapshot or server."""
    from .observe import trace_ids, trace_spans, write_html_timeline, write_trace_events

    snap = _load_trace_snapshot(args)
    if snap is None:
        return 2
    ids = trace_ids(snap)
    if args.list:
        if not ids:
            print("(no traced spans)")
        for tid in ids:
            print(f"{tid}  ({len(trace_spans(snap, tid))} spans)")
        return 0
    trace_id = args.trace_id
    if trace_id is None:
        if len(ids) == 1:
            trace_id = ids[0]
        elif not ids:
            print("error: the source holds no traced spans", file=sys.stderr)
            return 2
        else:
            print(
                f"error: {len(ids)} traces present; pick one with --trace-id "
                f"(see --list)",
                file=sys.stderr,
            )
            return 2
    spans = trace_spans(snap, trace_id)
    if not spans:
        print(f"error: no spans for trace {trace_id!r}", file=sys.stderr)
        return 2
    wrote = False
    if args.out is not None:
        path = write_trace_events(spans, args.out, trace_id=trace_id)
        print(f"trace_event JSON written to {path} (load at https://ui.perfetto.dev)")
        wrote = True
    if args.html is not None:
        path = write_html_timeline(spans, args.html, trace_id=trace_id)
        print(f"HTML timeline written to {path}")
        wrote = True
    if not wrote:
        print(f"trace {trace_id} — {len(spans)} span(s)")
        for s in spans:
            duration = "open" if s["duration"] is None else f"{s['duration'] * 1e3:.3f} ms"
            indent = "  " * s["depth"]
            print(f"  {s['start']:9.4f}s  {indent}{s['name']}{_format_labels(s['labels'])}  {duration}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate a metrics file against SLO targets; optional burn replay."""
    from .observe import BurnRateMonitor, SLOSpec, evaluate
    from .telemetry import TelemetryError, load_file

    spec = SLOSpec(
        p99_solve_latency=args.p99,
        accuracy_floor=args.accuracy_floor,
        deadline_miss_rate=args.miss_rate,
        queue_delay_p99=args.queue_delay_p99,
        latency_span=args.latency_span,
    )
    failed = False
    if args.path is not None:
        try:
            snap = load_file(args.path, format=args.format)
        except OSError as exc:
            print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
            return 2
        except (TelemetryError, ValueError, KeyError) as exc:
            print(f"error: {args.path} does not parse as telemetry: {exc}", file=sys.stderr)
            return 2
        if spec.empty:
            print(
                "no SLO targets given (use --p99 / --accuracy-floor / "
                "--miss-rate / --queue-delay-p99)"
            )
        else:
            report = evaluate(snap, spec)
            print(report.summary())
            failed = failed or not report.ok

    if args.journal_dir is not None:
        if args.budget is None or args.horizon is None:
            print("error: --journal-dir needs --budget and --horizon", file=sys.stderr)
            return 2
        from .durability import read_events

        monitor = BurnRateMonitor(budget=args.budget, horizon=args.horizon)
        samples = 0
        for event in read_events(args.journal_dir):
            if event.get("type") in ("window_done", "run_end") and "cum_energy" in event:
                t = event.get("start", event.get("horizon"))
                if t is None:
                    continue
                for alert in monitor.observe(float(t), float(event["cum_energy"])):
                    print(f"ALERT {alert}")
                    failed = True
                samples += 1
        print(
            f"burn-rate replay over {samples} ledger sample(s): "
            f"spent {monitor.spent:.1f}/{monitor.budget:.1f} J "
            f"({100.0 * monitor.spent_fraction:.1f}%), "
            f"fast {monitor.burn_rate(monitor.fast_window):.2f}x, "
            f"slow {monitor.burn_rate(monitor.slow_window):.2f}x sustainable"
        )
        eta = monitor.projected_exhaustion()
        if eta is not None and not monitor.exhausted:
            print(f"projected exhaustion at t={eta:.1f}s (horizon {args.horizon:g}s)")

    if args.path is None and args.journal_dir is None:
        print("error: give a metrics file and/or --journal-dir", file=sys.stderr)
        return 2
    return 1 if failed else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Decision provenance for one instance (LP duals when available)."""
    import json as _json

    from .observe import explain_instance, explain_schedule

    if args.load is not None:
        from .core.serialization import instance_from_dict

        data = _json.loads(Path(args.load).read_text())
        if data.get("format") == "repro.schedule" and "instance" in data:
            data = data["instance"]
        instance = instance_from_dict(data)
    else:
        instance = _make_instance(args)
    if args.scheduler == "lp":
        report = explain_instance(instance)
    else:
        schedule = make_scheduler(args.scheduler).solve(instance)
        if args.duals:
            from .exact.lp import solve_lp_with_duals

            _, _, duals = solve_lp_with_duals(instance)
            report = explain_schedule(schedule, duals)
        else:
            report = explain_schedule(schedule)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repro.lint static analyzer (exit 1 on findings)."""
    from .lint.cli import run_lint

    return run_lint(args)


def _cmd_validate(args: argparse.Namespace) -> int:
    """Audit FR-OPT against the exact LP on random instances."""
    import numpy as np

    from .algorithms.fractional import solve_fractional
    from .exact.lp import solve_lp_relaxation
    from .workloads import TaskGenConfig, generate_tasks

    rng = np.random.default_rng(args.seed)
    worst = 0.0
    failures = 0
    for i in range(args.instances):
        n = int(rng.integers(2, args.max_tasks + 1))
        m = int(rng.integers(1, args.max_machines + 1))
        beta = float(rng.uniform(0.05, 1.2))
        rho = float(rng.uniform(0.1, 1.8))
        cluster = sample_uniform_cluster(m, seed=int(rng.integers(1 << 31)))
        tasks = generate_tasks(
            TaskGenConfig(n=n, theta_range=(0.1, 2.0), rho=rho),
            cluster,
            seed=int(rng.integers(1 << 31)),
        )
        instance = ProblemInstance.with_beta(tasks, cluster, beta)
        frac, _ = solve_fractional(instance, thorough=args.thorough)
        _, lp_obj = solve_lp_relaxation(instance)
        rel = (lp_obj - frac.total_accuracy) / max(lp_obj, 1e-12)
        worst = max(worst, rel)
        if rel > args.tolerance:
            failures += 1
            print(f"  instance {i}: n={n} m={m} beta={beta:.2f} rho={rho:.2f} rel gap {rel:.2e}")
    print(
        f"validated {args.instances} instances: worst relative gap {worst:.2e}, "
        f"{failures} beyond tolerance {args.tolerance:.0e}"
    )
    return 0 if failures == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSCT-EA: energy-aware scheduling of compressible ML inference tasks (ICPP'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="schedule one synthetic instance")
    _add_instance_args(p_solve)
    p_solve.add_argument("--scheduler", default="approx", help="method name (see `schedulers`)")
    p_solve.add_argument("--idle-fraction", type=float, default=0.0, help="idle power fraction for the simulator")
    p_solve.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p_solve.add_argument("--analyze", action="store_true", help="print compression/energy analytics")
    p_solve.add_argument("--save", type=Path, default=None, help="save the schedule (with instance) as JSON")
    p_solve.add_argument("--load", type=Path, default=None, help="load the instance from a JSON file instead of generating")
    p_solve.add_argument(
        "--solver-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the solve (SolverTimeoutError past it)",
    )
    p_solve.add_argument(
        "--fallback",
        action="store_true",
        help="serve through the MIP→LP→approx→greedy fallback chain (with --scheduler pinned first)",
    )
    _add_metrics_arg(p_solve)
    p_solve.set_defaults(fn=_cmd_solve)

    p_cmp = sub.add_parser("compare", help="compare methods on one instance")
    _add_instance_args(p_cmp)
    p_cmp.add_argument(
        "--schedulers",
        nargs="+",
        default=["fractional", "approx", "edf-3levels", "edf-nocompression"],
        help="method names to compare",
    )
    _add_metrics_arg(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    p_fig.add_argument("names", nargs="+", help=f"figure names or 'all' ({', '.join(_FIGURE_RUNNERS)})")
    p_fig.add_argument("--scale", choices=("default", "paper"), default="default")
    p_fig.add_argument("--out", type=Path, default=None, help="CSV output directory")
    p_fig.set_defaults(fn=_cmd_figures)

    p_cat = sub.add_parser("catalog", help="print the GPU catalog (Fig. 1)")
    p_cat.set_defaults(fn=_cmd_catalog)

    p_sch = sub.add_parser("schedulers", help="list registered methods")
    p_sch.set_defaults(fn=_cmd_schedulers)

    p_val = sub.add_parser("validate", help="audit FR-OPT vs the exact LP on random instances")
    p_val.add_argument("--instances", type=int, default=50)
    p_val.add_argument("--max-tasks", type=int, default=12)
    p_val.add_argument("--max-machines", type=int, default=5)
    p_val.add_argument("--tolerance", type=float, default=2e-3)
    p_val.add_argument("--thorough", action="store_true", help="use the exhaustive profile polish")
    p_val.add_argument("--seed", type=int, default=0)
    p_val.set_defaults(fn=_cmd_validate)

    p_rep = sub.add_parser("report", help="write the full reproduction report (Markdown)")
    p_rep.add_argument("--out", type=Path, default=Path("reproduction_report.md"))
    p_rep.add_argument("--scale", choices=("smoke", "default", "paper"), default="default")
    p_rep.set_defaults(fn=_cmd_report)

    p_srv = sub.add_parser("serve", help="run the local HTTP scheduling service")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8080)
    p_srv.add_argument(
        "--solver-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request solver wall-clock deadline (503 past it)",
    )
    p_srv.add_argument(
        "--fallback",
        action="store_true",
        help="serve every request through the fallback chain (requested scheduler first)",
    )
    p_srv.add_argument("--max-in-flight", type=int, default=8, help="concurrent solve bound (503 beyond it)")
    p_srv.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="journal every solve's energy here; a restarted server recovers its ledger",
    )
    p_srv.add_argument(
        "--snapshot-every", type=int, default=10, help="snapshot the ledger every N solves"
    )
    p_srv.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SLO target: p99 solve latency (reported on /slo)",
    )
    p_srv.add_argument(
        "--slo-accuracy-floor",
        type=float,
        default=None,
        metavar="ACC",
        help="SLO target: mean served accuracy floor (reported on /slo)",
    )
    p_srv.add_argument(
        "--slo-miss-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="SLO target: max deadline-miss rate (reported on /slo)",
    )
    _add_metrics_arg(p_srv)
    p_srv.set_defaults(fn=_cmd_serve)

    p_clu = sub.add_parser(
        "cluster", help="run the sharded multi-worker serving front-end (see repro.cluster)"
    )
    p_clu.add_argument("--host", default="127.0.0.1")
    p_clu.add_argument("--port", type=int, default=8080)
    p_clu.add_argument("--shards", type=int, default=2, help="number of worker processes")
    p_clu.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="JOULES",
        help="global energy budget B, split into per-shard leases (unbounded if omitted)",
    )
    p_clu.add_argument(
        "--journal-root",
        type=Path,
        default=None,
        metavar="DIR",
        help="per-shard write-ahead energy ledgers under DIR/shard-NN (auditable)",
    )
    p_clu.add_argument("--max-batch", type=int, default=8, help="max requests coalesced per solve window")
    p_clu.add_argument(
        "--max-wait", type=float, default=10.0, metavar="MS", help="max time a request waits for its window"
    )
    p_clu.add_argument(
        "--solver-timeout", type=float, default=None, metavar="SECONDS", help="per-request solver deadline"
    )
    p_clu.add_argument("--fallback", action="store_true", help="serve through the fallback chain")
    p_clu.add_argument("--max-in-flight", type=int, default=4, help="per-shard concurrent solve bound")
    p_clu.add_argument(
        "--rebalance-seconds", type=float, default=2.0, help="period of the lease rebalancer"
    )
    p_clu.add_argument(
        "--queue-target",
        type=float,
        default=None,
        metavar="SECONDS",
        help="adaptive admission: AIMD the admit rate when queue delay exceeds this",
    )
    p_clu.add_argument(
        "--brownout-target",
        type=float,
        default=None,
        metavar="SECONDS",
        help="compression brownout: ladder target for p99 queue delay",
    )
    p_clu.add_argument(
        "--max-queue", type=int, default=1024, help="bounded per-shard request queue"
    )
    p_clu.add_argument(
        "--adaptive-lifo",
        action="store_true",
        help="newest-first dequeue within each priority class under overload",
    )
    p_clu.add_argument(
        "--profile-hz",
        type=float,
        default=19.0,
        metavar="HZ",
        help="per-worker continuous-profiler rate (0 disables /debug/profile sampling)",
    )
    p_clu.set_defaults(fn=_cmd_cluster)

    p_top = sub.add_parser("top", help="live terminal dashboard for a running cluster")
    p_top.add_argument("url", help="cluster front-end base URL (http://host:port)")
    p_top.add_argument("--interval", type=float, default=1.0, help="refresh period (s)")
    p_top.add_argument("--once", action="store_true", help="print one frame and exit (no ANSI)")
    p_top.add_argument(
        "--frames", type=int, default=None, metavar="N", help="exit after N refreshes"
    )
    p_top.set_defaults(fn=_cmd_top)

    p_ben = sub.add_parser("bench", help="serving benchmarks (see repro.cluster.bench)")
    ben_sub = p_ben.add_subparsers(dest="bench_command", required=True)
    p_bsv = ben_sub.add_parser(
        "serve", help="load-generate against one process and an N-shard cluster; write BENCH_serve.json"
    )
    p_bsv.add_argument("--out", type=Path, default=Path("benchmarks/BENCH_serve.json"))
    p_bsv.add_argument("--shards", type=int, default=4, help="cluster size to benchmark")
    p_bsv.add_argument("--duration", type=float, default=5.0, help="seconds of load per side")
    p_bsv.add_argument("--concurrency", type=int, default=8, help="closed-loop client count")
    p_bsv.add_argument(
        "--rate", type=float, default=None, metavar="RPS", help="open-loop Poisson arrivals instead of closed loop"
    )
    p_bsv.add_argument("--scheduler", default="approx")
    p_bsv.add_argument("--tasks", "-n", type=int, default=20, help="tasks per request instance")
    p_bsv.add_argument("--machines", "-m", type=int, default=4, help="machines per request instance")
    p_bsv.add_argument("--beta", type=float, default=0.5, help="energy budget ratio β of the instance")
    p_bsv.add_argument(
        "--budget", type=float, default=None, metavar="JOULES", help="global cluster budget for the run"
    )
    p_bsv.add_argument(
        "--journal-root", type=Path, default=None, metavar="DIR", help="shard ledgers here (enables the audit)"
    )
    p_bsv.add_argument("--max-batch", type=int, default=8)
    p_bsv.add_argument("--max-wait", type=float, default=5.0, metavar="MS")
    p_bsv.add_argument("--seed", type=int, default=0)
    p_bsv.add_argument("--skip-single", action="store_true", help="skip the single-process baseline")
    p_bsv.set_defaults(fn=_cmd_bench_serve)

    p_bov = ben_sub.add_parser(
        "overload",
        help="seeded ramp/spike/sustained overload campaign; write BENCH_overload.json",
    )
    p_bov.add_argument("--out", type=Path, default=Path("benchmarks/BENCH_overload.json"))
    p_bov.add_argument("--shards", type=int, default=2, help="cluster size to stress")
    p_bov.add_argument("--scheduler", default="approx")
    p_bov.add_argument("--tasks", "-n", type=int, default=10, help="tasks per request instance")
    p_bov.add_argument("--machines", "-m", type=int, default=3, help="machines per request instance")
    p_bov.add_argument("--beta", type=float, default=0.5, help="energy budget ratio β of the instance")
    p_bov.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="JOULES",
        help="global cluster budget (default: auto-sized to the campaign when --journal-root is set)",
    )
    p_bov.add_argument(
        "--journal-root", type=Path, default=None, metavar="DIR", help="shard ledgers here (enables the audit)"
    )
    p_bov.add_argument("--seed", type=int, default=0, help="seeds the arrival schedule and priority mix")
    p_bov.add_argument("--calibrate", type=float, default=2.0, metavar="SECONDS", help="capacity calibration burst")
    p_bov.add_argument("--phase-seconds", type=float, default=4.0, help="duration of each load phase")
    p_bov.add_argument("--concurrency", type=int, default=8, help="calibration client count")
    p_bov.add_argument("--deadline", type=float, default=2.0, metavar="SECONDS", help="per-request deadline")
    p_bov.add_argument(
        "--queue-target", type=float, default=0.25, metavar="SECONDS", help="AIMD queue-delay target"
    )
    p_bov.add_argument(
        "--brownout-target", type=float, default=0.5, metavar="SECONDS", help="brownout p99 target"
    )
    p_bov.add_argument(
        "--settle",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="controller relaxation window at recovery start (loaded, unmeasured)",
    )
    p_bov.add_argument(
        "--min-recovery", type=float, default=0.95, help="required post-spike goodput fraction of baseline"
    )
    p_bov.set_defaults(fn=_cmd_bench_overload)

    p_bpr = ben_sub.add_parser(
        "profile",
        help="per-phase wall-time splits + sampler overhead; write BENCH_profile.json",
    )
    p_bpr.add_argument("--out", type=Path, default=Path("benchmarks/BENCH_profile.json"))
    p_bpr.add_argument(
        "--flame", type=Path, default=None, metavar="PATH", help="write a flamegraph HTML of the run"
    )
    p_bpr.add_argument(
        "--speedscope", type=Path, default=None, metavar="PATH", help="write a speedscope JSON profile"
    )
    p_bpr.add_argument(
        "--collapsed", type=Path, default=None, metavar="PATH", help="write collapsed-stack text"
    )
    p_bpr.add_argument("--repeats", type=int, default=3, help="timed repetitions per path")
    p_bpr.add_argument("--hz", type=float, default=19.0, help="sampler rate for the overhead measurement")
    p_bpr.set_defaults(fn=_cmd_bench_profile)

    p_onl = sub.add_parser(
        "online", help="rolling-horizon serving of a Poisson stream (durable with --journal-dir)"
    )
    p_onl.add_argument("--machines", "-m", type=int, default=3)
    p_onl.add_argument("--rate", type=float, default=6.0, help="Poisson arrival rate (req/s)")
    p_onl.add_argument("--horizon", type=float, default=12.0, help="stream length (s)")
    p_onl.add_argument("--window", type=float, default=2.0, help="planning window (s)")
    p_onl.add_argument("--power-cap-fraction", type=float, default=0.5, help="window energy cap (per-window β)")
    p_onl.add_argument(
        "--budget-fraction",
        type=float,
        default=0.35,
        help="global budget B as a fraction of horizon × total power (durable runs)",
    )
    p_onl.add_argument("--scheduler", default="approx", help="planning method (see `schedulers`)")
    p_onl.add_argument("--seed", type=int, default=0)
    p_onl.add_argument("--degrade", action="store_true", help="apply the default degradation policy")
    p_onl.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="run durably: journal + snapshots here, resume an interrupted run",
    )
    p_onl.add_argument("--snapshot-every", type=int, default=5, help="snapshot every N windows")
    _add_metrics_arg(p_onl)
    p_onl.set_defaults(fn=_cmd_online)

    p_cra = sub.add_parser(
        "crashtest", help="crash-injection campaign: kill/recover/resume must be identical"
    )
    p_cra.add_argument("--kills", type=int, default=25, help="random kill points (one forced mid-record)")
    p_cra.add_argument("--seed", type=int, default=0)
    p_cra.add_argument("--machines", "-m", type=int, default=3)
    p_cra.add_argument("--rate", type=float, default=6.0, help="Poisson arrival rate (req/s)")
    p_cra.add_argument("--horizon", type=float, default=10.0, help="stream length (s)")
    p_cra.add_argument("--window", type=float, default=2.0, help="planning window (s)")
    p_cra.add_argument("--scheduler", default="approx")
    p_cra.add_argument("--snapshot-every", type=int, default=2, help="snapshot every N windows")
    p_cra.add_argument("--no-degrade", action="store_true", help="disable the degradation policy")
    p_cra.add_argument("--workdir", type=Path, default=None, help="keep campaign artifacts here")
    p_cra.add_argument("--verbose", "-v", action="store_true", help="print per-kill progress")
    p_cra.set_defaults(fn=_cmd_crashtest)

    p_cha = sub.add_parser(
        "chaos", help="deterministic cluster fault injection (see repro.chaos)"
    )
    cha_sub = p_cha.add_subparsers(dest="chaos_command", required=True)
    p_csk = cha_sub.add_parser(
        "soak", help="run N seeded chaos campaigns and certify the budget/liveness invariants"
    )
    p_csk.add_argument("--shards", type=int, default=2, help="cluster size per campaign")
    p_csk.add_argument("--seeds", type=int, default=3, help="number of campaigns (seeds seed..seed+N-1)")
    p_csk.add_argument("--seed", type=int, default=0, help="first campaign seed")
    p_csk.add_argument(
        "--seed-list", type=int, nargs="+", default=None, metavar="S", help="explicit campaign seeds (overrides --seeds/--seed)"
    )
    p_csk.add_argument("--budget", type=float, default=150_000.0, metavar="JOULES", help="global budget B per campaign")
    p_csk.add_argument("--requests", type=int, default=30, help="solve requests per campaign")
    p_csk.add_argument("--events", type=int, default=6, help="planned faults per campaign")
    p_csk.add_argument("--max-op", type=int, default=12, help="latest trigger point (per-site operation count)")
    p_csk.add_argument("--scheduler", default="approx")
    p_csk.add_argument(
        "--request-timeout", type=float, default=10.0, metavar="SECONDS", help="per-request cluster timeout"
    )
    p_csk.add_argument(
        "--min-resolve-rate", type=float, default=0.99, help="required fraction of requests resolving (result or 503)"
    )
    p_csk.add_argument(
        "--out", type=Path, default=None, metavar="DIR", help="keep campaign artifacts here (default: temp dir)"
    )
    p_csk.set_defaults(fn=_cmd_chaos_soak)
    p_ctl = cha_sub.add_parser("timeline", help="print a seed's planned fault timeline")
    p_ctl.add_argument("--seed", type=int, default=0)
    p_ctl.add_argument("--shards", type=int, default=2)
    p_ctl.add_argument("--events", type=int, default=6)
    p_ctl.add_argument("--max-op", type=int, default=12)
    p_ctl.set_defaults(fn=_cmd_chaos_timeline)

    p_rob = sub.add_parser("robustness", help="failure-injection sweeps (outage / slowdown)")
    p_rob.add_argument("--sweep", choices=("outage", "slowdown"), required=True)
    p_rob.add_argument("--tasks", "-n", type=int, default=50, help="tasks per instance")
    p_rob.add_argument("--machines", "-m", type=int, default=3, help="machines per instance")
    p_rob.add_argument("--beta", type=float, default=0.5, help="energy budget ratio β")
    p_rob.add_argument("--repetitions", type=int, default=5)
    p_rob.add_argument("--seed", type=int, default=2024)
    p_rob.add_argument("--out", type=Path, default=None, help="also write the table as CSV")
    p_rob.set_defaults(fn=_cmd_robustness)

    p_res = sub.add_parser(
        "resilience", help="online-serving outage demo: stale plan vs failure-aware replanning"
    )
    p_res.add_argument("--machines", "-m", type=int, default=3)
    p_res.add_argument("--rate", type=float, default=6.0, help="Poisson arrival rate (req/s)")
    p_res.add_argument("--horizon", type=float, default=12.0, help="stream length (s)")
    p_res.add_argument("--window", type=float, default=2.0, help="planning window (s)")
    p_res.add_argument(
        "--outage-at", type=float, default=0.4, help="outage instant as a fraction of the horizon"
    )
    p_res.add_argument("--scheduler", default="approx", help="planning method (see `schedulers`)")
    p_res.add_argument("--seed", type=int, default=7)
    p_res.add_argument("--out", type=Path, default=None, help="also write the table as CSV")
    _add_metrics_arg(p_res)
    p_res.set_defaults(fn=_cmd_resilience)

    p_tel = sub.add_parser("telemetry", help="inspect a metrics file written by --metrics-out")
    p_tel.add_argument("path", type=Path, help="metrics file (.jsonl/.csv/.prom)")
    p_tel.add_argument(
        "--format",
        choices=("jsonl", "csv", "prometheus"),
        default=None,
        help="override format detection by suffix",
    )
    p_tel.add_argument("--spans", type=int, default=None, help="show at most N spans")
    p_tel.set_defaults(fn=_cmd_telemetry)

    p_trc = sub.add_parser(
        "trace", help="export request traces as Perfetto trace_event JSON or an HTML timeline"
    )
    p_trc.add_argument(
        "source",
        help="metrics file written by --metrics-out, or a server base URL (http://host:port)",
    )
    p_trc.add_argument("--trace-id", default=None, help="trace to extract (required for a server source)")
    p_trc.add_argument("--list", action="store_true", help="list the trace ids in the source and exit")
    p_trc.add_argument("--out", type=Path, default=None, metavar="PATH", help="write trace_event JSON here")
    p_trc.add_argument("--html", type=Path, default=None, metavar="PATH", help="write an HTML timeline here")
    p_trc.add_argument(
        "--format",
        choices=("jsonl", "csv", "prometheus"),
        default=None,
        help="override file-format detection by suffix",
    )
    p_trc.set_defaults(fn=_cmd_trace)

    p_slo = sub.add_parser(
        "slo", help="evaluate SLO targets on a metrics file; replay a journal through the burn monitor"
    )
    p_slo.add_argument("path", nargs="?", type=Path, default=None, help="metrics file (.jsonl/.csv/.prom)")
    p_slo.add_argument("--p99", type=float, default=None, metavar="SECONDS", help="p99 solve latency target")
    p_slo.add_argument("--accuracy-floor", type=float, default=None, metavar="ACC", help="mean accuracy floor")
    p_slo.add_argument(
        "--miss-rate", type=float, default=None, metavar="FRACTION", help="max deadline-miss rate"
    )
    p_slo.add_argument(
        "--queue-delay-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="max p99 cluster queue sojourn (frontend_queue_delay_seconds)",
    )
    p_slo.add_argument(
        "--latency-span", default="server.solve", help="span name measured for the latency SLO"
    )
    p_slo.add_argument(
        "--format",
        choices=("jsonl", "csv", "prometheus"),
        default=None,
        help="override file-format detection by suffix",
    )
    p_slo.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="replay this durability journal's energy ledger through the burn-rate monitor",
    )
    p_slo.add_argument("--budget", type=float, default=None, metavar="JOULES", help="energy budget B for the replay")
    p_slo.add_argument(
        "--horizon", type=float, default=None, metavar="SECONDS", help="horizon the budget must last"
    )
    p_slo.set_defaults(fn=_cmd_slo)

    p_lnt = sub.add_parser(
        "lint", help="domain-aware static analysis (units, concurrency, invariants)"
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p_lnt)
    p_lnt.set_defaults(fn=_cmd_lint)

    p_exp = sub.add_parser(
        "explain", help="decision provenance: why each task got its compression level"
    )
    _add_instance_args(p_exp)
    p_exp.add_argument(
        "--scheduler",
        default="lp",
        help="method to explain; 'lp' (default) uses exact shadow prices",
    )
    p_exp.add_argument(
        "--duals",
        action="store_true",
        help="with a non-LP scheduler, still price constraints with the LP's duals",
    )
    p_exp.add_argument("--load", type=Path, default=None, help="load the instance from a JSON file instead of generating")
    p_exp.add_argument("--json", action="store_true", help="emit the report as JSON")
    p_exp.set_defaults(fn=_cmd_explain)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.fn(args))
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
