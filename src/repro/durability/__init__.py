"""Crash-safe journaling, snapshot/restore, and deterministic recovery.

The serving stack's answer to the question PR 2 left open: machines can
fail and the planner survives — but what if the *planner process* dies?
Without durable state, every buffered request, realised share and spent
joule vanishes, and a restarted planner that forgets realised spend
silently violates the paper's global energy budget ``B``.

Four parts, layered:

* :mod:`~repro.durability.journal` — an append-only write-ahead log
  (length+checksum-framed JSONL, fsync policy, atomic segment rotation,
  torn-tail truncation on open);
* :mod:`~repro.durability.snapshot` — periodic atomic checkpoints
  (write-temp + fsync + rename) bounding recovery time;
* :mod:`~repro.durability.recovery` — snapshot + journal-suffix replay,
  plus certification of the recovered state (spend ≤ ``B``, cumulative
  ledger consistent, deadline-prefix and work-cap invariants);
* :mod:`~repro.durability.crashtest` — the adversarial proof: kill a
  run at arbitrary journal bytes (mid-record included), recover, resume,
  and demand bit-identical outcomes.

:class:`~repro.durability.run.DurableRun` ties them into a resumable
rolling-horizon serving loop;
:meth:`repro.online.planner.RollingHorizonPlanner.run_durable`,
:class:`~repro.simulator.online_sim.OnlineSimulation` (``journal=``)
and ``repro serve --journal-dir`` wire it through the stack.
"""

from .crashtest import CrashTestConfig, CrashTestResult, KillOutcome, run_crash_test
from .journal import (
    FSYNC_POLICIES,
    JournalWriter,
    decode_stream,
    encode_record,
    journal_segments,
    read_events,
    repair,
)
from .recovery import RecoveredState, audit, certify, recover
from .run import DurableReport, DurableRun, DurableWindow
from .snapshot import SnapshotStore

__all__ = [
    "FSYNC_POLICIES",
    "JournalWriter",
    "encode_record",
    "decode_stream",
    "read_events",
    "repair",
    "journal_segments",
    "SnapshotStore",
    "RecoveredState",
    "recover",
    "audit",
    "certify",
    "DurableWindow",
    "DurableReport",
    "DurableRun",
    "CrashTestConfig",
    "KillOutcome",
    "CrashTestResult",
    "run_crash_test",
]
