"""Crash-injection harness: kill a run at any journal byte, prove recovery.

The only credible evidence for crash-safety is adversarial: take a
reference run, simulate a crash at an *arbitrary byte offset* of its
write-ahead log (including mid-record torn writes), recover, resume,
and demand the resumed run be **identical** to the uninterrupted one —
window by window, bit by bit — while never exceeding the energy budget
``B``.  :func:`run_crash_test` automates that over many random kill
points; ``repro crashtest`` exposes it on the CLI and CI runs it as a
smoke test.

A kill at offset ``k`` is simulated by truncating the journal's segment
files to their first ``k`` bytes (later segments vanish entirely) and
keeping only snapshots that were on disk by then — exactly the disk
state an ill-timed ``kill -9`` leaves behind under the journal's
append-then-apply discipline.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Union

from ..algorithms.registry import make_scheduler
from ..hardware import sample_uniform_cluster
from ..resilience.degrade import DegradationPolicy
from ..telemetry import get_collector
from ..utils.rng import ensure_rng
from ..utils.validation import check_positive, require
from ..workloads.arrivals import PoissonArrivals
from .journal import decode_stream, journal_segments
from .recovery import certify, recover
from .run import DurableRun
from .snapshot import SnapshotStore

__all__ = ["CrashTestConfig", "KillOutcome", "CrashTestResult", "run_crash_test"]


@dataclass(frozen=True)
class CrashTestConfig:
    """Parameters of one crash-injection campaign."""

    kills: int = 25  #: random kill points (one is forced mid-record)
    seed: int = 0
    machines: int = 3
    rate: float = 6.0  #: Poisson arrival rate (req/s)
    horizon: float = 10.0  #: stream length (s)
    window_seconds: float = 2.0
    power_cap_fraction: float = 0.5
    budget_fraction: float = 0.35  #: B as a fraction of horizon × total power
    scheduler: str = "approx"
    snapshot_every: int = 2
    degrade: bool = True  #: apply the default degradation policy

    def __post_init__(self) -> None:
        require(self.kills >= 1, f"kills must be >= 1, got {self.kills}")
        check_positive(self.rate, "rate")
        check_positive(self.horizon, "horizon")


@dataclass(frozen=True)
class KillOutcome:
    """What one simulated crash + recovery + resume produced."""

    offset: int  #: journal byte offset the process "died" at
    mid_record: bool  #: the kill tore a record in half
    records_recovered: int  #: committed records surviving in the prefix
    passed: bool
    error: Optional[str] = None


@dataclass(frozen=True)
class CrashTestResult:
    """Outcome of a whole campaign."""

    config: CrashTestConfig
    journal_bytes: int  #: reference journal size (the kill space)
    reference_windows: int
    reference_energy: float
    energy_budget: float
    outcomes: tuple = ()

    @property
    def n_kills(self) -> int:
        return len(self.outcomes)

    @property
    def n_passed(self) -> int:
        return sum(o.passed for o in self.outcomes)

    @property
    def passed(self) -> bool:
        return self.n_passed == self.n_kills

    def summary(self) -> str:
        lines = [
            f"crash test: {self.n_passed}/{self.n_kills} kills recovered identically "
            f"(journal {self.journal_bytes} bytes, {self.reference_windows} windows, "
            f"energy {self.reference_energy:.1f} J <= budget {self.energy_budget:.1f} J)"
        ]
        for outcome in self.outcomes:
            if not outcome.passed:
                lines.append(
                    f"  FAIL at byte {outcome.offset}"
                    f"{' (mid-record)' if outcome.mid_record else ''}: {outcome.error}"
                )
        return "\n".join(lines)


def _truncate_journal(source: Path, target: Path, offset: int) -> int:
    """Write the first ``offset`` journal bytes of ``source`` into ``target``.

    Returns the number of complete records surviving the cut.
    """
    target.mkdir(parents=True, exist_ok=True)
    remaining = offset
    records = 0
    for segment in journal_segments(source):
        if remaining <= 0:
            break
        data = segment.read_bytes()
        take = min(len(data), remaining)
        # Simulating the crash: the torn, non-atomic write is the test.
        (target / segment.name).write_bytes(data[:take])  # repro: noqa[RL003]
        records += len(decode_stream(data[:take])[0])
        remaining -= take
    return records


def _copy_eligible_snapshots(source: Path, target: Path, max_records: int) -> int:
    """Copy snapshots that existed on disk by the kill point."""
    store = SnapshotStore(source)
    copied = 0
    for path in store.paths():
        try:
            document = store.load(path)
        except (OSError, ValueError):
            continue
        if document["journal_records"] <= max_records:
            shutil.copy2(path, target / path.name)
            copied += 1
    return copied


def run_crash_test(
    config: Optional[CrashTestConfig] = None,
    *,
    workdir: Optional[Union[str, Path]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CrashTestResult:
    """Run the full campaign; see the module docstring for the protocol."""
    config = config or CrashTestConfig()
    say = progress or (lambda _msg: None)
    base = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp(prefix="repro-crashtest-"))
    base.mkdir(parents=True, exist_ok=True)
    tele = get_collector()

    cluster = sample_uniform_cluster(config.machines, seed=config.seed)
    requests = PoissonArrivals(config.rate, seed=config.seed + 1).generate(config.horizon)
    budget = config.budget_fraction * config.horizon * cluster.total_power
    degradation = DegradationPolicy.default() if config.degrade else None

    def make_run(directory: Path) -> DurableRun:
        return DurableRun(
            cluster,
            make_scheduler(config.scheduler),
            directory,
            window_seconds=config.window_seconds,
            power_cap_fraction=config.power_cap_fraction,
            energy_budget=budget,
            degradation=degradation,
            snapshot_every=config.snapshot_every,
            fsync="never",  # crashes are simulated by byte truncation
            meta={"seed": config.seed, "rate": config.rate, "horizon": config.horizon},
        )

    reference_dir = base / "reference"
    say(f"reference run ({len(requests)} requests) -> {reference_dir}")
    reference = make_run(reference_dir).run(requests)
    segments = journal_segments(reference_dir)
    stream = b"".join(p.read_bytes() for p in segments)
    total = len(stream)
    require(
        total > config.kills + 1,
        f"reference journal ({total} bytes) is too small for {config.kills} distinct kill points",
    )

    # Kill offsets: uniform over the journal, plus one guaranteed torn
    # write — a cut inside some record's payload near the middle.
    rng = ensure_rng(config.seed + 2)
    record_starts = _record_offsets(stream)
    middle = record_starts[len(record_starts) // 2]
    torn = min(middle + 25, total - 1)  # inside that record's payload
    offsets = {torn}
    while len(offsets) < config.kills:
        offsets.add(int(rng.integers(1, total)))
    outcomes: List[KillOutcome] = []
    for i, offset in enumerate(sorted(offsets)):
        kill_dir = base / f"kill-{i:03d}"
        mid_record = offset not in record_starts and offset != total
        error: Optional[str] = None
        try:
            records = _truncate_journal(reference_dir, kill_dir, offset)
            _copy_eligible_snapshots(reference_dir, kill_dir, records)
            state = certify(recover(kill_dir), budget=budget)
            resumed = make_run(kill_dir).run(requests)
            if not resumed.same_outcome(reference):
                error = (
                    f"resumed run diverged: {resumed.replayed_windows} replayed, "
                    f"{len(resumed.windows)} vs {len(reference.windows)} windows, "
                    f"energy {resumed.total_energy!r} vs {reference.total_energy!r}"
                )
            elif resumed.total_energy > budget * (1 + 1e-9):
                error = f"resumed energy {resumed.total_energy!r} exceeds budget {budget!r}"
            passed = error is None
            outcomes.append(
                KillOutcome(
                    offset=offset,
                    mid_record=mid_record,
                    records_recovered=state.total_records,
                    passed=passed,
                    error=error,
                )
            )
        except Exception as exc:  # noqa: BLE001 — harness boundary: report, don't die
            outcomes.append(
                KillOutcome(offset=offset, mid_record=mid_record, records_recovered=0, passed=False, error=f"{type(exc).__name__}: {exc}")
            )
        say(f"kill {i + 1}/{config.kills} at byte {offset}: {'ok' if outcomes[-1].passed else 'FAIL'}")

    tele.counter("crashtest_kills_total").add(len(outcomes))
    tele.counter("crashtest_failures_total").add(sum(not o.passed for o in outcomes))
    return CrashTestResult(
        config=config,
        journal_bytes=total,
        reference_windows=len(reference.windows),
        reference_energy=reference.total_energy,
        energy_budget=budget,
        outcomes=tuple(outcomes),
    )


def _record_offsets(stream: bytes) -> List[int]:
    """Byte offsets where each committed record starts."""
    offsets: List[int] = []
    position = 0
    _, valid = decode_stream(stream)
    while position < valid:
        offsets.append(position)
        length = int(stream[position : position + 8], 16)
        position += 18 + length + 1  # header + payload + newline
    return offsets
