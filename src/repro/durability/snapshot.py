"""Periodic atomic snapshots of durable-run state.

Replaying a long journal from record zero is correct but slow;
checkpoints bound recovery time.  A snapshot is one JSON document
holding the run's accumulated state *plus* the journal position it
covers (``journal_records``) — recovery loads the newest usable
snapshot and replays only the journal suffix past it.

Writes go through :func:`repro.utils.atomic_write` (write-temp + fsync
+ rename), so a crash mid-snapshot leaves the previous snapshot intact
and never a truncated one under a valid name.  Snapshots are
self-describing (``format``/``version`` header, like
:mod:`repro.core.serialization`) and loaders reject unknown versions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..telemetry import get_collector
from ..utils.errors import ValidationError
from ..utils.fileio import atomic_write
from ..utils.validation import check_nonnegative, require

__all__ = ["SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "SnapshotStore"]

SNAPSHOT_FORMAT = "repro.snapshot"
SNAPSHOT_VERSION = 1
_PREFIX = "snapshot-"

#: Histogram buckets for snapshot write latency (seconds).
_DURATION_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class SnapshotStore:
    """Atomic snapshot files ``snapshot-<seq>.json`` in one directory."""

    def __init__(self, directory: Union[str, Path], *, keep: int = 2, fsync: bool = True):
        require(keep >= 1, f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)
        self.fsync = bool(fsync)
        self.directory.mkdir(parents=True, exist_ok=True)

    def paths(self) -> List[Path]:
        """Snapshot files in sequence order."""
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.name.startswith(_PREFIX) and p.suffix == ".json"
        )

    def _next_sequence(self) -> int:
        paths = self.paths()
        if not paths:
            return 1
        return int(paths[-1].name[len(_PREFIX) : -len(".json")]) + 1

    def save(self, state: Dict[str, Any], *, journal_records: int) -> Path:
        """Persist ``state`` covering the first ``journal_records`` records."""
        check_nonnegative(journal_records, "journal_records")
        document = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "journal_records": int(journal_records),
            "state": state,
        }
        path = self.directory / f"{_PREFIX}{self._next_sequence():08d}.json"
        start = time.perf_counter()
        atomic_write(path, json.dumps(document, sort_keys=True), fsync=self.fsync)
        tele = get_collector()
        tele.histogram("snapshot_duration_seconds", buckets=_DURATION_BUCKETS).observe(
            time.perf_counter() - start
        )
        tele.counter("snapshots_written_total").inc()
        self.prune()
        return path

    def prune(self) -> int:
        """Drop all but the newest ``keep`` snapshots; returns how many."""
        paths = self.paths()
        stale = paths[: -self.keep] if len(paths) > self.keep else []
        for path in stale:
            path.unlink(missing_ok=True)
        return len(stale)

    def load(self, path: Union[str, Path]) -> Dict[str, Any]:
        """Read one snapshot document, validating its header."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("format") != SNAPSHOT_FORMAT:
            raise ValidationError(f"{path}: not a {SNAPSHOT_FORMAT} document")
        if data.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"{path}: unsupported snapshot version {data.get('version')!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        return data

    def latest(self, *, max_journal_records: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """The newest loadable snapshot, or ``None``.

        ``max_journal_records`` skips snapshots claiming to cover more
        journal records than actually exist (possible when a journal was
        truncated by a crash after the snapshot was written) — recovery
        must then fall back to an older snapshot or a full replay.
        Unreadable or torn candidates are skipped, not fatal: the
        journal alone is always sufficient.
        """
        for path in reversed(self.paths()):
            try:
                document = self.load(path)
            except (OSError, ValueError):
                continue  # half-written by a crash without atomic_write, or foreign
            if (
                max_journal_records is not None
                and document["journal_records"] > max_journal_records
            ):
                continue
            return document
        return None
