"""Append-only write-ahead event log (the serving stack's WAL).

Every state change of a durable run — request arrivals, window plans,
realised shares, failures, degradation-level changes, cumulative energy
spend — is appended here *before* it takes effect, so a crash at any
byte offset loses at most the record being written.

Record framing
--------------
One record per line::

    <length:8 hex> <crc32:8 hex> <compact JSON payload>\\n

``length`` is the byte length of the payload, ``crc32`` its checksum
(:func:`zlib.crc32`).  Compact JSON with ``ensure_ascii`` never contains
a raw newline, so lines frame records unambiguously while the file stays
grep-able JSONL.  The fixed-width header makes *any* byte-level
truncation detectable: a torn tail fails the length check, the checksum,
or the terminating newline, and :func:`repair` truncates it away on
open.  Invalid bytes *followed by further valid records* are not a torn
tail — that is corruption, and reading raises
:class:`~repro.utils.errors.JournalCorruptError` rather than silently
dropping committed history.

Segments
--------
A journal is a directory of segment files ``wal-<n>.log`` written in
order.  Rotation is atomic: the full segment is fsynced and closed, then
the next is created exclusively and the directory entry fsynced — a
crash between the two steps just means the next open re-creates the
empty segment.

fsync policy
------------
``fsync="always"`` (default) syncs after every append — each committed
record survives power loss.  ``"rotate"`` syncs only on rotation/close
(group commit; a crash may lose the current segment's tail records but
never corrupts earlier ones).  ``"never"`` leaves flushing to the OS —
for tests and throwaway runs.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..telemetry import get_collector
from ..utils.errors import JournalCorruptError, ValidationError
from ..utils.fileio import fsync_directory
from ..utils.validation import require

__all__ = [
    "FSYNC_POLICIES",
    "SEGMENT_PREFIX",
    "encode_record",
    "decode_stream",
    "JournalWriter",
    "read_events",
    "repair",
    "journal_segments",
]

FSYNC_POLICIES = ("always", "rotate", "never")
SEGMENT_PREFIX = "wal-"
_HEADER_LEN = 18  # "xxxxxxxx xxxxxxxx "
_HEX = frozenset(b"0123456789abcdef")


def encode_record(event: Dict[str, Any]) -> bytes:
    """Frame one event as a length+checksum JSONL record."""
    payload = json.dumps(event, separators=(",", ":"), sort_keys=True).encode("ascii")
    return b"%08x %08x " % (len(payload), zlib.crc32(payload)) + payload + b"\n"


def decode_stream(data: bytes) -> Tuple[List[Dict[str, Any]], int]:
    """Decode consecutive valid records from ``data``.

    Returns ``(events, consumed)`` where ``consumed`` is the byte offset
    just past the last valid record.  Decoding stops at the first
    malformed frame (bad header, length mismatch, checksum failure or
    missing newline) — by construction any byte-level prefix of a valid
    journal decodes to a prefix of its events.
    """
    events: List[Dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset < total:
        header = data[offset : offset + _HEADER_LEN]
        if len(header) < _HEADER_LEN or header[8:9] != b" " or header[17:18] != b" ":
            break
        length_hex, crc_hex = header[:8], header[9:17]
        # int() tolerates signs and whitespace; frame fields are bare hex.
        if not (_HEX.issuperset(length_hex) and _HEX.issuperset(crc_hex)):
            break
        length = int(length_hex, 16)
        crc = int(crc_hex, 16)
        end = offset + _HEADER_LEN + length
        if end + 1 > total or data[end : end + 1] != b"\n":
            break
        payload = data[offset + _HEADER_LEN : end]
        if zlib.crc32(payload) != crc:
            break
        try:
            event = json.loads(payload)
        except ValueError:
            break
        if not isinstance(event, dict):
            break
        events.append(event)
        offset = end + 1
    return events, offset


def journal_segments(directory: Union[str, Path]) -> List[Path]:
    """The journal's segment files, in write order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(p for p in directory.iterdir() if p.name.startswith(SEGMENT_PREFIX) and p.suffix == ".log")


def _segment_path(directory: Path, index: int) -> Path:
    return directory / f"{SEGMENT_PREFIX}{index:08d}.log"


def _check_tail_is_torn(data: bytes, consumed: int, path: Path) -> None:
    """Distinguish a torn tail (repairable) from mid-file corruption.

    If the bytes past the first invalid frame still contain a valid
    record after the next newline, committed history follows the damage
    — refusing is the only safe answer.
    """
    rest = data[consumed:]
    newline = rest.find(b"\n")
    while newline != -1:
        events, _ = decode_stream(rest[newline + 1 :])
        if events:
            raise JournalCorruptError(
                f"{path}: invalid record at byte {consumed} is followed by valid records — "
                "this is corruption, not a torn tail; refusing to repair"
            )
        newline = rest.find(b"\n", newline + 1)


def repair(directory: Union[str, Path]) -> int:
    """Truncate the torn tail of the journal's last segment, in place.

    Returns the number of bytes dropped (0 for a clean journal).  A
    non-final segment with a torn tail, or invalid bytes followed by
    valid records, raises :class:`JournalCorruptError`.
    """
    segments = journal_segments(directory)
    dropped = 0
    for i, segment in enumerate(segments):
        data = segment.read_bytes()
        _, consumed = decode_stream(data)
        if consumed == len(data):
            continue
        _check_tail_is_torn(data, consumed, segment)
        if i != len(segments) - 1:
            raise JournalCorruptError(
                f"{segment}: torn tail in a non-final segment (later segments exist) — "
                "refusing to repair"
            )
        dropped = len(data) - consumed
        with segment.open("r+b") as fh:
            fh.truncate(consumed)
            fh.flush()
            os.fsync(fh.fileno())
    return dropped


def read_events(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """All committed events across segments, torn tail (if any) excluded.

    Tolerates exactly the damage a crash can cause — a truncated last
    segment; anything else raises :class:`JournalCorruptError`.
    """
    events: List[Dict[str, Any]] = []
    segments = journal_segments(directory)
    for i, segment in enumerate(segments):
        data = segment.read_bytes()
        decoded, consumed = decode_stream(data)
        if consumed != len(data):
            _check_tail_is_torn(data, consumed, segment)
            if i != len(segments) - 1:
                raise JournalCorruptError(f"{segment}: torn tail in a non-final segment")
        events.extend(decoded)
    return events


class JournalWriter:
    """Single-writer append handle over a journal directory.

    Opening an existing journal first repairs its torn tail (crash
    recovery), then appends to the last segment — a resumed run
    continues the same history.  Not thread-safe: one writer per journal
    directory, by design (it is a WAL, not a message bus).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync: str = "always",
        segment_max_bytes: int = 1 << 20,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValidationError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        require(segment_max_bytes > 0, f"segment_max_bytes must be > 0, got {segment_max_bytes}")
        self.directory = Path(directory)
        self.fsync_policy = fsync
        self.segment_max_bytes = int(segment_max_bytes)
        self.directory.mkdir(parents=True, exist_ok=True)
        repair(self.directory)
        segments = journal_segments(self.directory)
        self._record_count = sum(len(decode_stream(p.read_bytes())[0]) for p in segments)
        if segments:
            self._segment_index = int(segments[-1].name[len(SEGMENT_PREFIX) : -len(".log")])
            self._fh = segments[-1].open("ab")
        else:
            self._segment_index = 1
            self._fh = _segment_path(self.directory, 1).open("xb")
            fsync_directory(self.directory)

    @property
    def record_count(self) -> int:
        """Records committed to this journal (all segments), so far."""
        return self._record_count

    @property
    def segment_path(self) -> Path:
        """The segment currently being appended to."""
        return _segment_path(self.directory, self._segment_index)

    def append(self, event: Dict[str, Any]) -> int:
        """Append one event; returns its absolute record index."""
        if self._fh.closed:
            raise ValidationError("journal writer is closed")
        record = encode_record(event)
        self._fh.write(record)
        self._fh.flush()
        if self.fsync_policy == "always":
            os.fsync(self._fh.fileno())
        index = self._record_count
        self._record_count += 1
        get_collector().counter("journal_records_total").inc()
        if self._fh.tell() >= self.segment_max_bytes:
            self.rotate()
        return index

    def sync(self) -> None:
        """Force the current segment to stable storage."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def rotate(self) -> Path:
        """Seal the current segment and start the next one atomically."""
        self.sync()
        self._fh.close()
        self._segment_index += 1
        self._fh = _segment_path(self.directory, self._segment_index).open("xb")
        fsync_directory(self.directory)
        get_collector().counter("journal_segments_total").inc()
        return self.segment_path

    def close(self) -> None:
        if not self._fh.closed:
            if self.fsync_policy != "never":
                self.sync()
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"JournalWriter({str(self.directory)!r}, records={self._record_count}, "
            f"segment={self._segment_index}, fsync={self.fsync_policy!r})"
        )
