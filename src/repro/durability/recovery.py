"""Deterministic recovery: latest snapshot + journal-suffix replay.

:func:`recover` rebuilds a durable run's state from its directory: load
the newest usable snapshot (if any), then fold every journal record past
it.  The result is exactly the state the process held when it last
appended a record — realised windows, cumulative energy spend against
the global budget ``B``, and the active degradation level — so a
restarted run *continues* instead of silently forgetting spent joules.

:func:`audit` / :func:`certify` then check the recovered state against
the invariants the paper's model guarantees for an uninterrupted run:

* cumulative energy spend never exceeds ``B`` (at any prefix, not just
  the end);
* the per-window cumulative-spend chain is consistent
  (``cum_k = cum_{k-1} + energy_k``);
* window indices are contiguous from zero — no committed window is
  missing;
* within every window, tasks are deadline-ordered (the EDF prefix
  ordering all schedulers assume) and no task received more work than
  its recorded work cap (the degradation policy's compression bound).

Determinism is the contract that makes all this meaningful: a run
resumed from ``recover()`` replays completed windows from the journal
verbatim and re-solves the rest from the same seeds
(:mod:`repro.utils.rng`), so its final report is bit-identical to an
uninterrupted run — :mod:`repro.durability.crashtest` asserts exactly
that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..telemetry import get_collector
from ..utils.errors import RecoveryError
from .journal import read_events
from .snapshot import SnapshotStore

__all__ = ["RecoveredState", "recover", "audit", "certify"]


@dataclass(frozen=True)
class RecoveredState:
    """Everything a restarted run needs to continue a journaled one."""

    meta: Dict[str, Any]  #: the run_start metadata (scheduler, seed, budget, ...)
    windows: tuple  #: committed window_done payloads, in window order
    energy_spent: float  #: cumulative realised energy (J), the budget's ledger
    degrade_level: int  #: active degradation watermark index (−1: none)
    next_window: int  #: first window index the resumed run must plan
    counts: Dict[str, int] = field(default_factory=dict)  #: replayed events by type
    replayed_records: int = 0  #: journal records folded on top of the snapshot
    total_records: int = 0  #: committed records in the journal overall
    snapshot_records: int = 0  #: records covered by the snapshot used (0: none)

    @property
    def used_snapshot(self) -> bool:
        return self.snapshot_records > 0


def recover(directory: Union[str, Path]) -> RecoveredState:
    """Rebuild run state from a journal directory (snapshot + suffix).

    Torn journal tails are tolerated (the crash case); snapshots that
    claim to cover more records than the journal holds are skipped.  An
    empty or missing journal recovers to the pristine state.
    """
    events = read_events(directory)
    snapshot = SnapshotStore(directory).latest(max_journal_records=len(events))

    windows: List[Dict[str, Any]] = []
    meta: Dict[str, Any] = {}
    cum_energy = 0.0
    level = -1
    base = 0
    if snapshot is not None:
        state = snapshot["state"]
        meta = dict(state.get("meta", {}))
        windows = [dict(w) for w in state.get("windows", [])]
        cum_energy = float(state.get("cum_energy", 0.0))
        level = int(state.get("level", -1))
        base = int(snapshot["journal_records"])

    counts: Dict[str, int] = {}
    seen = {int(w["window"]) for w in windows}
    for event in events[base:]:
        kind = str(event.get("type", "?"))
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "run_start":
            meta = dict(event.get("meta", {}))
        elif kind == "window_done":
            index = int(event["window"])
            if index not in seen:  # duplicates cannot commit twice
                seen.add(index)
                windows.append(dict(event))
            cum_energy = float(event.get("cum_energy", cum_energy))
            level = int(event.get("level", level))
        elif kind == "degrade":
            level = int(event.get("level", level))
        elif kind in ("solve", "energy"):
            cum_energy = float(event.get("cum_energy", cum_energy))

    windows.sort(key=lambda w: int(w["window"]))
    replayed = len(events) - base
    get_collector().counter("recovery_replayed_records").add(replayed)
    return RecoveredState(
        meta=meta,
        windows=tuple(windows),
        energy_spent=cum_energy,
        degrade_level=level,
        next_window=int(windows[-1]["window"]) + 1 if windows else 0,
        counts=counts,
        replayed_records=replayed,
        total_records=len(events),
        snapshot_records=base,
    )


def _tol(reference: float, rel_tol: float) -> float:
    return rel_tol * max(abs(reference), 1.0)


def audit(
    state: RecoveredState, *, budget: Optional[float] = None, rel_tol: float = 1e-9
) -> List[str]:
    """Invariant violations in a recovered state (empty list: certified).

    ``budget`` is the global energy budget ``B``; omitted, it is taken
    from the recovered run metadata when present.
    """
    violations: List[str] = []
    if budget is None:
        budget = state.meta.get("energy_budget")
    if budget is not None and not math.isfinite(float(budget)):
        budget = None

    # A restarted OnlineSimulation charges its predecessor's spend up
    # front; the ledger chain starts there, not at zero.
    previous_cum = float(state.meta.get("initial_energy_spent") or 0.0)
    for position, window in enumerate(state.windows):
        index = int(window["window"])
        label = f"window {index}"
        if index != position:
            violations.append(f"{label}: expected index {position} — committed history has a gap")
        energy = float(window.get("energy", 0.0))
        cum = float(window.get("cum_energy", energy))
        if energy < -_tol(energy, rel_tol):
            violations.append(f"{label}: negative energy {energy!r}")
        if abs(cum - (previous_cum + energy)) > _tol(cum, rel_tol):
            violations.append(
                f"{label}: cumulative-energy chain broken "
                f"({previous_cum!r} + {energy!r} != {cum!r})"
            )
        if budget is not None and cum > float(budget) + _tol(float(budget), rel_tol):
            violations.append(
                f"{label}: cumulative energy {cum!r} exceeds budget {float(budget)!r}"
            )
        previous_cum = cum

        deadlines = window.get("deadlines", [])
        flops = window.get("flops", [])
        caps = window.get("caps", [])
        if any(b < a - rel_tol for a, b in zip(deadlines, deadlines[1:])):
            violations.append(f"{label}: tasks not deadline-ordered (EDF prefix broken)")
        if len(flops) != len(deadlines) or (caps and len(caps) != len(flops)):
            violations.append(f"{label}: per-task arrays disagree in length")
        for j, work in enumerate(flops):
            if work < -rel_tol:
                violations.append(f"{label}: task {j} has negative work {work!r}")
            if caps and j < len(caps) and work > caps[j] + _tol(caps[j], rel_tol):
                violations.append(
                    f"{label}: task {j} work {work!r} exceeds its cap {caps[j]!r}"
                )

    if budget is not None and state.energy_spent > float(budget) + _tol(float(budget), rel_tol):
        violations.append(
            f"recovered energy spend {state.energy_spent!r} exceeds budget {float(budget)!r}"
        )
    return violations


def certify(
    state: RecoveredState, *, budget: Optional[float] = None, rel_tol: float = 1e-9
) -> RecoveredState:
    """Raise :class:`RecoveryError` unless the recovered state is sound."""
    violations = audit(state, budget=budget, rel_tol=rel_tol)
    if violations:
        raise RecoveryError(
            "recovered state failed certification: " + "; ".join(violations)
        )
    return state
