"""A crash-safe, resumable rolling-horizon serving run.

:class:`DurableRun` is the durable counterpart of
:class:`~repro.online.planner.RollingHorizonPlanner`: the same
buffer-per-window serving loop, but every step is journaled to a
write-ahead log *before* it takes effect, state is checkpointed every
few windows, and a restarted run picks up exactly where the crash left
off:

1. arrivals entering a window are journaled (``arrival``);
2. the window's plan intent is journaled (``window_plan``) — a crash
   mid-solve leaves a plan without a commit, and the window is simply
   re-solved on resume;
3. the realised shares, per-task work caps and cumulative energy spend
   are journaled (``window_done``) — only then is the window *committed*;
4. degradation-level changes are journaled (``degrade``) so a restarted
   :class:`~repro.resilience.degrade.DegradationPolicy` resumes at the
   right watermark instead of forgetting the spent budget.

Because planning is deterministic given the instance (all seeds flow
through :mod:`repro.utils.rng` and every scheduler here is
deterministic), a resumed run replays committed windows from the
journal verbatim and re-solves the remainder into *bit-identical*
outcomes — the equivalence :mod:`repro.durability.crashtest` enforces.
JSON round-trips floats exactly (shortest-repr), so replayed energies
and accuracies compare equal with ``==``, not approximately.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.machine import Cluster
from ..core.serialization import cluster_to_dict
from ..telemetry import get_collector
from ..utils.errors import RecoveryError, ValidationError
from ..utils.validation import check_positive, require
from ..workloads.arrivals import Request, window_batches
from ..workloads.generator import tasks_from_thetas
from .journal import JournalWriter
from .recovery import RecoveredState, certify, recover
from .snapshot import SnapshotStore

__all__ = ["DurableWindow", "DurableReport", "DurableRun"]


@dataclass(frozen=True)
class DurableWindow:
    """One committed planning window (solved live or replayed)."""

    index: int
    start: float
    ids: tuple  #: request ids (position in the arrival-sorted stream), EDF order
    accuracies: tuple  #: realised per-request accuracy, EDF order
    flops: tuple  #: realised per-request work, EDF order
    on_time: int
    energy: float
    cum_energy: float  #: cumulative spend *after* this window (the ledger)
    level: int  #: degradation level the window was planned at (−1: none)
    replayed: bool = False  #: restored from the journal rather than solved

    @property
    def n_requests(self) -> int:
        return len(self.ids)

    def _outcome_key(self) -> tuple:
        """Every field that defines the window's outcome, replay-invariant."""
        return (
            self.index,
            self.start,
            self.ids,
            self.accuracies,
            self.flops,
            self.on_time,
            self.energy,
            self.cum_energy,
            self.level,
        )

    def same_outcome(self, other: "DurableWindow") -> bool:
        """Exact outcome equality, ignoring how the window was obtained.

        Deliberately bit-exact on the float fields: deterministic resume
        promises the *identical* result, not a close one — tolerance here
        would mask replay divergence (the bug class crashtest exists for).
        """
        return self._outcome_key() == other._outcome_key()


@dataclass(frozen=True)
class DurableReport:
    """Aggregate outcome of a durable run (possibly spanning restarts)."""

    windows: tuple
    energy_budget: Optional[float]

    @property
    def n_requests(self) -> int:
        return sum(w.n_requests for w in self.windows)

    @property
    def mean_accuracy(self) -> float:
        n = self.n_requests
        if n == 0:
            return 0.0
        return sum(sum(w.accuracies) for w in self.windows) / n

    @property
    def on_time_fraction(self) -> float:
        n = self.n_requests
        if n == 0:
            return 0.0
        return sum(w.on_time for w in self.windows) / n

    @property
    def total_energy(self) -> float:
        return self.windows[-1].cum_energy if self.windows else 0.0

    @property
    def replayed_windows(self) -> int:
        return sum(w.replayed for w in self.windows)

    def same_outcome(self, other: "DurableReport") -> bool:
        """Window-by-window exact equality (the crash-test criterion)."""
        return len(self.windows) == len(other.windows) and all(
            a.same_outcome(b) for a, b in zip(self.windows, other.windows)
        )


class DurableRun:
    """Journaled, snapshotted, resumable window-by-window serving.

    Point it at a journal directory: an empty directory starts a fresh
    run; a directory holding a (possibly crash-truncated) journal is
    recovered, certified against the energy budget, and *continued* —
    committed windows are replayed from the log, the rest are solved.

    Parameters mirror :class:`~repro.online.planner.RollingHorizonPlanner`
    plus the global budget machinery of
    :class:`~repro.simulator.online_sim.OnlineSimulation`:
    ``energy_budget`` caps cumulative spend across *all* windows (and
    restarts — that is the point), ``degradation`` maps spend pressure
    to compression/shedding, ``snapshot_every`` checkpoints state every
    N committed windows, ``fsync`` selects the journal's durability
    barrier (see :class:`~repro.durability.journal.JournalWriter`).
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        journal_dir: Union[str, Path],
        *,
        window_seconds: float = 2.0,
        power_cap_fraction: float = 0.5,
        energy_budget: Optional[float] = None,
        degradation=None,
        snapshot_every: int = 5,
        fsync: str = "always",
        meta: Optional[Dict[str, Any]] = None,
    ):
        check_positive(window_seconds, "window_seconds")
        require(power_cap_fraction > 0, "power_cap_fraction must be > 0")
        require(snapshot_every >= 1, f"snapshot_every must be >= 1, got {snapshot_every}")
        if energy_budget is not None:
            check_positive(energy_budget, "energy_budget")
        if degradation is not None and energy_budget is None:
            raise ValidationError("a degradation policy needs energy_budget to measure pressure against")
        self.cluster = cluster
        self.scheduler = scheduler
        self.journal_dir = Path(journal_dir)
        self.window_seconds = float(window_seconds)
        self.power_cap_fraction = float(power_cap_fraction)
        self.energy_budget = energy_budget
        self.degradation = degradation
        self.snapshot_every = int(snapshot_every)
        self.fsync = fsync
        self.extra_meta = dict(meta or {})

    @property
    def window_budget(self) -> float:
        """Energy grant (J) per window, before global-budget clipping."""
        return self.power_cap_fraction * self.window_seconds * self.cluster.total_power

    def _run_meta(self, n_requests: int) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler.name,
            "window_seconds": self.window_seconds,
            "power_cap_fraction": self.power_cap_fraction,
            "energy_budget": self.energy_budget,
            "n_requests": n_requests,
            "machines": cluster_to_dict(self.cluster),
            "degradation": None if self.degradation is None else self.degradation.to_dict(),
            **self.extra_meta,
        }

    def _check_meta(self, recovered: RecoveredState, n_requests: int) -> None:
        """A resumed run must be the *same* run, or determinism is fiction."""
        expected = self._run_meta(n_requests)
        for key in ("scheduler", "window_seconds", "power_cap_fraction", "energy_budget", "n_requests"):
            have = recovered.meta.get(key)
            if have != expected[key]:
                raise RecoveryError(
                    f"journal was written by a different run: {key} is {have!r}, "
                    f"this run has {expected[key]!r}"
                )

    @staticmethod
    def _replayed_window(data: Dict[str, Any]) -> DurableWindow:
        return DurableWindow(
            index=int(data["window"]),
            start=float(data["start"]),
            ids=tuple(int(i) for i in data["ids"]),
            accuracies=tuple(float(a) for a in data["accuracies"]),
            flops=tuple(float(f) for f in data["flops"]),
            on_time=int(data["on_time"]),
            energy=float(data["energy"]),
            cum_energy=float(data["cum_energy"]),
            level=int(data["level"]),
            replayed=True,
        )

    def run(self, requests: Sequence[Request]) -> DurableReport:
        """Serve the stream durably; resumes automatically from a journal."""
        ordered = sorted(requests, key=lambda r: r.arrival_time)
        ids = {id(r): i for i, r in enumerate(ordered)}
        tele = get_collector()

        with JournalWriter(self.journal_dir, fsync=self.fsync) as journal:
            store = SnapshotStore(self.journal_dir, fsync=self.fsync != "never")
            windows: List[DurableWindow] = []
            window_dicts: List[Dict[str, Any]] = []
            cum_energy = 0.0
            level = -1
            next_window = 0
            meta = self._run_meta(len(ordered))

            if journal.record_count > 0:
                recovered = certify(recover(self.journal_dir), budget=self.energy_budget)
                self._check_meta(recovered, len(ordered))
                windows = [self._replayed_window(w) for w in recovered.windows]
                window_dicts = [dict(w) for w in recovered.windows]
                cum_energy = recovered.energy_spent
                level = recovered.degrade_level
                next_window = recovered.next_window
                journal.append(
                    {
                        "type": "resume",
                        "next_window": next_window,
                        "recovered_records": recovered.total_records,
                        "recovered_energy": cum_energy,
                    }
                )
                tele.counter("durable_resumes_total").inc()
            else:
                journal.append({"type": "run_start", "meta": meta})

            for index, (start, batch) in enumerate(window_batches(ordered, self.window_seconds)):
                if index < next_window:
                    continue  # committed before the crash; replayed above
                window_dict, window = self._plan_window(journal, index, start, batch, ids, cum_energy, level)
                cum_energy = window.cum_energy
                level = window.level
                windows.append(window)
                window_dicts.append(window_dict)
                tele.counter("durable_windows_total").inc()
                if (index + 1) % self.snapshot_every == 0:
                    store.save(
                        {
                            "meta": meta,
                            "windows": window_dicts,
                            "cum_energy": cum_energy,
                            "level": level,
                        },
                        journal_records=journal.record_count,
                    )

            journal.append({"type": "run_end", "windows": len(windows), "cum_energy": cum_energy})
        return DurableReport(tuple(windows), self.energy_budget)

    # -- one window ------------------------------------------------------------

    def _plan_window(
        self,
        journal: JournalWriter,
        index: int,
        start: float,
        batch: List[Request],
        ids: Dict[int, int],
        cum_energy: float,
        previous_level: int,
    ):
        tele = get_collector()
        batch_ids = [ids[id(r)] for r in batch]
        for rid, request in zip(batch_ids, batch):
            journal.append(
                {
                    "type": "arrival",
                    "id": rid,
                    "t": request.arrival_time,
                    "slo": request.slo_seconds,
                    "theta": request.theta_per_tflop,
                }
            )

        deadlines = [max(r.deadline - start, 1e-3) for r in batch]
        thetas = [r.theta_per_tflop for r in batch]
        order = list(np.argsort(deadlines, kind="stable"))
        ordered_ids = [batch_ids[i] for i in order]
        tasks = tasks_from_thetas([thetas[i] for i in order], [deadlines[i] for i in order])

        grant = self.window_budget
        if self.energy_budget is not None:
            grant = min(grant, max(self.energy_budget - cum_energy, 0.0))

        level = previous_level
        scale = 1.0
        kept = np.arange(len(batch))
        zeros = [0.0] * len(batch)
        if grant <= 0.0:
            # Budget exhausted: the window is shed whole, but still
            # committed so the ledger stays contiguous across restarts.
            done = {
                "type": "window_done",
                "window": index,
                "start": start,
                "ids": ordered_ids,
                "thetas": [thetas[i] for i in order],
                "deadlines": [deadlines[i] for i in order],
                "flops": zeros,
                "accuracies": zeros,
                "caps": [float(t.f_max) for t in tasks],
                "shed": ordered_ids,
                "level": level,
                "on_time": 0,
                "energy": 0.0,
                "cum_energy": cum_energy,
            }
            journal.append(done)
            tele.counter("durable_exhausted_windows_total").inc()
            window = DurableWindow(
                index=index,
                start=start,
                ids=tuple(ordered_ids),
                accuracies=(0.0,) * len(batch),
                flops=(0.0,) * len(batch),
                on_time=0,
                energy=0.0,
                cum_energy=cum_energy,
                level=level,
                replayed=False,
            )
            return done, window

        instance = ProblemInstance(tasks, self.cluster, grant)
        if self.degradation is not None:
            spent_fraction = cum_energy / self.energy_budget
            level = self.degradation.level_for(spent_fraction)
            if level != previous_level:
                journal.append(
                    {
                        "type": "degrade",
                        "window": index,
                        "level": level,
                        "work_cap_scale": (
                            self.degradation.watermarks[level].work_cap_scale if level >= 0 else 1.0
                        ),
                    }
                )
            decision = self.degradation.apply(instance, spent_fraction)
            scale = decision.work_cap_scale
            instance, kept = decision.instance, decision.kept

        journal.append(
            {"type": "window_plan", "window": index, "start": start, "ids": ordered_ids, "grant": grant, "level": level}
        )
        with tele.span("durable.window.solve", window=str(index)):
            schedule = self.scheduler.solve(instance)

        flops = schedule.task_flops
        accuracies = schedule.task_accuracies
        completion = schedule.completion_times.max(axis=1)
        planned = {int(k): slot for slot, k in enumerate(kept)}
        full_flops, full_acc = [0.0] * len(batch), [0.0] * len(batch)
        on_time = 0
        for i in range(len(batch)):
            slot = planned.get(i)
            if slot is None:
                continue  # shed by the degradation policy
            full_flops[i] = float(flops[slot])
            full_acc[i] = float(accuracies[slot])
            if full_flops[i] > 0.0 and completion[slot] <= tasks.deadlines[i] + 1e-9:
                on_time += 1
        energy = float(schedule.total_energy)
        done = {
            "type": "window_done",
            "window": index,
            "start": start,
            "ids": ordered_ids,
            "thetas": [thetas[i] for i in order],
            "deadlines": [deadlines[i] for i in order],
            "flops": full_flops,
            "accuracies": full_acc,
            "caps": [float(t.f_max) * scale for t in tasks],
            "shed": [ordered_ids[i] for i in range(len(batch)) if i not in planned],
            "level": level,
            "on_time": on_time,
            "energy": energy,
            "cum_energy": cum_energy + energy,
        }
        journal.append(done)
        window = DurableWindow(
            index=index,
            start=start,
            ids=tuple(ordered_ids),
            accuracies=tuple(full_acc),
            flops=tuple(full_flops),
            on_time=on_time,
            energy=energy,
            cum_energy=cum_energy + energy,
            level=level,
            replayed=False,
        )
        return done, window
