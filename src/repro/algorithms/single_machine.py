"""Algorithm 1 — exact fractional scheduling on one machine.

Greedy over accuracy-function segments in non-increasing slope order:
each segment receives as much processing time as the *tightest following
deadline* allows (paper Alg. 1).  For concave piecewise-linear accuracy
functions this greedy is optimal: the feasible region of cumulative times
is a polymatroid-like nested system (prefix sums bounded by deadlines)
and the objective is separable concave, so steepest-slope-first satisfies
the KKT conditions of Sec. 3.2 (non-increasing marginal gains along the
machine).

An optional ``total_cap`` bounds the total busy time, which is how the
multi-machine algorithm encodes the energy budget as "an additional
deadline" (Sec. 4.1's remark).

Complexity: with ``S`` segments in total, each allocation scans the
following tasks once — ``O(S · n)``; for a constant number of segments
per task this is the paper's ``O(n²)`` (Theorem 1).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..core.segments import SegmentState, order_by_slope
from ..utils.errors import ValidationError
from ..utils.validation import check_positive, check_sorted

__all__ = ["solve_single_machine"]


def solve_single_machine(
    deadlines: Sequence[float],
    speed: float,
    segments: List[SegmentState],
    *,
    total_cap: float = math.inf,
) -> np.ndarray:
    """Optimal fractional per-task times on one machine.

    Parameters
    ----------
    deadlines:
        ``d_j`` per task, non-decreasing (EDF order), seconds.
    speed:
        Machine speed ``s`` (FLOP/s).  Pass ``1.0`` to work directly in
        FLOP units (Algorithm 2's equivalent single machine).
    segments:
        Segment records (mutated: ``used_flops`` is advanced so callers
        can recover each task's granted work and continue refining).
        Segments whose ``used_flops`` is already positive are treated as
        partially processed.
    total_cap:
        Upper bound on ``Σ_j t_j`` (seconds); the energy budget as an
        additional deadline.

    Returns
    -------
    numpy.ndarray
        ``t_j`` processing time per task (seconds).
    """
    deadlines = np.asarray(deadlines, dtype=float)
    check_positive(speed, "speed")
    check_sorted(deadlines, "deadlines")
    if total_cap < 0:
        raise ValidationError(f"total_cap must be >= 0, got {total_cap}")
    n = deadlines.size
    t = np.zeros(n)
    # slack_arr[i] = d_i − Σ_{k≤i} t_k, maintained incrementally: raising
    # t_j lowers the slack of j and every later task by the same amount,
    # so each allocation is one suffix-min plus one suffix-subtract
    # instead of a fresh prefix-sum scan (same O(n²), ~2× the speed).
    slack_arr = deadlines.astype(float, copy=True)
    used_total = 0.0
    for seg in order_by_slope(segments):
        if seg.slope <= 0.0:
            break  # sorted: no further segment can improve accuracy
        j = seg.task_index
        if j >= n:
            raise ValidationError(f"segment references task {j} but only {n} deadlines given")
        wanted = seg.remaining_flops / speed
        if wanted <= 0.0:
            continue
        # Tightest slack among this task and all later ones: raising t_j
        # shifts every following task right (paper Alg. 1 lines 6–7).
        slack = float(slack_arr[j:].min())
        if math.isfinite(total_cap):
            slack = min(slack, total_cap - used_total)
        contribution = min(wanted, max(slack, 0.0))
        if contribution <= 0.0:
            continue
        t[j] += contribution
        slack_arr[j:] -= contribution
        used_total += contribution
        seg.use(contribution * speed)
    return t
