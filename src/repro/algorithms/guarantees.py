"""Performance guarantee of DSCT-EA-APPROX (paper Eqs. (13)–(14)).

Theorem 3 of [5], adapted to the energy-aware setting: the rounded
solution satisfies ``OPT − G ≤ SOL ≤ OPT`` where ``OPT`` is the
fractional optimum and, for piecewise-linear accuracy functions,

``G = m · (a_max − a_min) · (1 + ln(θ_max / θ_min))``.

The paper's notation swaps θ_min/θ_max between definitions; the bound
comes from integrating the upper envelope of marginal gains, which decays
from the steepest first-segment slope to the shallowest last-segment
slope, so we take ``θ_max = max_j`` (first slope of j) and
``θ_min = min_j`` (last positive slope of j), making the ratio ≥ 1 and
the bound monotone in task heterogeneity μ (as Fig. 3 assumes).
"""

from __future__ import annotations

import math

from ..core.instance import ProblemInstance
from ..core.task import TaskSet
from ..utils.errors import ValidationError

__all__ = ["performance_guarantee", "slope_extremes"]


def slope_extremes(tasks: TaskSet) -> tuple[float, float]:
    """(θ_min, θ_max): shallowest last positive slope, steepest first slope."""
    theta_max = max(t.accuracy.first_slope for t in tasks)
    positive_lasts = []
    for t in tasks:
        slopes = [s for s in t.accuracy.slopes if s > 0]
        if slopes:
            positive_lasts.append(min(slopes))
    if not positive_lasts or theta_max <= 0:
        raise ValidationError("guarantee undefined: all accuracy functions are flat")
    return min(positive_lasts), theta_max


def performance_guarantee(instance: ProblemInstance) -> float:
    """Absolute accuracy gap ``G`` of Eq. (14) for this instance."""
    theta_min, theta_max = slope_extremes(instance.tasks)
    a_max = max(t.a_max for t in instance.tasks)
    a_min = min(t.a_min for t in instance.tasks)
    m = instance.n_machines
    return m * (a_max - a_min) * (1.0 + math.log(theta_max / theta_min))
