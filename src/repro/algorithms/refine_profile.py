"""Algorithm 3 — RefineProfile.

The naive energy profile (spend the budget on the most efficient machines
first) is not always optimal: a steep task pinned by its deadline on the
efficient machine may leave accuracy on the table that a less efficient —
but less contended — machine could capture (the paper's Fig. 6b scenario).

RefineProfile repairs this by reallocating *energy* between
(task-segment, machine) pairs, comparing their **accuracy-per-Joule**
``ψ = slope · E_r`` (the energy marginal gain of Sec. 3.2):

* *growth*: while unused budget remains, grant it to the pair with the
  highest ψ that can still grow (deadline slack on its machine, work
  below ``f_max``);
* *transfer*: move energy from the allocated pair with the lowest
  marginal-loss ψ to the growable pair with the highest marginal-gain ψ,
  while the gain strictly exceeds the loss;
* *relocation*: move a task's work (FLOP held constant) from a less to a
  more efficient machine with deadline slack.  Accuracy is unchanged but
  energy is freed — this is the move that lets a task already at
  ``f_max`` vacate budget for others, and the greedy growth phase then
  spends the savings.  Without it the exchange provably stalls (e.g.
  when every other task is work-capped), which we observed against the
  LP on random instances.

Every step saturates one of: the remaining budget, a segment breakpoint,
a deadline slack, or a source allocation — so the loop terminates; each
transfer strictly increases total accuracy, and at a fixed point the KKT
conditions of Sec. 3.2 hold (equal/comparable energy marginal gains,
higher gains on more efficient machines).  Optimality is cross-checked
against the LP relaxation in the test suite.

The implementation works at task granularity with the *current* segment
of each task (marginal gain = slope right of ``f_j``, marginal loss =
slope left of ``f_j``); chunk sizes never cross a breakpoint, so slopes
are exact within each step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance
from ..utils.errors import ValidationError

__all__ = ["RefineResult", "refine_profile", "deadline_slack"]

#: Relative improvement a transfer must achieve to be applied.
_PSI_RTOL = 1e-9
#: Energy chunks below this fraction of the budget scale are ignored.
_ENERGY_RTOL = 1e-12


def deadline_slack(times: np.ndarray, deadlines: np.ndarray) -> np.ndarray:
    """Per-(task, machine) growth headroom ``min_{i≥j}(d_i − Σ_{k≤i} t_kr)``.

    Growing ``t_jr`` by x delays every later task on machine ``r`` by x,
    so the binding constraint is the tightest suffix slack.  Returned
    values are clamped at 0 (an already-tight prefix gives no headroom).
    """
    completion = np.cumsum(times, axis=0)
    gaps = deadlines[:, None] - completion
    # Suffix minimum along tasks: reverse, running-min, reverse.
    suffix_min = np.minimum.accumulate(gaps[::-1], axis=0)[::-1]
    return np.maximum(suffix_min, 0.0)


@dataclass
class RefineResult:
    """Outcome of :func:`refine_profile`."""

    times: np.ndarray
    iterations: int
    converged: bool


def refine_profile(
    instance: ProblemInstance,
    times: np.ndarray,
    *,
    max_iterations: int | None = None,
) -> RefineResult:
    """Refine a feasible fractional solution in place of the naive profile.

    ``times`` is the (n, m) solution of Algorithm 2 (not mutated; a
    refined copy is returned).
    """
    tasks, cluster = instance.tasks, instance.cluster
    n, m = instance.n_tasks, instance.n_machines
    times = np.asarray(times, dtype=float)
    if times.shape != (n, m):
        raise ValidationError(f"times must have shape ({n}, {m}), got {times.shape}")
    t = times.copy()

    speeds = cluster.speeds  # s_r
    powers = cluster.powers  # P_r = s_r / E_r
    effs = cluster.efficiencies  # E_r
    deadlines = tasks.deadlines
    f_caps = tasks.f_max
    budget = instance.budget

    if max_iterations is None:
        # Generous bound: each (task, machine, segment) triple can be
        # saturated a handful of times along the exchange path.
        total_segments = sum(task.accuracy.n_segments for task in tasks)
        max_iterations = 50 * (total_segments * m + n * m + 10)

    if math.isfinite(budget) and budget > 0:
        energy_scale = budget
    else:
        energy_scale = float(t.sum(axis=0) @ powers) or 1.0
    eps_energy = _ENERGY_RTOL * max(energy_scale, 1.0)

    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1

        flops = t @ speeds
        gains = np.empty(n)
        losses = np.empty(n)
        next_room = np.empty(n)  # FLOP to the next breakpoint (gain side)
        prev_room = np.empty(n)  # FLOP above the previous breakpoint (loss side)
        for j, task in enumerate(tasks):
            acc = task.accuracy
            f = min(max(flops[j], 0.0), acc.f_max)
            # Snap to a breakpoint when within float dust of one: otherwise
            # a residual ~1e-16·f_max of room pins the pair in the current
            # segment with an effectively zero growth capacity and the
            # exchange stalls one segment short of optimal.
            bp = acc.breakpoints
            eps_f = 1e-9 * acc.f_max
            k_near = int(np.searchsorted(bp, f))
            for k_cand in (k_near - 1, k_near):
                if 0 <= k_cand < bp.size and abs(f - bp[k_cand]) <= eps_f:
                    f = float(bp[k_cand])
                    break
            gains[j] = acc.marginal_gain(f)
            losses[j] = acc.marginal_loss(f)
            if f >= acc.f_max:
                next_room[j] = 0.0
            else:
                k = acc.segment_index(f)
                next_room[j] = acc.breakpoints[k + 1] - f
            if f <= 0.0:
                prev_room[j] = 0.0
            else:
                bp = acc.breakpoints
                k = int(np.searchsorted(bp, f, side="left")) - 1
                k = min(max(k, 0), acc.n_segments - 1)
                prev_room[j] = f - bp[k]

        slack = deadline_slack(t, deadlines)

        # Energy headroom of every growable pair; ψ of the growth.
        grow_energy = np.minimum(slack * powers[None, :], next_room[:, None] / effs[None, :])
        psi_grow = gains[:, None] * effs[None, :]
        growable = (grow_energy > eps_energy) & (psi_grow > 0.0)

        # Energy recoverable from every allocated pair; ψ of the loss.
        shrink_energy = np.minimum(t * powers[None, :], prev_room[:, None] / effs[None, :])
        psi_shrink = losses[:, None] * effs[None, :]
        shrinkable = shrink_energy > eps_energy

        used_energy = float(t.sum(axis=0) @ powers)
        unused = math.inf if math.isinf(budget) else budget - used_energy

        moved = False

        if unused > eps_energy and np.any(growable):
            # Growth phase: spend free budget on the best pair.
            masked = np.where(growable, psi_grow, -np.inf)
            j, r = np.unravel_index(int(np.argmax(masked)), masked.shape)
            delta_e = min(unused, float(grow_energy[j, r]))
            if delta_e > eps_energy:
                t[j, r] += delta_e / powers[r]
                moved = True

        if not moved and np.any(growable) and np.any(shrinkable):
            # Transfer phase: best growth vs cheapest shrink, excluding the
            # self-pair (shrinking and regrowing the same (j, r) is a no-op).
            masked_g = np.where(growable, psi_grow, -np.inf)
            jg, rg = np.unravel_index(int(np.argmax(masked_g)), masked_g.shape)
            masked_s = np.where(shrinkable, psi_shrink, np.inf)
            masked_s[jg, rg] = np.inf
            js, rs = np.unravel_index(int(np.argmin(masked_s)), masked_s.shape)
            psi_g = float(psi_grow[jg, rg])
            psi_s = float(masked_s[js, rs])
            if math.isfinite(psi_s) and psi_g > psi_s * (1.0 + _PSI_RTOL) + _PSI_RTOL:
                delta_e = min(float(grow_energy[jg, rg]), float(shrink_energy[js, rs]))
                if delta_e > eps_energy:
                    t[jg, rg] += delta_e / powers[rg]
                    t[js, rs] -= delta_e / powers[rs]
                    if t[js, rs] < 0.0:
                        t[js, rs] = 0.0
                    moved = True

        if not moved:
            # Relocation phase: same task, work held constant, source on a
            # less efficient machine than the destination.  Energy saved is
            # Δf · (1/E_src − 1/E_dst) > 0; pick the largest saving.  The
            # loop makes (accuracy, −energy) lexicographically increase, so
            # relocations cannot cycle with growth/transfer moves.
            avail_flops = t * speeds[None, :]  # (n, m): movable work per source
            room_flops = slack * speeds[None, :]  # (n, m): receivable work per dest
            df = np.minimum(avail_flops[:, :, None], room_flops[:, None, :])  # (n, src, dst)
            rate = 1.0 / effs[:, None] - 1.0 / effs[None, :]  # J saved per FLOP moved src→dst
            saving = df * np.where(rate > 0.0, rate, 0.0)[None, :, :]
            idx = int(np.argmax(saving))
            if saving.flat[idx] > eps_energy:
                j, r_src, r_dst = np.unravel_index(idx, saving.shape)
                moved_flops = float(df[j, r_src, r_dst])
                t[j, r_src] -= moved_flops / speeds[r_src]
                if t[j, r_src] < 0.0:
                    t[j, r_src] = 0.0
                t[j, r_dst] += moved_flops / speeds[r_dst]
                moved = True

        if not moved:
            converged = True
            break

    return RefineResult(times=t, iterations=iterations, converged=converged)
