"""Scheduler registry: build any method by name.

Used by the CLI and by experiment configuration files, so method lists
can be expressed as strings (``"approx"``, ``"edf-nocompression"``, ...)
rather than imports.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..utils.errors import ValidationError
from .base import Scheduler

__all__ = ["register", "make_scheduler", "available_schedulers"]

_FACTORIES: Dict[str, Callable[..., Scheduler]] = {}


def register(name: str, factory: Callable[..., Scheduler]) -> None:
    """Register a scheduler factory under a (lowercase) name."""
    key = name.lower()
    if key in _FACTORIES:
        raise ValidationError(f"scheduler {name!r} already registered")
    _FACTORIES[key] = factory


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler; kwargs go to its constructor."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValidationError(
            f"unknown scheduler {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        )
    return _FACTORIES[key](**kwargs)


def available_schedulers() -> List[str]:
    """Sorted names of all registered schedulers."""
    return sorted(_FACTORIES)


def _register_builtins() -> None:
    # Imported lazily to avoid import cycles at package-init time.
    from ..baselines.discrete_levels import EDFDiscreteLevelsScheduler
    from ..baselines.greedy import GreedyEnergyScheduler
    from ..baselines.no_compression import EDFNoCompressionScheduler
    from ..baselines.random_assign import RandomAssignScheduler
    from ..exact.lp import LPFractionalScheduler
    from ..exact.mip import MIPScheduler
    from .approx import ApproxScheduler
    from .fractional import FractionalScheduler

    register("approx", ApproxScheduler)
    register("fractional", FractionalScheduler)
    register("ub", FractionalScheduler)  # the paper's DSCT-EA-UB alias
    register("lp", LPFractionalScheduler)
    register("mip", MIPScheduler)
    register("edf-nocompression", EDFNoCompressionScheduler)
    register("edf-3levels", EDFDiscreteLevelsScheduler)
    register("greedy-energy", GreedyEnergyScheduler)
    register("random", RandomAssignScheduler)

    from ..exact.discrete_mip import DiscreteLevelsMIPScheduler
    from ..extensions.consolidation import ConsolidatingScheduler

    from ..baselines.genetic import GeneticScheduler

    register("genetic", GeneticScheduler)
    register("discrete-mip", DiscreteLevelsMIPScheduler)
    register("consolidated", ConsolidatingScheduler)

    from ..resilience.fallback import FallbackChain

    register("fallback", FallbackChain.default)


_register_builtins()
