"""Algorithm 5 — DSCT-EA-APPROX, the integral approximation algorithm.

Rounds the optimal fractional solution (Algorithm 4) into a schedule
where every task runs on a single machine:

1. solve DSCT-EA-FR-OPT; record each machine's fractional load
   ``w_r^max = Σ_j t^f_jr`` — these act as per-machine energy-profile
   caps, so the rounded schedule can never exceed the fractional energy
   (and hence the budget);
2. walk tasks in EDF order, placing each on the least-loaded machine not
   yet at its cap, with processing time
   ``min(Σ_r t^f_jr, w_r^max − w_r, f_j^max / s_r)``
   (the last cap is implicit in the paper — time past ``f_max`` cannot
   raise accuracy and would waste budget);
3. cut-and-shift: on every machine, truncate any task that would finish
   past its deadline and pull the followers forward (paper lines 13–19).

The result carries the absolute guarantee of Eq. (13):
``OPT − G ≤ SOL ≤ OPT`` with ``G`` from
:func:`repro.algorithms.guarantees.performance_guarantee`.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..telemetry import get_collector
from .base import Scheduler, SolveInfo, SolveResult
from .fractional import solve_fractional

__all__ = ["ApproxScheduler", "round_fractional"]

_FULL_RTOL = 1e-9


def round_fractional(instance: ProblemInstance, fractional: Schedule) -> Schedule:
    """Steps 2–3 of Algorithm 5: round a fractional schedule integrally."""
    tele = get_collector()
    with tele.span("approx.round"):
        n, m = instance.n_tasks, instance.n_machines
        speeds = instance.cluster.speeds
        deadlines = instance.tasks.deadlines
        f_caps = instance.tasks.f_max

        w_max = fractional.machine_loads.copy()  # per-machine caps (seconds)
        task_time = fractional.times.sum(axis=1)  # Σ_r t^f_jr

        times = np.zeros((n, m))
        loads = np.zeros(m)
        full = w_max <= _FULL_RTOL * np.maximum(w_max, 1.0)

        for j in range(n):
            if np.all(full):
                break
            candidates = np.where(~full, loads, np.inf)
            r = int(np.argmin(candidates))
            grant = min(task_time[j], w_max[r] - loads[r], f_caps[j] / speeds[r])
            grant = max(grant, 0.0)
            times[j, r] = grant
            loads[r] += grant
            if loads[r] >= w_max[r] - _FULL_RTOL * max(w_max[r], 1.0):
                full[r] = True

        # Cut-and-shift: enforce deadlines machine by machine.  Tasks execute
        # in EDF (index) order, so starts are running sums; cutting a task
        # automatically shifts its followers forward.
        truncated = 0
        for r in range(m):
            start = 0.0
            for j in range(n):
                if times[j, r] <= 0.0:
                    continue
                allowed = max(deadlines[j] - start, 0.0)
                if times[j, r] > allowed:
                    times[j, r] = allowed
                    truncated += 1
                start += times[j, r]
        tele.counter("approx_tasks_truncated_total").add(truncated)

    return Schedule(instance, times)


class ApproxScheduler(Scheduler):
    """Scheduler façade for Algorithm 5."""

    name = "DSCT-EA-APPROX"

    def __init__(self, *, refine: bool = True):
        #: Whether the underlying fractional solve runs RefineProfile;
        #: disabling it gives the ablation variant rounded from the naive
        #: profile only.
        self.refine = refine
        if not refine:
            self.name = "DSCT-EA-APPROX-NAIVE"

    def solve(self, instance: ProblemInstance) -> Schedule:
        tele = get_collector()
        with tele.span("approx.solve"):
            fractional, _ = solve_fractional(instance, refine=self.refine)
            schedule = round_fractional(instance, fractional)
        tele.counter("solver_runs_total", solver="approx").inc()
        return schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        tele = get_collector()
        start = time.perf_counter()
        with tele.span("approx.solve"):
            fractional, meta = solve_fractional(instance, refine=self.refine)
            schedule = round_fractional(instance, fractional)
        tele.counter("solver_runs_total", solver="approx").inc()
        elapsed = time.perf_counter() - start
        info = SolveInfo(
            solver=self.name,
            optimal=False,
            status="ok",
            runtime_seconds=elapsed,
            extra={
                "fractional_accuracy": fractional.total_accuracy,
                "final_profile": meta["final_profile"],
                "naive_profile": meta["naive_profile"],
            },
        )
        return SolveResult(schedule, info)
