"""The paper's algorithms: Algorithms 1–5 and the approximation guarantee."""

from .approx import ApproxScheduler, round_fractional
from .base import Scheduler, SolveInfo, SolveResult
from .fractional import FractionalScheduler, solve_fractional
from .guarantees import performance_guarantee, slope_extremes
from .naive_solution import NaiveSolution, WaterFiller, compute_naive_solution
from .refine_profile import RefineResult, deadline_slack, refine_profile
from .single_machine import solve_single_machine

__all__ = [
    "Scheduler",
    "SolveInfo",
    "SolveResult",
    "solve_single_machine",
    "NaiveSolution",
    "WaterFiller",
    "compute_naive_solution",
    "RefineResult",
    "refine_profile",
    "deadline_slack",
    "FractionalScheduler",
    "solve_fractional",
    "ApproxScheduler",
    "round_fractional",
    "performance_guarantee",
    "slope_extremes",
]
