"""Algorithm 4 — DSCT-EA-FR-OPT.

Optimal solver for the fractional relaxation DSCT-EA-FR:
:func:`~repro.algorithms.naive_solution.compute_naive_solution`
(Algorithm 2) followed by
:func:`~repro.algorithms.refine_profile.refine_profile` (Algorithm 3).
Complexity ``O(n² m²)`` (paper Theorem 2).

The result doubles as the paper's **DSCT-EA-UB**: because every integral
schedule is also a fractional one, the fractional optimum upper-bounds
the DSCT-EA optimum, and Algorithm 5 rounds it into an integral schedule.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.profiles import EnergyProfile
from ..core.schedule import Schedule
from ..telemetry import get_collector
from .base import Scheduler, SolveInfo, SolveResult
from .naive_solution import compute_naive_solution
from .refine_profile import refine_profile

__all__ = ["FractionalScheduler", "solve_fractional"]


#: Relative accuracy improvement below which the profile polish stops.
_POLISH_RTOL = 1e-9


def _ternary_best_frac(phi_line, lo: float = 0.0, hi: float = 1.0, iters: int = 12) -> tuple[float, float]:
    """Maximise a concave 1-D function by ternary search; returns (x, value)."""
    for _ in range(iters):
        m1 = lo + (hi - lo) / 3.0
        m2 = hi - (hi - lo) / 3.0
        if phi_line(m1) < phi_line(m2):
            lo = m1
        else:
            hi = m2
    x = 0.5 * (lo + hi)
    return x, phi_line(x)


def _polish_profiles(
    instance: ProblemInstance,
    schedule: Schedule,
    *,
    max_rounds: int,
    thorough: bool = False,
) -> tuple[Schedule, int]:
    """Coordinate/transfer search over energy profiles.

    The exchange refinement can converge suboptimally in two ways:

    * with **leftover budget** it cannot spend (the best growable pair is
      deadline-blocked) — fixed by granting the leftover to each
      machine's profile in turn;
    * with the **budget fully spent but misallocated across machines**
      (spending machine r's share on machine r' would be better, but
      getting there needs an accuracy-neutral restructuring the pairwise
      exchange cannot express) — fixed by moving a slice of one
      machine's profile energy to another.

    Candidate profiles are evaluated with Algorithm 2 alone: Alg. 2 is
    *optimal for a fixed profile*, so its accuracy is exactly Φ(profile)
    — no refinement needed to compare candidates.  Only an accepted
    winner is re-refined (which may shift its implied profile further).
    Φ is concave over the profile polytope, so this is a monotone local
    search; in testing it closes every observed exchange-stall gap to
    machine precision.
    """
    budget = instance.budget
    if not math.isfinite(budget):
        return schedule, 0
    powers = instance.cluster.powers
    d_max = instance.tasks.d_max
    m = instance.n_machines

    def phi(limits: np.ndarray) -> tuple[float, np.ndarray]:
        naive = compute_naive_solution(instance, EnergyProfile(limits))
        sched = Schedule(instance, naive.times)
        return sched.total_accuracy, naive.times

    rounds = 0
    for _ in range(max_rounds):
        leftover = budget - schedule.total_energy
        loads = schedule.machine_loads
        best_acc = schedule.total_accuracy
        best_times: Optional[np.ndarray] = None

        # Zeroth candidate: re-solve the *current* profile with Alg. 2.
        # The exchange refinement can leave a solution that is no longer
        # optimal for its own implied profile (its moves are pairwise;
        # Alg. 2 restructures globally), so this one extra evaluation
        # recovers Φ(loads) exactly.
        acc0, times0 = phi(loads)
        if acc0 > best_acc:
            best_acc, best_times = acc0, times0

        if leftover > 1e-9 * max(budget, 1.0):
            # Spend the leftover: grant it to each machine in turn.
            for r in range(m):
                headroom = d_max - loads[r]
                if headroom <= 0:
                    continue
                grant = min(leftover / powers[r], headroom)
                limits = loads.copy()
                limits[r] += grant
                acc, times = phi(limits)
                if acc > best_acc:
                    best_acc, best_times = acc, times
        elif m > 1:
            # Budget exhausted but possibly misallocated: move a slice of
            # one machine's profile energy to another.  Candidates are
            # targeted to keep the scan cheap: a *recipient* must cap
            # below the deadline of some task that still wants work
            # (otherwise extra profile cannot increase capacity in any
            # task's window), ranked by the desire it could serve; a
            # *donor* hosts the cheapest accuracy-per-Joule work.  A
            # short geometric line search per (donor, recipient) pair
            # covers coarse and fine moves.
            flops = schedule.task_flops
            tasks = instance.tasks
            gains = np.array(
                [task.accuracy.marginal_gain(min(f, task.f_max)) for task, f in zip(tasks, flops)]
            )
            losses = np.array(
                [task.accuracy.marginal_loss(min(f, task.f_max)) for task, f in zip(tasks, flops)]
            )
            effs = instance.cluster.efficiencies
            deadlines = tasks.deadlines
            desiring = gains > 0.0

            recipient_scores = np.full(m, -np.inf)
            for r in range(m):
                eligible = desiring & (loads[r] < deadlines * (1.0 - 1e-12))
                if np.any(eligible) and d_max - loads[r] > 0:
                    recipient_scores[r] = float(gains[eligible].max()) * effs[r]
            donor_scores = np.full(m, np.inf)
            for r in range(m):
                hosted = schedule.times[:, r] > 0.0
                if np.any(hosted) and loads[r] * powers[r] > 1e-12 * max(budget, 1.0):
                    donor_scores[r] = float(losses[hosted].min()) * effs[r]

            if thorough:
                # Every ordered pair, with a ternary line search along the
                # transfer direction (Φ is concave along any line, so the
                # search is exact up to resolution).  Slow but closes the
                # remaining exchange-stall gaps to solver precision.
                recipients = [r for r in range(m) if np.isfinite(recipient_scores[r])]
                donors = [r for r in range(m) if np.isfinite(donor_scores[r])]
            else:
                recipients = [
                    r for r in np.argsort(-recipient_scores)[:2] if np.isfinite(recipient_scores[r])
                ]
                donors = [r for r in np.argsort(donor_scores)[:2] if np.isfinite(donor_scores[r])]

            for r_from in donors:
                donor_energy = loads[r_from] * powers[r_from]
                for r_to in recipients:
                    if r_to == r_from:
                        continue
                    headroom = d_max - loads[r_to]
                    if headroom <= 0:
                        continue
                    max_transfer = min(donor_energy, headroom * powers[r_to])

                    def limits_for(delta, r_from=r_from, r_to=r_to):
                        limits = loads.copy()
                        limits[r_from] -= delta / powers[r_from]
                        limits[r_to] += delta / powers[r_to]
                        return limits if limits[r_from] >= 0 else None

                    if thorough:
                        cache: dict = {}

                        def phi_line(x, limits_for=limits_for, cache=cache):
                            if x not in cache:
                                limits = limits_for(x * max_transfer)
                                cache[x] = phi(limits)[0] if limits is not None else -np.inf
                            return cache[x]

                        x, acc = _ternary_best_frac(phi_line)
                        if acc > best_acc:
                            limits = limits_for(x * max_transfer)
                            if limits is not None:
                                acc, times = phi(limits)
                                if acc > best_acc:
                                    best_acc, best_times = acc, times
                    else:
                        for frac in (0.5, 0.15):
                            limits = limits_for(frac * donor_energy)
                            if limits is None:
                                continue
                            acc, times = phi(limits)
                            if acc > best_acc:
                                best_acc, best_times = acc, times

        if best_times is None or best_acc <= schedule.total_accuracy * (1.0 + _POLISH_RTOL):
            break
        refined = refine_profile(instance, best_times)
        candidate = Schedule(instance, refined.times)
        # keep whichever is better (refinement never hurts, but guard).
        if candidate.total_accuracy >= best_acc:
            schedule = candidate
        else:
            schedule = Schedule(instance, best_times)
        rounds += 1
    return schedule, rounds


def solve_fractional(
    instance: ProblemInstance,
    *,
    refine: bool = True,
    profile: Optional[EnergyProfile] = None,
    polish_rounds: int = 8,
    thorough: bool = False,
) -> tuple[Schedule, dict]:
    """Run DSCT-EA-FR-OPT; returns the schedule and a metadata dict.

    ``refine=False`` stops after Algorithm 2 (the naive-profile optimum) —
    used by the ablation benchmarks to quantify what RefineProfile buys.
    ``polish_rounds`` bounds the profile coordinate/transfer search that
    repairs exchange stalls (0 disables it).  ``thorough=True`` makes that
    search exhaustive (all machine pairs + ternary line search): slower,
    but closes the residual stall gaps to solver precision — use it when
    quality matters more than runtime.
    """
    tele = get_collector()
    with tele.span("fractional.solve"):
        with tele.span("fractional.naive"):
            naive = compute_naive_solution(instance, profile)
        meta: dict = {
            "naive_profile": naive.profile.limits.copy(),
            "refine_iterations": 0,
            "refine_converged": True,
            "polish_rounds": 0,
        }
        times = naive.times
        schedule = Schedule(instance, times)
        if refine:
            with tele.span("fractional.refine"):
                result = refine_profile(instance, times)
            meta["refine_iterations"] = result.iterations
            meta["refine_converged"] = result.converged
            tele.counter("refine_iterations_total").add(result.iterations)
            schedule = Schedule(instance, result.times)
            if polish_rounds > 0:
                with tele.span("fractional.polish"):
                    schedule, rounds = _polish_profiles(
                        instance, schedule, max_rounds=polish_rounds, thorough=thorough
                    )
                meta["polish_rounds"] = rounds
                tele.counter("polish_rounds_total").add(rounds)
        # The *final* energy profile: the busy time actually placed on each
        # machine (what Fig. 6 plots).
        meta["final_profile"] = schedule.machine_loads.copy()
    tele.counter("solver_runs_total", solver="fractional").inc()
    tele.gauge("last_solve_accuracy", solver="fractional").set(schedule.total_accuracy)
    return schedule, meta


class FractionalScheduler(Scheduler):
    """Scheduler façade for Algorithm 4 (a.k.a. DSCT-EA-UB)."""

    name = "DSCT-EA-FR-OPT"

    def __init__(self, *, refine: bool = True, thorough: bool = False):
        self.refine = refine
        self.thorough = thorough
        if not refine:
            self.name = "DSCT-EA-FR-NAIVE"

    def solve(self, instance: ProblemInstance) -> Schedule:
        schedule, _ = solve_fractional(instance, refine=self.refine, thorough=self.thorough)
        return schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        start = time.perf_counter()
        schedule, meta = solve_fractional(instance, refine=self.refine, thorough=self.thorough)
        elapsed = time.perf_counter() - start
        info = SolveInfo(
            solver=self.name,
            optimal=bool(meta["refine_converged"]),
            status="ok" if meta["refine_converged"] else "iteration_limit",
            runtime_seconds=elapsed,
            extra=meta,
        )
        return SolveResult(schedule, info)
