"""Scheduler interface shared by algorithms, exact solvers and baselines.

Every scheduling method in the library is a :class:`Scheduler` with a
``name`` (used in experiment tables) and a ``solve`` method mapping a
:class:`~repro.core.instance.ProblemInstance` to a
:class:`~repro.core.schedule.Schedule`.  Methods that produce extra
artefacts (fractional solutions keep their energy profile, exact solvers
their solver status) return a :class:`SolveInfo`-carrying schedule via
``solve_with_info``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule

__all__ = ["Scheduler", "SolveInfo", "SolveResult"]


@dataclass(frozen=True)
class SolveInfo:
    """Side-channel metadata from one solve."""

    solver: str
    optimal: bool = False
    status: str = "ok"
    runtime_seconds: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SolveResult:
    """A schedule together with its :class:`SolveInfo`."""

    schedule: Schedule
    info: SolveInfo


class Scheduler(abc.ABC):
    """Abstract scheduling method."""

    #: Short identifier used in experiment output (subclasses override).
    name: str = "scheduler"

    @abc.abstractmethod
    def solve(self, instance: ProblemInstance) -> Schedule:
        """Compute a schedule for ``instance``."""

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        """Like :meth:`solve` but with metadata; default wraps :meth:`solve`."""
        return SolveResult(self.solve(instance), SolveInfo(solver=self.name))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
