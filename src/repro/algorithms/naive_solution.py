"""Algorithm 2 — ComputeNaiveSolution.

Optimal fractional solution for a *fixed* energy profile:

1. compute the naive profile (most-efficient machines first, Sec. 4.2);
2. collapse the cluster into an *equivalent single machine*: within
   deadline ``d_j`` and profile caps, the cluster can deliver
   ``D_j = Σ_r s_r · min(d_j, p_r)`` FLOP to tasks ``1..j`` — these become
   temporary deadlines in FLOP units (paper lines 6–8, with ``s = 1``);
3. solve the single-machine problem exactly (Algorithm 1);
4. map cumulative work back to the machines by **water-filling**: after
   task ``j``, every machine has been busy ``min(τ_j, p_r)`` seconds where
   ``τ_j`` solves ``Σ_r s_r · min(τ_j, p_r) = W_j`` (cumulative work).
   This is the closed form of the paper's redistribution loop (lines
   11–21): machines are loaded evenly in *time* and drop out exactly when
   their profile is exhausted.  ``W_j ≤ D_j`` guarantees ``τ_j ≤ d_j``, so
   every prefix deadline holds on every machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.profiles import EnergyProfile, naive_profile
from ..core.schedule import Schedule
from ..core.segments import SegmentState, build_segment_list
from ..telemetry import get_collector
from ..utils.errors import ValidationError
from .single_machine import solve_single_machine

__all__ = ["NaiveSolution", "compute_naive_solution", "WaterFiller"]


class WaterFiller:
    """Solves ``Σ_r s_r · min(τ, cap_r) = W`` for the common busy time τ.

    Precomputes the piecewise-linear capacity curve once; each query is a
    binary search plus one linear interpolation.
    """

    def __init__(self, speeds: np.ndarray, caps: np.ndarray):
        speeds = np.asarray(speeds, dtype=float)
        caps = np.asarray(caps, dtype=float)
        if speeds.shape != caps.shape or speeds.ndim != 1:
            raise ValidationError("speeds and caps must be equal-length vectors")
        order = np.argsort(caps, kind="stable")
        self._caps_sorted = caps[order]
        speeds_sorted = speeds[order]
        # Speed still active on [caps_sorted[k-1], caps_sorted[k]): machines
        # whose cap is >= the interval, i.e. suffix sums.
        suffix = np.concatenate([np.cumsum(speeds_sorted[::-1])[::-1], [0.0]])
        # Work delivered when τ reaches each sorted cap.
        # Work delivered when τ reaches each sorted cap (incremental
        # integration of the active speed over each interval).
        g = np.zeros(self._caps_sorted.size + 1)
        prev = 0.0
        for k, cap in enumerate(self._caps_sorted):
            g[k + 1] = g[k] + suffix[k] * (cap - prev)
            prev = cap
        self._knot_tau = np.concatenate([[0.0], self._caps_sorted])
        self._knot_work = g
        self._active_speed = suffix  # active speed on segment k: [knot_k, knot_{k+1})
        self._max_work = float(g[-1])
        self._max_tau = float(self._caps_sorted[-1]) if self._caps_sorted.size else 0.0

    @property
    def capacity(self) -> float:
        """Total deliverable work ``Σ_r s_r · cap_r`` (FLOP)."""
        return self._max_work

    def tau(self, work: float, *, tolerance: float = 1e-7) -> float:
        """Minimal τ delivering ``work`` FLOP; clamps small overshoot."""
        if work <= 0.0:
            return 0.0
        if work >= self._max_work:
            if work > self._max_work * (1.0 + tolerance) + tolerance:
                raise ValidationError(
                    f"requested work {work:.6g} exceeds capacity {self._max_work:.6g}"
                )
            return self._max_tau
        k = int(np.searchsorted(self._knot_work, work, side="left")) - 1
        k = max(k, 0)
        speed = self._active_speed[k]
        if speed <= 0.0:
            # Plateau (duplicate caps): jump to the knot end.
            return float(self._knot_tau[k + 1])
        return float(self._knot_tau[k] + (work - self._knot_work[k]) / speed)


@dataclass
class NaiveSolution:
    """Output of Algorithm 2 — everything Algorithm 3 needs to refine."""

    times: np.ndarray  # (n, m) seconds
    work: np.ndarray  # (n,) FLOP granted per task
    profile: EnergyProfile
    segments: List[SegmentState]

    def to_schedule(self, instance: ProblemInstance) -> Schedule:
        return Schedule(instance, self.times)


def compute_naive_solution(
    instance: ProblemInstance,
    profile: Optional[EnergyProfile] = None,
) -> NaiveSolution:
    """Run Algorithm 2 on ``instance`` (optionally with a custom profile)."""
    tele = get_collector()
    tasks, cluster = instance.tasks, instance.cluster
    if profile is None:
        profile = naive_profile(instance)
    elif len(profile) != len(cluster):
        raise ValidationError("profile length must equal number of machines")
    speeds = cluster.speeds
    deadlines = tasks.deadlines
    caps = np.minimum(profile.limits, tasks.d_max)

    # Temporary deadlines of the equivalent single machine (FLOP units).
    # D_j = Σ_r s_r · min(d_j, cap_r); non-decreasing since d_j is.
    temp_deadlines = (speeds * np.minimum(deadlines[:, None], caps[None, :])).sum(axis=1)

    with tele.span("naive.segments"):
        segments = build_segment_list(tasks)
    # A degenerate all-zero capacity (budget 0) would make deadline 0 — the
    # greedy then allocates nothing, which is correct.
    with tele.span("naive.single_machine"):
        work = solve_single_machine(temp_deadlines, 1.0, segments)

    # Map back to machines with water-filling on cumulative work.
    with tele.span("naive.water_fill"):
        filler = WaterFiller(speeds, caps)
        cumulative_work = np.cumsum(work)
        taus = np.array([filler.tau(w) for w in cumulative_work])
        cumulative_times = np.minimum(taus[:, None], caps[None, :])
        times = np.diff(cumulative_times, axis=0, prepend=0.0)
        np.clip(times, 0.0, None, out=times)  # float dust from the diff
    return NaiveSolution(times=times, work=work, profile=profile, segments=segments)
