"""The shard supervisor: heartbeat, restart, sweep.

:class:`ShardSupervisor` is the front-end's repair loop.  Each heartbeat
it checks every shard handle of its :class:`~repro.cluster.frontend.ClusterManager`:

* a handle whose worker process died without the dispatcher noticing
  (e.g. the dispatcher is blocked elsewhere) is declared dead through
  the manager's normal death path — grants conservatively committed,
  orphaned requests requeued, lease epoch bumped;
* a dead shard with restart budget left is brought back: a fresh worker
  generation recovers the shard journal (the durable cumulative-energy
  chain resumes), new queues and a new dispatcher/batcher attach, and
  the consistent-hash ring routes to it again.  Restarts are capped by
  ``max_restarts`` — a shard that keeps dying stays down rather than
  crash-looping;
* in-flight windows older than the request timeout are swept (their
  grants committed in full — a dropped reply must not leak phantom
  reservation forever).

The supervisor never makes scheduling decisions; it only restores the
topology the manager was configured with.  It runs as one daemon thread
under a copied context so its telemetry lands in the manager's registry.
"""

from __future__ import annotations

import contextvars
import threading
from typing import TYPE_CHECKING

from ..utils.validation import check_positive, require

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (frontend imports us)
    from .frontend import ClusterManager

__all__ = ["ShardSupervisor"]


class ShardSupervisor:
    """Heartbeat loop restarting dead shard workers (bounded) and
    sweeping stale in-flight windows."""

    def __init__(
        self,
        manager: "ClusterManager",
        *,
        heartbeat_seconds: float = 0.25,
        max_restarts: int = 3,
    ):
        check_positive(heartbeat_seconds, "heartbeat_seconds")
        require(max_restarts >= 0, f"max_restarts must be >= 0, got {max_restarts}")
        self.manager = manager
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.max_restarts = int(max_restarts)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "ShardSupervisor":
        require(self._thread is None, "supervisor already started")
        context = contextvars.copy_context()
        self._thread = threading.Thread(
            target=lambda: context.run(self._loop),
            name="repro-supervisor",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, *, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # -- the heartbeat ----------------------------------------------------------

    def _beat_once(self) -> None:
        manager = self.manager
        for handle in manager._handles.values():
            if manager._stopping.is_set():
                return
            process = handle.process
            if handle.alive and process is not None and not process.is_alive():
                # The dispatcher usually notices first; this is the
                # backstop for a death it has not seen yet.
                manager._shard_died(handle)
            if (
                not handle.alive
                and process is not None
                and handle.restarts < self.max_restarts
            ):
                manager._restart_shard(handle)
        manager._sweep_stale()

    def _loop(self) -> None:
        while not self._stop.wait(self.heartbeat_seconds):
            if self.manager._stopping.is_set():
                return
            self._beat_once()

    def __repr__(self) -> str:
        return (
            f"ShardSupervisor(heartbeat={self.heartbeat_seconds}, "
            f"max_restarts={self.max_restarts})"
        )
