"""Bounded solve windows: coalesce arriving requests into batches.

The front-end does not dispatch every request to its shard
individually — queue/IPC round-trips would dominate small solves.
Instead a :class:`WindowBatcher` per shard coalesces arrivals into
bounded *solve windows*: a window closes when it holds ``max_batch``
items **or** ``max_wait_seconds`` after its first item arrived,
whichever comes first.  The first bound caps per-window latency cost,
the second caps the latency a lone request pays for batching.

Each submitted item gets a :class:`PendingResult` — a one-shot future
the dispatch path resolves from the worker's reply (or fails, e.g. when
the worker dies mid-window).  The batcher owns one daemon thread; the
dispatch callback runs on it, so callbacks must hand heavy work
onwards rather than solving inline.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from ..telemetry import get_collector
from ..utils.errors import ValidationError
from ..utils.validation import check_positive, require

__all__ = ["PendingResult", "WindowBatcher"]


class PendingResult:
    """One-shot future for a submitted request (thread-safe).

    Settlement is first-wins: the first :meth:`resolve` or :meth:`fail`
    sticks and every later attempt is ignored (returning ``False``).
    That property is what makes hedged dispatch safe — two shards may
    race to settle the same pending, but the caller observes exactly
    one result and the loser's settle is detectable for cleanup.
    """

    __slots__ = ("_lock", "_event", "_value", "_error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def resolve(self, value: Any) -> bool:
        """Settle with ``value``; ``False`` if already settled (late loser)."""
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def fail(self, error: BaseException) -> bool:
        """Settle with ``error``; ``False`` if already settled."""
        with self._lock:
            if self._event.is_set():
                return False
            self._error = error
            self._event.set()
            return True

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; raises the stored error or ``TimeoutError``."""
        if not self._event.wait(timeout):
            raise TimeoutError("request timed out waiting for its solve window")
        if self._error is not None:
            raise self._error
        return self._value


class WindowBatcher:
    """Coalesce submissions into ``dispatch(batch)`` calls on a worker thread.

    ``dispatch`` receives a list of ``(item, PendingResult)`` pairs and
    is responsible for resolving (or failing) every pending result it
    was handed.  Exceptions escaping ``dispatch`` fail the whole window
    — no request is ever silently dropped.
    """

    def __init__(
        self,
        dispatch: Callable[[List[Tuple[Any, PendingResult]]], None],
        *,
        max_batch: int = 8,
        max_wait_seconds: float = 0.01,
        name: str = "batcher",
    ):
        require(max_batch >= 1, f"max_batch must be >= 1, got {max_batch}")
        check_positive(max_wait_seconds, "max_wait_seconds")
        self.dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_seconds)
        self.name = name
        self._lock = threading.Lock()
        self._items: List[Tuple[Any, PendingResult]] = []
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        # The loop runs under a copy of the creating context so spans and
        # trace scopes opened by dispatch land in the owning registry.
        context = contextvars.copy_context()
        self._thread = threading.Thread(
            target=lambda: context.run(self._loop), name=f"repro-{name}", daemon=True
        )
        self._thread.start()

    def submit(self, item: Any, *, pending: Optional[PendingResult] = None) -> PendingResult:
        """Queue ``item`` for the next window; returns its pending result.

        Retries and hedges pass their original ``pending`` so the caller
        keeps waiting on one future across re-dispatches; by default a
        fresh one is created.
        """
        if pending is None:
            pending = PendingResult()
        with self._lock:
            if self._closed:
                raise ValidationError(f"batcher {self.name!r} is closed")
            self._items.append((item, pending))
            self._wakeup.notify()
        return pending

    def evict(self, item: Any) -> bool:
        """Drop a still-queued ``item`` (matched by identity) before dispatch.

        Returns ``True`` if the item was found waiting and removed — its
        pending result is left unsettled for the caller to dispose of.
        ``False`` means the item already left in a window (or was never
        queued) and will be settled by the dispatch path.
        """
        with self._lock:
            for index, (queued, _) in enumerate(self._items):
                if queued is item:
                    del self._items[index]
                    return True
        return False

    def _loop(self) -> None:
        tele = get_collector()
        while True:
            with self._lock:
                while not self._items and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._items:
                    return
                # A window is open: wait out the coalescing budget unless
                # the size bound trips first.
                deadline = time.monotonic() + self.max_wait_seconds
                while len(self._items) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(remaining)
                batch, self._items = self._items[: self.max_batch], self._items[self.max_batch :]
            if not batch:  # pragma: no cover — only on close races
                continue
            tele.counter(f"{self.name}_windows_total").inc()
            tele.histogram(f"{self.name}_window_size", buckets=(1, 2, 4, 8, 16, 32, 64)).observe(
                len(batch)
            )
            try:
                self.dispatch(batch)
            except BaseException as exc:  # noqa: BLE001 — every pending must settle
                for _, pending in batch:
                    if not pending.done:
                        pending.fail(exc)

    def close(self, *, drain: bool = True) -> None:
        """Stop the batcher; ``drain=True`` dispatches queued items first."""
        with self._lock:
            self._closed = True
            if not drain:
                leftovers, self._items = self._items, []
            else:
                leftovers = []
            self._wakeup.notify_all()
        for _, pending in leftovers:
            pending.fail(ValidationError(f"batcher {self.name!r} closed"))
        self._thread.join(timeout=5.0)
