"""Bounded solve windows: coalesce arriving requests into batches.

The front-end does not dispatch every request to its shard
individually — queue/IPC round-trips would dominate small solves.
Instead a :class:`WindowBatcher` per shard coalesces arrivals into
bounded *solve windows*: a window closes when it holds ``max_batch``
items **or** ``max_wait_seconds`` after its first item arrived,
whichever comes first.  The first bound caps per-window latency cost,
the second caps the latency a lone request pays for batching.

Each submitted item gets a :class:`PendingResult` — a one-shot future
the dispatch path resolves from the worker's reply (or fails, e.g. when
the worker dies mid-window).  The batcher owns one daemon thread; the
dispatch callback runs on it, so callbacks must hand heavy work
onwards rather than solving inline.

Overload behaviour
------------------

Requests carry a **priority class** (interactive / standard /
best-effort).  Window formation is a weighted dequeue — each pass takes
up to ``priority_weights[rank]`` items from each class in rank order —
so interactive traffic keeps moving under load without starving the
others outright.  The queue is **bounded** (``max_queue``; submission
past the bound raises :class:`QueueFullError` and the front-end turns
that into a 503) and, when depth crosses ``lifo_threshold``, dequeue
flips to **adaptive LIFO** within each class: the newest arrivals are
served first, because under sustained overload the oldest queued
requests are the ones whose deadlines are already gone — FIFO would
spend the whole recovery serving requests nobody is still waiting for
(the classic metastable-queue failure).
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from ..overload.controller import PRIORITY_CLASSES, PRIORITY_ORDER, normalize_priority
from ..telemetry import get_collector
from ..utils.errors import ValidationError
from ..utils.validation import check_positive, require

__all__ = ["PendingResult", "QueueFullError", "WindowBatcher", "DEFAULT_PRIORITY_WEIGHTS"]

#: Items taken per priority class per dequeue pass (interactive, standard,
#: best_effort).
DEFAULT_PRIORITY_WEIGHTS: Tuple[int, ...] = (4, 2, 1)


class QueueFullError(ValidationError):
    """The batcher's bounded queue is at capacity; shed instead of queueing."""


class PendingResult:
    """One-shot future for a submitted request (thread-safe).

    Settlement is first-wins: the first :meth:`resolve` or :meth:`fail`
    sticks and every later attempt is ignored (returning ``False``).
    That property is what makes hedged dispatch safe — two shards may
    race to settle the same pending, but the caller observes exactly
    one result and the loser's settle is detectable for cleanup.
    """

    __slots__ = ("_lock", "_event", "_value", "_error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def resolve(self, value: Any) -> bool:
        """Settle with ``value``; ``False`` if already settled (late loser)."""
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def fail(self, error: BaseException) -> bool:
        """Settle with ``error``; ``False`` if already settled."""
        with self._lock:
            if self._event.is_set():
                return False
            self._error = error
            self._event.set()
            return True

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; raises the stored error or ``TimeoutError``."""
        if not self._event.wait(timeout):
            raise TimeoutError("request timed out waiting for its solve window")
        if self._error is not None:
            raise self._error
        return self._value


class WindowBatcher:
    """Coalesce submissions into ``dispatch(batch)`` calls on a worker thread.

    ``dispatch`` receives a list of ``(item, PendingResult)`` pairs and
    is responsible for resolving (or failing) every pending result it
    was handed.  Exceptions escaping ``dispatch`` fail the whole window
    — no request is ever silently dropped.
    """

    def __init__(
        self,
        dispatch: Callable[[List[Tuple[Any, PendingResult]]], None],
        *,
        max_batch: int = 8,
        max_wait_seconds: float = 0.01,
        name: str = "batcher",
        max_queue: int = 4096,
        priority_weights: Tuple[int, ...] = DEFAULT_PRIORITY_WEIGHTS,
        lifo_threshold: Optional[int] = None,
    ):
        require(max_batch >= 1, f"max_batch must be >= 1, got {max_batch}")
        check_positive(max_wait_seconds, "max_wait_seconds")
        require(max_queue >= 1, f"max_queue must be >= 1, got {max_queue}")
        require(
            len(priority_weights) == len(PRIORITY_CLASSES)
            and all(int(w) >= 1 for w in priority_weights),
            f"priority_weights must be {len(PRIORITY_CLASSES)} ints >= 1, got {priority_weights}",
        )
        self.dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_seconds)
        self.name = name
        self.max_queue = int(max_queue)
        self.priority_weights = tuple(int(w) for w in priority_weights)
        #: Queue depth beyond which dequeue flips to newest-first within
        #: each class.  ``None`` disables adaptive LIFO (pure FIFO).
        self.lifo_threshold = None if lifo_threshold is None else int(lifo_threshold)
        self._lock = threading.Lock()
        # One FIFO list per priority class, rank order (bounded jointly
        # by max_queue — never grows past it by construction).
        self._queues: List[List[Tuple[Any, PendingResult]]] = [[] for _ in PRIORITY_CLASSES]
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        # The loop runs under a copy of the creating context so spans and
        # trace scopes opened by dispatch land in the owning registry.
        context = contextvars.copy_context()
        self._thread = threading.Thread(
            target=lambda: context.run(self._loop), name=f"repro-{name}", daemon=True
        )
        self._thread.start()

    def _depth_locked(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def depth(self) -> int:
        """Requests currently queued (all classes)."""
        with self._lock:
            return self._depth_locked()

    def submit(
        self,
        item: Any,
        *,
        pending: Optional[PendingResult] = None,
        priority: Optional[str] = None,
    ) -> PendingResult:
        """Queue ``item`` for the next window; returns its pending result.

        Retries and hedges pass their original ``pending`` so the caller
        keeps waiting on one future across re-dispatches; by default a
        fresh one is created.  ``priority`` names the request's class
        (default ``standard``); :class:`QueueFullError` is raised when
        the bounded queue is at capacity.
        """
        if pending is None:
            pending = PendingResult()
        rank = PRIORITY_ORDER[normalize_priority(priority)]
        with self._lock:
            if self._closed:
                raise ValidationError(f"batcher {self.name!r} is closed")
            depth = self._depth_locked()
            if depth >= self.max_queue:
                get_collector().counter(f"{self.name}_queue_full_total").inc()
                raise QueueFullError(
                    f"batcher {self.name!r} queue is full ({depth}/{self.max_queue})"
                )
            self._queues[rank].append((item, pending))
            get_collector().gauge(f"{self.name}_queue_depth").set(depth + 1)
            self._wakeup.notify()
        return pending

    def evict(self, item: Any) -> bool:
        """Drop a still-queued ``item`` (matched by identity) before dispatch.

        Returns ``True`` if the item was found waiting and removed — its
        pending result is left unsettled for the caller to dispose of.
        ``False`` means the item already left in a window (or was never
        queued) and will be settled by the dispatch path.
        """
        with self._lock:
            for queue in self._queues:
                for index, (queued, _) in enumerate(queue):
                    if queued is item:
                        del queue[index]
                        return True
        return False

    def _take_window_locked(self) -> List[Tuple[Any, PendingResult]]:
        """Form one window: weighted dequeue across classes, LIFO under load.

        Each pass takes up to ``priority_weights[rank]`` items from each
        class in rank order, repeating until the window is full or the
        queues are dry — interactive dominates but never starves the
        rest.  When total depth exceeds ``lifo_threshold`` items are
        taken newest-first within each class.
        """
        lifo = self.lifo_threshold is not None and self._depth_locked() > self.lifo_threshold
        window: List[Tuple[Any, PendingResult]] = []
        while len(window) < self.max_batch and any(self._queues):
            for rank, queue in enumerate(self._queues):
                take = min(self.priority_weights[rank], self.max_batch - len(window), len(queue))
                for _ in range(take):
                    window.append(queue.pop() if lifo else queue.pop(0))
                if len(window) >= self.max_batch:
                    break
        return window

    def _loop(self) -> None:
        tele = get_collector()
        while True:
            with self._lock:
                while not self._depth_locked() and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._depth_locked():
                    return
                # A window is open: wait out the coalescing budget unless
                # the size bound trips first.
                deadline = time.monotonic() + self.max_wait_seconds
                while self._depth_locked() < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(remaining)
                batch = self._take_window_locked()
                tele.gauge(f"{self.name}_queue_depth").set(self._depth_locked())
            if not batch:  # pragma: no cover — only on close races
                continue
            tele.counter(f"{self.name}_windows_total").inc()
            tele.histogram(f"{self.name}_window_size", buckets=(1, 2, 4, 8, 16, 32, 64)).observe(
                len(batch)
            )
            try:
                self.dispatch(batch)
            except BaseException as exc:  # noqa: BLE001 — every pending must settle
                for _, pending in batch:
                    if not pending.done:
                        pending.fail(exc)

    def close(self, *, drain: bool = True) -> None:
        """Stop the batcher; ``drain=True`` dispatches queued items first."""
        with self._lock:
            self._closed = True
            leftovers: List[Tuple[Any, PendingResult]] = []
            if not drain:
                for queue in self._queues:
                    leftovers.extend(queue)
                    queue.clear()
            self._wakeup.notify_all()
        for _, pending in leftovers:
            pending.fail(ValidationError(f"batcher {self.name!r} closed"))
        self._thread.join(timeout=5.0)
