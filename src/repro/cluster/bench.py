"""The serving benchmark: load-generate against one process and a cluster.

``repro bench serve`` answers the operational question the cluster
exists for — *what does sharding buy, at what tail latency, for how
much energy?* — by driving the same request mix through

1. a **single-process baseline**: the exact
   :class:`~repro.cluster.solve_service.SolveService` path the plain
   server runs, one solve at a time behind a lock (the GIL-honest
   throughput of one process), and
2. an **N-shard cluster**: requests routed, batched into solve windows,
   solved by worker processes under per-shard energy leases.

Both sides run the same closed-loop load (``concurrency`` clients
issuing back-to-back requests for ``duration`` seconds) or an open-loop
arrival schedule (``rate`` requests/s, Poisson), and report throughput,
p50/p90/p99 latency and error mix.  The cluster run additionally reports
per-shard energy spend and the :func:`~repro.cluster.ledger.audit_cluster`
certificate that the shards' journalled spends sum within the global
budget.  Results are written to ``benchmarks/BENCH_serve.json``
alongside ``cpu_count`` — a 4-shard cluster on one core *cannot* show a
4× speedup, and the artifact must let a reader see that.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..core.serialization import instance_to_dict
from ..telemetry import new_trace_id
from ..utils.fileio import atomic_write
from ..utils.validation import check_positive, require
from .frontend import ClusterConfig, ClusterManager
from .ledger import audit_cluster
from .solve_service import SolveService, SolveServiceConfig

__all__ = ["LoadStats", "run_load", "bench_serve"]


class LoadStats:
    """Latency/throughput aggregate of one load run."""

    def __init__(self, latencies: List[float], statuses: List[int], duration: float):
        self.latencies = sorted(latencies)
        self.statuses = statuses
        self.duration = float(duration)

    @staticmethod
    def _percentile(values: List[float], q: float) -> float:
        if not values:
            return float("nan")
        index = min(int(q * len(values)), len(values) - 1)
        return values[index]

    def to_dict(self) -> Dict[str, Any]:
        ok = sum(1 for s in self.statuses if s == 200)
        by_status: Dict[str, int] = {}
        for status in self.statuses:
            by_status[str(status)] = by_status.get(str(status), 0) + 1
        return {
            "requests": len(self.statuses),
            "ok": ok,
            "errors": len(self.statuses) - ok,
            "by_status": by_status,
            "duration_s": self.duration,
            "throughput_rps": (ok / self.duration) if self.duration > 0 else 0.0,
            "latency_s": {
                "mean": (sum(self.latencies) / len(self.latencies)) if self.latencies else float("nan"),
                "p50": self._percentile(self.latencies, 0.50),
                "p90": self._percentile(self.latencies, 0.90),
                "p99": self._percentile(self.latencies, 0.99),
            },
        }


def run_load(
    submit: Callable[[], int],
    *,
    duration: float,
    concurrency: int = 4,
    rate: Optional[float] = None,
    seed: int = 0,
) -> LoadStats:
    """Drive ``submit`` (returns an HTTP-ish status) for ``duration`` seconds.

    ``rate=None`` runs closed-loop: ``concurrency`` clients issue
    back-to-back requests.  With ``rate`` the load is open-loop: arrivals
    follow a Poisson schedule at ``rate`` req/s (capped by the same
    client pool), which is the arrival model the paper's online setting
    assumes — queueing delay then shows up in the measured latency.
    """
    check_positive(duration, "duration")
    require(concurrency >= 1, f"concurrency must be >= 1, got {concurrency}")
    latencies: List[float] = []
    statuses: List[int] = []
    record_lock = threading.Lock()
    deadline = time.perf_counter() + duration

    def one_request() -> None:
        t0 = time.perf_counter()
        status = submit()
        t1 = time.perf_counter()
        with record_lock:
            latencies.append(t1 - t0)
            statuses.append(status)

    def closed_loop() -> None:
        while time.perf_counter() < deadline:
            one_request()

    threads: List[threading.Thread] = []
    if rate is None:
        for index in range(concurrency):
            context = contextvars.copy_context()
            threads.append(
                threading.Thread(target=lambda c=context: c.run(closed_loop), name=f"load-{index}", daemon=True)
            )
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        check_positive(rate, "rate")
        rng = random.Random(seed)
        start = time.perf_counter()
        clock = start
        while clock < deadline:
            clock += rng.expovariate(rate)
            now = time.perf_counter()
            if clock > now:
                time.sleep(clock - now)
            context = contextvars.copy_context()
            thread = threading.Thread(target=lambda c=context: c.run(one_request), daemon=True)
            thread.start()
            threads.append(thread)
            # Bound the outstanding pool so open loop cannot fork-bomb.
            if len(threads) > 4 * concurrency:
                threads.pop(0).join()
        for thread in threads:
            thread.join(timeout=30.0)
    elapsed = time.perf_counter() - start
    return LoadStats(latencies, statuses, elapsed)


def _make_instance_doc(n: int, m: int, beta: float, seed: int) -> Dict[str, Any]:
    from ..hardware.sampling import sample_uniform_cluster
    from ..workloads.generator import TaskGenConfig, generate_instance

    cluster = sample_uniform_cluster(m, seed=seed)
    instance = generate_instance(TaskGenConfig(n=n), cluster, beta, seed=seed + 1)
    return instance_to_dict(instance)


def bench_serve(
    out_path: str = "benchmarks/BENCH_serve.json",
    *,
    shards: int = 4,
    duration: float = 5.0,
    concurrency: int = 8,
    rate: Optional[float] = None,
    scheduler: str = "approx",
    n_tasks: int = 20,
    n_machines: int = 4,
    beta: float = 0.5,
    budget: Optional[float] = None,
    journal_root: Optional[str] = None,
    max_batch: int = 8,
    max_wait_seconds: float = 0.005,
    seed: int = 0,
    skip_single: bool = False,
    progress: Callable[[str], None] = print,
) -> Dict[str, Any]:
    """The ``repro bench serve`` implementation; returns the written report."""
    instance_doc = _make_instance_doc(n_tasks, n_machines, beta, seed)
    report: Dict[str, Any] = {
        "benchmark": "cluster-serve",
        "cpu_count": os.cpu_count(),
        "note": (
            "speedup is bounded by cpu_count: N solver processes cannot beat one "
            "process on a single core, they only add IPC overhead there"
        ),
        "config": {
            "shards": shards,
            "duration_s": duration,
            "concurrency": concurrency,
            "rate_rps": rate,
            "scheduler": scheduler,
            "instance": {"n": n_tasks, "m": n_machines, "beta": beta, "seed": seed},
            "budget_joules": budget,
            "max_batch": max_batch,
            "max_wait_seconds": max_wait_seconds,
        },
    }

    if not skip_single:
        progress(f"single-process baseline: {concurrency} client(s), {duration:.1f} s ...")
        service = SolveService(SolveServiceConfig())
        solve_lock = threading.Lock()  # one process solves one request at a time

        def submit_single() -> int:
            from ..core.serialization import instance_from_dict

            instance = instance_from_dict(instance_doc)
            with solve_lock:
                service.solve_named(scheduler, instance)
            return 200

        single = run_load(
            submit_single, duration=duration, concurrency=concurrency, rate=rate, seed=seed
        ).to_dict()
        report["single"] = single
        progress(
            f"  {single['throughput_rps']:.1f} req/s, "
            f"p99 {single['latency_s']['p99'] * 1000:.0f} ms"
        )

    progress(f"{shards}-shard cluster: {concurrency} client(s), {duration:.1f} s ...")
    cluster_config = ClusterConfig(
        shards=shards,
        budget=budget,
        journal_root=journal_root,
        max_batch=max_batch,
        max_wait_seconds=max_wait_seconds,
        fsync="never" if journal_root is None else "rotate",
    )
    with ClusterManager(cluster_config) as manager:

        def submit_cluster() -> int:
            result = manager.submit(scheduler, instance_doc, trace_id=new_trace_id())
            return int(result.get("status", 200))

        cluster_stats = run_load(
            submit_cluster, duration=duration, concurrency=concurrency, rate=rate, seed=seed
        ).to_dict()
        report["cluster"] = cluster_stats
        report["ledger"] = manager.ledger.to_dict()
        stats = manager.shard_stats()
        report["per_shard"] = {
            shard: (
                None
                if doc is None
                else {"energy_spent_joules": doc["energy_spent"], "solves": doc["solves_total"]}
            )
            for shard, doc in stats.items()
        }
    progress(
        f"  {cluster_stats['throughput_rps']:.1f} req/s, "
        f"p99 {cluster_stats['latency_s']['p99'] * 1000:.0f} ms"
    )

    if not skip_single and report["single"]["throughput_rps"] > 0:
        report["speedup"] = cluster_stats["throughput_rps"] / report["single"]["throughput_rps"]
        progress(f"  speedup over single process: {report['speedup']:.2f}x on {report['cpu_count']} CPU(s)")

    if journal_root is not None:
        audit = audit_cluster(journal_root, budget=budget)
        report["audit"] = {
            "certified": audit.certified,
            "total_spent_joules": audit.total_spent,
            "budget_joules": budget,
            "violations": audit.violations,
            "shard_spend": audit.shard_spend,
        }
        progress("  " + audit.summary())

    path = Path(out_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write(path, json.dumps(report, indent=2, sort_keys=True) + "\n")
    progress(f"report written to {path}")
    return report
