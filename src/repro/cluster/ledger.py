"""The global energy budget B, split into per-shard leases.

The paper's DSCT-EA model has *one* budget ``B``; a sharded cluster has
many spenders.  The ledger preserves the global guarantee by
apportioning ``B`` into per-shard **leases** and enforcing, at all
times and for every interleaving of operations::

    for every shard s:   spent_s + reserved_s <= lease_s
    globally:            sum(lease_s) <= B

Since realised spend never exceeds its reservation, the two lines
compose into the paper's invariant — ``sum(spent_s) <= B`` at every
prefix of cluster history, no matter how shard spends interleave.

The spend protocol is reserve/commit: the front-end *reserves* headroom
from a shard's lease before dispatching a batch (the grant caps what
the worker may burn), the worker solves within the grant, and the
actual spend is *committed* back (releasing the unused remainder).  A
worker that dies mid-window has its grant *released* — reserved but
unspent energy returns to the lease, so a crash never leaks budget.

:meth:`EnergyLeaseLedger.rebalance` is the elasticity: unspent,
unreserved headroom is pooled and re-granted in proportion to each
shard's spend since the previous rebalance (demand-weighted, with an
equal-share floor so an idle shard is never starved to zero).  The
rebalance moves only *free* headroom and therefore preserves both
invariant lines by construction.

Every shard worker additionally journals its spends to its own
write-ahead log; :func:`audit_cluster` recovers each shard ledger with
:mod:`repro.durability` and certifies the per-shard chains plus the
global ``sum(spent) <= B`` — the durable proof of the split.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..durability.journal import read_events
from ..durability.recovery import audit as durability_audit
from ..durability.recovery import recover
from ..telemetry import get_collector
from ..utils.errors import ValidationError
from ..utils.validation import check_nonnegative, check_positive, require

__all__ = ["ShardLease", "EnergyLeaseLedger", "ClusterAudit", "audit_cluster"]

#: Relative slack for float comparisons on energy sums.
_REL_TOL = 1e-9


def _tol(reference: float) -> float:
    return _REL_TOL * max(abs(reference), 1.0)


@dataclass
class ShardLease:
    """One shard's slice of the global budget (mutable ledger row)."""

    shard: str
    lease: float  #: the shard's cap (J); spent + reserved never exceed it
    spent: float = 0.0  #: committed spend (J), monotone
    reserved: float = 0.0  #: granted but not yet committed (J)
    spent_since_rebalance: float = 0.0  #: demand signal for the rebalancer
    denied: int = 0  #: reservations clipped to zero by an exhausted lease
    epoch: int = 0  #: fencing token; bumped on every shard restart

    @property
    def headroom(self) -> float:
        """Free lease capacity: what a new reservation may take."""
        return max(self.lease - self.spent - self.reserved, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "lease": self.lease,
            "spent": self.spent,
            "reserved": self.reserved,
            "headroom": self.headroom,
            "denied": self.denied,
            "epoch": self.epoch,
        }


class EnergyLeaseLedger:
    """Thread-safe apportionment of the global budget across shards.

    ``budget=None`` disables enforcement (every reservation is granted
    in full) — the cluster then behaves like independent servers.
    """

    def __init__(
        self,
        budget: Optional[float],
        shard_ids: Sequence[str],
        *,
        min_share: float = 0.05,
    ):
        require(len(shard_ids) >= 1, "ledger needs at least one shard")
        require(len(set(shard_ids)) == len(shard_ids), "shard ids must be unique")
        require(0.0 <= min_share <= 1.0 / len(shard_ids), "min_share must fit every shard")
        if budget is not None:
            check_positive(budget, "budget")
        self.budget = None if budget is None else float(budget)
        self.min_share = float(min_share)
        self._lock = threading.Lock()
        initial = (self.budget or 0.0) / len(shard_ids)
        self._shards: Dict[str, ShardLease] = {
            str(s): ShardLease(shard=str(s), lease=initial) for s in shard_ids
        }
        self.rebalances = 0
        self.stale_commits = 0  #: stale-epoch commits/releases rejected, total

    # -- the spend protocol ----------------------------------------------------

    def _row(self, shard: str) -> ShardLease:
        try:
            return self._shards[shard]
        except KeyError:
            raise ValidationError(f"unknown shard {shard!r}") from None

    def reserve(self, shard: str, amount: float) -> float:
        """Claim up to ``amount`` J of the shard's headroom; returns the grant.

        The grant may be smaller than asked (down to 0.0 on an exhausted
        lease) — the caller dispatches with whatever it got and the
        worker sheds past it.
        """
        check_nonnegative(amount, "amount")
        with self._lock:
            row = self._row(shard)
            if self.budget is None:
                return float(amount)
            grant = min(float(amount), row.headroom)
            row.reserved += grant
            if grant <= 0.0 < amount:
                row.denied += 1
                get_collector().counter("lease_denials_total", shard=shard).inc()
            return grant

    def commit(self, shard: str, grant: float, spend: float, *, epoch: Optional[int] = None) -> bool:
        """Settle a reservation: record ``spend`` and release the remainder.

        ``epoch`` fences zombies: a commit carrying an epoch older than
        the shard's current one belongs to a worker generation that was
        declared dead (its reservations were dropped and its journalled
        spend re-absorbed by recovery) — applying it would double-spend.
        Stale commits are rejected, counted, and reported by returning
        ``False``; current-epoch commits apply and return ``True``.
        """
        check_nonnegative(grant, "grant")
        check_nonnegative(spend, "spend")
        if spend > grant + _tol(grant):
            raise ValidationError(
                f"shard {shard!r} spent {spend!r} J against a {grant!r} J grant — "
                "the worker overran its lease"
            )
        with self._lock:
            row = self._row(shard)
            if epoch is not None and epoch != row.epoch:
                self.stale_commits += 1
                stale = True
            else:
                stale = False
                row.spent += float(spend)
                row.spent_since_rebalance += float(spend)
                if self.budget is not None:
                    row.reserved = max(row.reserved - float(grant), 0.0)
        if stale:
            get_collector().counter("lease_stale_commits_total", shard=shard).inc()
            return False
        get_collector().counter("lease_commits_total", shard=shard).inc()
        return True

    def release(self, shard: str, grant: float, *, epoch: Optional[int] = None) -> None:
        """Return an entire unspent grant (worker died before committing).

        A stale-epoch release is a no-op: the epoch bump that fenced the
        grant already dropped every reservation of its generation.
        """
        check_nonnegative(grant, "grant")
        if self.budget is None:
            return
        with self._lock:
            row = self._row(shard)
            if epoch is not None and epoch != row.epoch:
                self.stale_commits += 1
                return
            row.reserved = max(row.reserved - float(grant), 0.0)

    # -- epoch fencing -----------------------------------------------------------

    def epoch_of(self, shard: str) -> int:
        """The shard's current lease epoch (stamp reservations with it)."""
        with self._lock:
            return self._row(shard).epoch

    def bump_epoch(self, shard: str) -> int:
        """Fence a shard generation: next epoch, all its reservations dropped.

        Called when a shard worker is declared dead, *before* its
        replacement starts.  Every outstanding grant of the old epoch is
        returned to the lease in one step; any commit or release that
        later arrives from the fenced generation is rejected by its
        stale epoch — a restarted shard's stale grants can never
        double-spend.
        """
        with self._lock:
            row = self._row(shard)
            row.epoch += 1
            row.reserved = 0.0
            epoch = row.epoch
        get_collector().counter("lease_epoch_bumps_total", shard=shard).inc()
        return epoch


    # -- rebalancing -----------------------------------------------------------

    def rebalance(self) -> Dict[str, float]:
        """Reclaim free headroom and re-grant it demand-weighted.

        Each lease shrinks to its committed floor (``spent + reserved``)
        and the pooled free energy is redistributed: a ``min_share``
        equal slice each, the rest proportional to spend since the last
        rebalance.  Returns the new lease map.  Both ledger invariants
        are preserved because only free headroom moves.
        """
        with self._lock:
            if self.budget is None:
                return {s: math.inf for s in self._shards}
            rows = list(self._shards.values())
            pool = sum(row.headroom for row in rows)
            demand_total = sum(row.spent_since_rebalance for row in rows)
            floor = self.min_share * pool
            flexible = pool - floor * len(rows)
            for row in rows:
                if demand_total > 0.0:
                    share = flexible * (row.spent_since_rebalance / demand_total)
                else:
                    share = flexible / len(rows)
                row.lease = row.spent + row.reserved + floor + share
                row.spent_since_rebalance = 0.0
            self.rebalances += 1
            leases = {row.shard: row.lease for row in rows}
        get_collector().counter("lease_rebalances_total").inc()
        return leases

    # -- inspection / invariants -----------------------------------------------

    @property
    def shard_ids(self) -> List[str]:
        return list(self._shards)

    @property
    def total_spent(self) -> float:
        with self._lock:
            return sum(row.spent for row in self._shards.values())

    def lease_of(self, shard: str) -> float:
        with self._lock:
            return self._row(shard).lease

    def spent_of(self, shard: str) -> float:
        with self._lock:
            return self._row(shard).spent

    def audit(self) -> List[str]:
        """Invariant violations in the live ledger (empty list: sound)."""
        violations: List[str] = []
        with self._lock:
            rows = list(self._shards.values())
            for row in rows:
                if row.spent < -_tol(row.spent):
                    violations.append(f"shard {row.shard}: negative spend {row.spent!r}")
                if self.budget is not None and row.spent + row.reserved > row.lease + _tol(row.lease):
                    violations.append(
                        f"shard {row.shard}: spent {row.spent!r} + reserved {row.reserved!r} "
                        f"exceeds lease {row.lease!r}"
                    )
            if self.budget is not None:
                total_lease = sum(row.lease for row in rows)
                if total_lease > self.budget + _tol(self.budget):
                    violations.append(
                        f"sum of leases {total_lease!r} exceeds budget {self.budget!r}"
                    )
        return violations

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "budget": self.budget,
                "total_spent": sum(row.spent for row in self._shards.values()),
                "rebalances": self.rebalances,
                "shards": {s: row.to_dict() for s, row in self._shards.items()},
            }

    def __repr__(self) -> str:
        return (
            f"EnergyLeaseLedger(budget={self.budget}, shards={len(self._shards)}, "
            f"spent={self.total_spent:.3g})"
        )


# -- durable audit across shard journals ---------------------------------------


@dataclass(frozen=True)
class ClusterAudit:
    """Outcome of auditing every shard's write-ahead ledger against B."""

    budget: Optional[float]
    shard_spend: Dict[str, float]
    violations: List[str]

    @property
    def total_spent(self) -> float:
        return sum(self.shard_spend.values())

    @property
    def certified(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "CERTIFIED" if self.certified else f"{len(self.violations)} violation(s)"
        budget = "unbounded" if self.budget is None else f"{self.budget:.1f} J"
        return (
            f"cluster energy audit: {state} — "
            f"{self.total_spent:.1f} J across {len(self.shard_spend)} shard(s), budget {budget}"
        )


def audit_cluster(
    journal_root: Union[str, Path], *, budget: Optional[float] = None
) -> ClusterAudit:
    """Certify the cluster's durable ledgers against the global budget.

    Recovers every ``shard-*`` journal under ``journal_root`` with
    :func:`repro.durability.recover`, runs the standard durability audit
    on each, re-derives each shard's cumulative-spend chain from its raw
    ``solve`` records (``cum_k = cum_{k-1} + energy_k``, energies
    non-negative), and finally checks ``sum(spent) <= B``.  Because each
    shard chain is monotone, the final-sum check covers every prefix of
    any interleaving of shard histories — the global prefix-spend proof.
    """
    root = Path(journal_root)
    shard_dirs = sorted(p for p in root.iterdir() if p.is_dir() and p.name.startswith("shard-")) if root.is_dir() else []
    violations: List[str] = []
    shard_spend: Dict[str, float] = {}
    if not shard_dirs:
        violations.append(f"{root}: no shard-* journal directories found")
    for shard_dir in shard_dirs:
        shard = shard_dir.name
        state = recover(shard_dir)
        violations.extend(f"{shard}: {v}" for v in durability_audit(state))
        cum = 0.0
        for event in read_events(shard_dir):
            if event.get("type") != "solve":
                continue
            energy = float(event.get("energy", 0.0))
            recorded = float(event.get("cum_energy", cum + energy))
            if energy < -_tol(energy):
                violations.append(f"{shard}: negative solve energy {energy!r}")
            if abs(recorded - (cum + energy)) > _tol(recorded):
                violations.append(
                    f"{shard}: cumulative-spend chain broken "
                    f"({cum!r} + {energy!r} != {recorded!r})"
                )
            cum = recorded
        if abs(cum - state.energy_spent) > _tol(cum):
            violations.append(
                f"{shard}: recovered spend {state.energy_spent!r} disagrees with "
                f"replayed chain {cum!r}"
            )
        shard_spend[shard] = cum
    total = sum(shard_spend.values())
    if budget is not None and total > float(budget) + _tol(float(budget)):
        violations.append(f"total shard spend {total!r} exceeds global budget {float(budget)!r}")
    return ClusterAudit(budget=budget, shard_spend=shard_spend, violations=violations)
