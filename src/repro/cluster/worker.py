"""The shard worker: a solver process with its own durable ledger.

Each shard of the cluster is one OS process running
:func:`worker_main`: a loop over a request queue whose envelopes carry
solve windows, stats probes, and shutdown.  Per shard — *not* shared
with any other process — the worker owns:

* a :class:`~repro.telemetry.MetricsRegistry` collecting its counters
  and solve spans (fetched by the front-end's ``stats`` probe for the
  cluster-level ``/metrics`` aggregation);
* an :class:`~repro.resilience.admission.AdmissionController` whose
  circuit breaker trips on repeated solver failures, shedding load at
  the shard before it melts;
* a :class:`~repro.durability.JournalWriter` + snapshot store — the
  shard's write-ahead energy ledger, recovered on restart and audited
  by :func:`repro.cluster.ledger.audit_cluster`;
* an optional :class:`~repro.observe.slo.BurnRateMonitor` watching the
  shard's spend rate against its lease.

Trace identity crosses the process boundary in data, not context: every
request in a window envelope carries its ``trace_id``, the worker
re-opens :func:`~repro.telemetry.trace_scope` around the solve, and the
journal record carries the id — so one trace correlates the front-end
span, the worker's solve span and the durable ledger entry.

Energy discipline: the envelope carries the window's ``grant`` (joules
reserved from the shard's lease by the front-end).  The worker solves
each request with its instance budget clipped to the remaining grant,
deducts realised energy, and *sheds* requests (503, ``lease_exhausted``)
once the grant runs dry — it can never spend a joule the ledger did not
reserve.
"""

from __future__ import annotations

import dataclasses
import os
import queue
import signal
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, Optional, Sequence

from ..chaos import ChaosEvent, FaultInjector, WORKER_SITE
from ..core.instance import ProblemInstance
from ..core.serialization import instance_from_dict
from ..core.task import Task, TaskSet
from ..durability import JournalWriter, SnapshotStore, recover
from ..durability.journal import encode_record
from ..observe.slo import BurnRateMonitor
from ..overload.brownout import BROWNOUT_LADDER
from ..profile.phases import phase_breakdown
from ..profile.sampler import StackSampler
from ..resilience.admission import AdmissionController
from ..resilience.degrade import truncate_accuracy
from ..telemetry import MetricsRegistry, collector, trace_scope
from ..utils.errors import FallbackExhaustedError, ReproError, SolverTimeoutError
from .solve_service import SolveService, SolveServiceConfig, solve_payload

__all__ = ["WorkerConfig", "worker_main"]


class WorkerConfig:
    """Plain-data worker configuration (must survive pickling to the child)."""

    def __init__(
        self,
        shard: str,
        *,
        journal_dir: Optional[str] = None,
        solver_timeout: Optional[float] = None,
        fallback: bool = False,
        max_in_flight: int = 4,
        snapshot_every: int = 25,
        fsync: str = "always",
        lease_horizon_seconds: Optional[float] = None,
        chaos_events: Optional[Sequence[ChaosEvent]] = None,
        profile_hz: float = 19.0,
    ):
        self.shard = str(shard)
        self.journal_dir = journal_dir
        self.solver_timeout = solver_timeout
        self.fallback = bool(fallback)
        self.max_in_flight = int(max_in_flight)
        self.snapshot_every = int(snapshot_every)
        self.fsync = fsync
        self.lease_horizon_seconds = lease_horizon_seconds
        #: continuous-profiler sampling rate; ``0`` disables the sampler
        self.profile_hz = float(profile_hz)
        #: planned worker-site chaos faults (frozen dataclasses pickle across fork)
        self.chaos_events = tuple(chaos_events) if chaos_events else ()

    def service_config(self) -> SolveServiceConfig:
        return SolveServiceConfig(solver_timeout=self.solver_timeout, fallback=self.fallback)


class _ShardState:
    """Everything the worker loop owns; built once inside the child."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.telemetry = MetricsRegistry()
        self.service = SolveService(config.service_config())
        self.admission = AdmissionController(max_in_flight=config.max_in_flight)
        self.journal: Optional[JournalWriter] = None
        self.snapshots: Optional[SnapshotStore] = None
        self.energy_spent = 0.0
        self.solves_since_snapshot = 0
        self.solves_total = 0
        self.started_at = time.monotonic()
        self.burn: Optional[BurnRateMonitor] = None
        self.cancelled: set = set()  # trace ids the front-end withdrew (hedge losers)
        self.brownout_level = 0  # cluster-wide level stamped into window envelopes
        self.injector: Optional[FaultInjector] = None
        if config.chaos_events:
            self.injector = FaultInjector(config.chaos_events, telemetry=self.telemetry)
        # The always-on continuous profiler.  Started *here*, inside the
        # child process — a sampler thread must never be running in the
        # parent when a worker forks (its lock could be held mid-fork).
        self.sampler: Optional[StackSampler] = None
        if config.profile_hz > 0.0:
            self.sampler = StackSampler(self.telemetry, hz=config.profile_hz).start()
        if config.journal_dir is not None:
            state = recover(config.journal_dir)
            self.journal = JournalWriter(config.journal_dir, fsync=config.fsync)
            self.snapshots = SnapshotStore(config.journal_dir, fsync=config.fsync != "never")
            self.energy_spent = state.energy_spent
            kind = "resume" if state.total_records else "run_start"
            record: Dict[str, Any] = {"type": kind, "meta": {"kind": "cluster-shard", "shard": config.shard}}
            if kind == "resume":
                record["cum_energy"] = state.energy_spent
            self.journal.append(record)

    def arm_burn_monitor(self, lease: float) -> None:
        horizon = self.config.lease_horizon_seconds
        if horizon is None or lease <= 0.0:
            return
        self.burn = BurnRateMonitor(
            budget=lease,
            horizon=horizon,
            start_time=time.monotonic() - self.started_at,
            start_energy=self.energy_spent,
        )

    def journal_solve(self, scheduler_name: str, energy: float, trace_id: Optional[str]) -> None:
        """Commit one solve to the shard's WAL (single-threaded, no lock)."""
        self.energy_spent += float(energy)
        if self.journal is None:
            return
        record: Dict[str, Any] = {
            "type": "solve",
            "shard": self.config.shard,
            "scheduler": scheduler_name,
            "energy": float(energy),
            "cum_energy": self.energy_spent,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        self.journal.append(record)
        self.solves_since_snapshot += 1
        if self.config.snapshot_every > 0 and self.solves_since_snapshot >= self.config.snapshot_every:
            assert self.snapshots is not None
            self.snapshots.save(
                {
                    "meta": {"kind": "cluster-shard", "shard": self.config.shard},
                    "windows": [],
                    "cum_energy": self.energy_spent,
                    "level": -1,
                },
                journal_records=self.journal.record_count,
            )
            self.solves_since_snapshot = 0


def _brownout_instance(instance: ProblemInstance, level: int) -> ProblemInstance:
    """Apply the cluster-wide brownout level to one instance before solving.

    Level 1 caps each task's work at the rung's fraction of its maximum;
    levels 2+ force every task to its *lowest-θ variant* — the smallest
    positive breakpoint of its accuracy curve, i.e. the cheapest
    compression level the task ships with.  Tasks are never shed here
    (the front-end sheds whole best-effort *requests* at level 3); a
    browned-out window always answers every request, just less
    accurately.
    """
    if level <= 0:
        return instance
    rung = BROWNOUT_LADDER[min(level, len(BROWNOUT_LADDER) - 1)]
    tasks = []
    for task in instance.tasks:
        if rung.force_lowest:
            positive = task.accuracy.breakpoints[task.accuracy.breakpoints > 0]
            cap = float(positive[0]) if len(positive) else rung.work_cap_scale * task.f_max
        else:
            cap = rung.work_cap_scale * task.f_max
        acc = truncate_accuracy(task.accuracy, min(max(cap, 1e-12), task.f_max))
        tasks.append(Task(deadline=task.deadline, accuracy=acc, name=task.name))
    return ProblemInstance(TaskSet(tasks, assume_sorted=True), instance.cluster, instance.budget)


def _solve_one(state: _ShardState, item: Dict[str, Any], remaining_grant: float, enforce: bool):
    """One request of a window; returns ``(result_doc, energy_spent)``."""
    tele = state.telemetry
    shard = state.config.shard
    trace_id = item.get("trace_id")
    name = str(item.get("scheduler", "approx"))
    if enforce and remaining_grant <= 0.0:
        tele.counter("worker_shed_total", shard=shard, reason="lease_exhausted").inc()
        return {"status": 503, "error": "lease_exhausted", "retry_after": 1.0, "trace_id": trace_id}, 0.0

    if trace_id is not None and trace_id in state.cancelled:
        state.cancelled.discard(trace_id)
        tele.counter("worker_cancelled_total", shard=shard).inc()
        return {"status": 499, "error": "cancelled by front-end", "trace_id": trace_id}, 0.0

    decision = state.admission.try_begin()
    if not decision.admitted:
        tele.counter("worker_shed_total", shard=shard, reason=decision.reason).inc()
        return {
            "status": 503,
            "error": f"shard overloaded ({decision.reason})",
            "retry_after": max(decision.retry_after_seconds, 1.0),
            "trace_id": trace_id,
        }, 0.0
    try:
        instance = instance_from_dict(item["instance"])
        if enforce and instance.budget > remaining_grant:
            instance = dataclasses.replace(instance, budget=remaining_grant)
        if state.brownout_level > 0:
            instance = _brownout_instance(instance, state.brownout_level)
            tele.counter(
                "worker_brownout_solves_total", shard=shard, level=str(state.brownout_level)
            ).inc()
        scheduler = state.service.build_scheduler(name)
        scope = trace_scope(trace_id) if trace_id else None
        if scope is not None:
            scope.__enter__()
        try:
            with tele.span("worker.solve", shard=shard, scheduler=name):
                result = state.service.solve(scheduler, instance)
            energy = float(result.schedule.total_energy)
            state.journal_solve(scheduler.name, energy, trace_id)
        finally:
            if scope is not None:
                scope.__exit__(None, None, None)
    except (SolverTimeoutError, FallbackExhaustedError) as exc:
        state.admission.finish(failure=True)
        tele.counter("worker_errors_total", shard=shard, status="503").inc()
        return {
            "status": 503,
            "error": f"solve timed out: {exc}",
            "retry_after": max(state.admission.retry_after_seconds, 1.0),
            "trace_id": trace_id,
        }, 0.0
    except ReproError as exc:
        state.admission.finish(failure=True)
        tele.counter("worker_errors_total", shard=shard, status="400").inc()
        return {"status": 400, "error": str(exc), "trace_id": trace_id}, 0.0
    except Exception as exc:  # noqa: BLE001 — the worker must outlive any request
        state.admission.finish(failure=True)
        tele.counter("worker_errors_total", shard=shard, status="500").inc()
        return {
            "status": 500,
            "error": f"internal error: {exc}",
            "detail": traceback.format_exc(limit=3),
            "trace_id": trace_id,
        }, 0.0
    state.admission.finish(failure=False)
    state.solves_total += 1
    payload = solve_payload(scheduler.name, result, instance, trace_id=trace_id)
    payload["status"] = 200
    payload["shard"] = shard
    if state.burn is not None:
        for alert in state.burn.observe(time.monotonic() - state.started_at, state.energy_spent):
            tele.counter("shard_burn_alerts_total", shard=shard, severity=alert.severity).inc()
    return payload, energy


def _apply_worker_fault(state: _ShardState, event: ChaosEvent) -> bool:
    """Apply a fired worker-site fault; ``True`` means *drop the reply*.

    The fault is journalled into the shard's own WAL first (``recover``
    tolerates foreign event types), so a post-mortem read of the ledger
    shows the fault next to the solves it perturbed.  Fatal kinds do not
    return.
    """
    if state.journal is not None and event.kind != "worker_exit":
        state.journal.append({"type": "chaos_event", **event.to_dict()})
    if event.kind == "worker_stall":
        time.sleep(max(event.magnitude, 0.0))
    elif event.kind == "reply_drop":
        return True
    elif event.kind == "worker_kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif event.kind == "worker_exit":
        # A clean-but-silent exit: the journal closes intact, no ack is sent.
        if state.journal is not None:
            state.journal.append({"type": "chaos_event", **event.to_dict()})
            state.journal.close()
        os._exit(0)
    elif event.kind == "journal_torn_write":
        # Tear the WAL tail mid-record, then die hard: recovery must repair
        # the torn frame and keep every record before it.
        if state.journal is not None:
            frame = encode_record(
                {
                    "type": "solve",
                    "shard": state.config.shard,
                    "scheduler": "torn",
                    "energy": 0.0,
                    "cum_energy": state.energy_spent,
                }
            )
            state.journal._fh.write(frame[: max(len(frame) // 2, 4)])
            state.journal._fh.flush()
        os._exit(1)
    return False


def _handle_window(
    state: _ShardState,
    envelope: Dict[str, Any],
    drain: Optional[Callable[[], None]] = None,
) -> Optional[Dict[str, Any]]:
    grant = envelope.get("grant")
    enforce = grant is not None
    remaining = float(grant) if enforce else float("inf")
    if enforce and state.burn is None:
        state.arm_burn_monitor(float(envelope.get("lease", grant)))
    level = int(envelope.get("brownout", 0))
    if level != state.brownout_level:
        # The front-end moved the cluster-wide brownout level; journal the
        # transition into the shard WAL (recover tolerates foreign record
        # types) so a post-mortem read shows *when* accuracy was degraded.
        if state.journal is not None:
            state.journal.append(
                {"type": "brownout", "shard": state.config.shard, "from": state.brownout_level, "to": level}
            )
        state.brownout_level = level
        state.telemetry.gauge("worker_brownout_level").set(level)
    drop_reply = False
    if state.injector is not None:
        event = state.injector.fire(WORKER_SITE, state.config.shard)
        if event is not None:
            drop_reply = _apply_worker_fault(state, event)
    spent = 0.0
    results = []
    elapsed = []
    with state.telemetry.span("worker.window", shard=state.config.shard):
        for item in envelope.get("requests", []):
            if drain is not None:
                drain()  # pick up cancellations racing this window
            began = time.monotonic()
            doc, energy = _solve_one(state, item, remaining, enforce)
            elapsed.append(time.monotonic() - began)
            results.append(doc)
            remaining -= energy
            spent += energy
    if drop_reply:
        return None
    return {
        "op": "window_done",
        "batch_id": envelope["batch_id"],
        "shard": state.config.shard,
        "epoch": envelope.get("epoch"),
        "results": results,
        "elapsed": elapsed,
        "spent": spent,
        "cum_energy": state.energy_spent,
    }


def _handle_stats(state: _ShardState, envelope: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "op": "stats",
        "batch_id": envelope["batch_id"],
        "shard": state.config.shard,
        "energy_spent": state.energy_spent,
        "solves_total": state.solves_total,
        "breaker_state": state.admission.breaker.state,
        "brownout_level": state.brownout_level,
        "journal_records": state.journal.record_count if state.journal is not None else 0,
        "telemetry": state.telemetry.snapshot(),
        "burn_alerts": [a.severity for a in state.burn.alerts] if state.burn is not None else [],
    }


def _handle_profile(state: _ShardState, envelope: Dict[str, Any]) -> Dict[str, Any]:
    """The shard's continuous profile plus exact per-phase span splits."""
    return {
        "op": "profile",
        "batch_id": envelope["batch_id"],
        "shard": state.config.shard,
        "profile": state.sampler.profile() if state.sampler is not None else None,
        "phases": phase_breakdown(state.telemetry.snapshot()),
    }


def worker_main(config: WorkerConfig, requests: Any, replies: Any) -> None:
    """Entry point of a shard worker process (also runnable in-process).

    ``requests``/``replies`` are queue-like (``get()``/``put()``); the
    loop exits on a ``shutdown`` envelope, closing the journal cleanly.
    A fork-started child inherits the parent's context, so the worker
    activates its own registry for everything it runs.

    ``cancel`` envelopes are *control* traffic: they jump the line.  The
    loop drains the queue between window items so a hedge winner's
    cancellation reaches the loser before it burns energy on a solve
    whose result nobody will accept.
    """
    state = _ShardState(config)
    # Bounded: a front-end gone haywire cannot balloon the worker's memory.
    # Overflow drops the *oldest* queued envelope — its window is swept and
    # answered 503 by the front-end's stale-window sweeper.
    backlog: deque = deque(maxlen=4096)

    def _drain_control() -> None:
        while True:
            try:
                pulled = requests.get_nowait()
            except queue.Empty:
                return
            if isinstance(pulled, dict) and pulled.get("op") == "cancel":
                state.cancelled.update(pulled.get("trace_ids", []))
            else:
                backlog.append(pulled)

    with collector(state.telemetry):
        while True:
            if backlog:
                envelope = backlog.popleft()
            else:
                try:
                    envelope = requests.get(timeout=1.0)
                except queue.Empty:
                    continue
            op = envelope.get("op") if isinstance(envelope, dict) else "shutdown"
            if op == "shutdown":
                if state.journal is not None:
                    state.journal.close()
                replies.put({"op": "shutdown_ack", "shard": config.shard, "batch_id": envelope.get("batch_id")})
                return
            if op == "cancel":
                state.cancelled.update(envelope.get("trace_ids", []))
            elif op == "stats":
                replies.put(_handle_stats(state, envelope))
            elif op == "profile":
                replies.put(_handle_profile(state, envelope))
            elif op == "window":
                reply = _handle_window(state, envelope, _drain_control)
                if reply is not None:
                    replies.put(reply)
            else:
                replies.put(
                    {
                        "op": "error",
                        "batch_id": envelope.get("batch_id"),
                        "shard": config.shard,
                        "error": f"unknown op {op!r}",
                    }
                )
