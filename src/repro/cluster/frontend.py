"""The cluster front-end: route, batch, lease, dispatch, aggregate.

:class:`ClusterManager` is the control plane of a sharded solving
cluster.  It owns

* a pool of shard **worker processes** (:mod:`repro.cluster.worker`),
  each with its own journal, telemetry registry and circuit breaker;
* a :class:`~repro.cluster.router.ConsistentHashRouter` mapping each
  request's trace id to a shard (walking past dead shards);
* one :class:`~repro.cluster.batcher.WindowBatcher` per shard coalescing
  requests into bounded solve windows;
* the :class:`~repro.cluster.ledger.EnergyLeaseLedger` splitting the
  global budget ``B`` into per-shard leases, with a background
  rebalancer moving unspent headroom to the shards that are burning it;
* per-shard dispatcher threads that settle completed windows — resolving
  each request's :class:`~repro.cluster.batcher.PendingResult`,
  committing realised energy back to the ledger, and detecting worker
  death (in-flight requests answer 503, the grant is released, the ring
  routes around the corpse).

:func:`make_cluster_server` wraps a manager in the same thin HTTP
surface as :mod:`repro.server` — clients cannot tell one process from a
cluster — and :func:`serve_cluster` is the CLI entry point.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import math
import multiprocessing
import queue
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__ as _pkg_version
from ..algorithms.registry import available_schedulers
from ..chaos import REBALANCE_SITE, RELEASE_SITE, SUBMIT_SITE, FaultInjector
from ..durability import JournalWriter
from ..observe.tracing import to_trace_events, trace_spans, valid_trace_id
from ..overload.brownout import BrownoutController
from ..overload.controller import AdmitRateController, DeadlineShedder, normalize_priority
from ..overload.signals import QueueDelaySignal
from ..profile.exports import merge_profiles
from ..profile.phases import hottest_phases, merge_phase_breakdowns, phase_breakdown
from ..resilience.admission import AdmissionController
from ..telemetry import MetricsRegistry, collector, new_trace_id, prometheus_text, trace_scope
from ..utils.errors import ValidationError
from ..utils.validation import check_positive, require
from .batcher import PendingResult, QueueFullError, WindowBatcher
from .ledger import EnergyLeaseLedger
from .router import ConsistentHashRouter
from .supervisor import ShardSupervisor
from .worker import WorkerConfig, worker_main

__all__ = ["ClusterConfig", "ClusterManager", "make_cluster_server", "serve_cluster"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ClusterConfig:
    """Knobs of a cluster: topology, batching, budget and resilience."""

    def __init__(
        self,
        *,
        shards: int = 2,
        budget: Optional[float] = None,
        journal_root: Optional[str] = None,
        max_batch: int = 8,
        max_wait_seconds: float = 0.01,
        solver_timeout: Optional[float] = None,
        fallback: bool = False,
        max_in_flight: int = 4,
        request_timeout_seconds: float = 30.0,
        rebalance_seconds: float = 2.0,
        min_share: float = 0.05,
        replicas: int = 64,
        fsync: str = "rotate",
        snapshot_every: int = 25,
        lease_horizon_seconds: Optional[float] = None,
        supervise: bool = True,
        heartbeat_seconds: float = 0.25,
        max_restarts: int = 3,
        max_retries: int = 2,
        retry_backoff_seconds: float = 0.05,
        hedge_after_seconds: Optional[float] = None,
        queue_target_seconds: Optional[float] = None,
        brownout_target_p99_seconds: Optional[float] = None,
        brownout_dwell_seconds: float = 1.0,
        max_queue_per_shard: int = 1024,
        adaptive_lifo: bool = False,
        min_admit_rate: float = 0.05,
        profile_hz: float = 19.0,
    ):
        require(shards >= 1, f"cluster needs at least one shard, got {shards}")
        check_positive(request_timeout_seconds, "request_timeout_seconds")
        check_positive(rebalance_seconds, "rebalance_seconds")
        check_positive(heartbeat_seconds, "heartbeat_seconds")
        require(max_restarts >= 0, f"max_restarts must be >= 0, got {max_restarts}")
        require(max_retries >= 0, f"max_retries must be >= 0, got {max_retries}")
        check_positive(retry_backoff_seconds, "retry_backoff_seconds")
        if hedge_after_seconds is not None:
            check_positive(hedge_after_seconds, "hedge_after_seconds")
        if queue_target_seconds is not None:
            check_positive(queue_target_seconds, "queue_target_seconds")
        if brownout_target_p99_seconds is not None:
            check_positive(brownout_target_p99_seconds, "brownout_target_p99_seconds")
        check_positive(brownout_dwell_seconds, "brownout_dwell_seconds")
        require(max_queue_per_shard >= 1, f"max_queue_per_shard must be >= 1, got {max_queue_per_shard}")
        require(0.0 < min_admit_rate <= 1.0, f"min_admit_rate must lie in (0, 1], got {min_admit_rate}")
        self.shards = int(shards)
        self.budget = budget
        self.journal_root = journal_root
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_seconds)
        self.solver_timeout = solver_timeout
        self.fallback = bool(fallback)
        self.max_in_flight = int(max_in_flight)
        self.request_timeout_seconds = float(request_timeout_seconds)
        self.rebalance_seconds = float(rebalance_seconds)
        self.min_share = float(min_share)
        self.replicas = int(replicas)
        self.fsync = fsync
        self.snapshot_every = int(snapshot_every)
        self.lease_horizon_seconds = lease_horizon_seconds
        self.supervise = bool(supervise)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.max_restarts = int(max_restarts)
        self.max_retries = int(max_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self.hedge_after_seconds = hedge_after_seconds
        #: adaptive-admission target queue delay; ``None`` disables AIMD
        self.queue_target_seconds = queue_target_seconds
        #: brownout-ladder p99 target; ``None`` disables the brownout controller
        self.brownout_target_p99_seconds = brownout_target_p99_seconds
        self.brownout_dwell_seconds = float(brownout_dwell_seconds)
        self.max_queue_per_shard = int(max_queue_per_shard)
        self.adaptive_lifo = bool(adaptive_lifo)
        self.min_admit_rate = float(min_admit_rate)
        require(profile_hz >= 0.0, f"profile_hz must be >= 0, got {profile_hz}")
        #: per-worker continuous-profiler rate; ``0`` turns profiling off
        self.profile_hz = float(profile_hz)

    def shard_ids(self) -> List[str]:
        return [f"shard-{i:02d}" for i in range(self.shards)]


class _ShardHandle:
    """One shard as the front-end sees it: process, queues, batcher."""

    def __init__(self, shard: str):
        self.shard = shard
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.requests: Any = None
        self.replies: Any = None
        self.batcher: Optional[WindowBatcher] = None
        self.dispatcher: Optional[threading.Thread] = None
        self.alive = False
        self.lock = threading.Lock()
        #: windows sent but not yet settled:
        #: batch_id -> (kind, payload, grant, epoch, sent_at)
        self.inflight: Dict[int, Tuple[str, Any, float, int, float]] = {}
        self.epoch = 0  #: lease epoch of the current worker generation
        self.restarts = 0  #: generations spawned beyond the first


class _ShardOverload:
    """One shard's closed-loop admission state at the front-end.

    The measured queue-delay signal feeds three consumers: the AIMD
    admit-rate controller (created only when the cluster has a
    ``queue_target_seconds``), the conservative deadline shedder, and —
    aggregated across shards — the cluster-wide brownout controller.
    The per-shard :class:`AdmissionController` is the same object the
    plain HTTP server uses; its pluggable ``load_signal`` is where the
    adaptive logic plugs in, replacing front-end-local threshold code.
    """

    def __init__(self, shard: str, config: ClusterConfig, brownout: Optional[BrownoutController]):
        self.shard = shard
        # The signal's recency horizon tracks the control cadence: a few
        # rebalance ticks of history is enough for a stable p99, and the
        # signal then decays as fast as the controllers can react — a
        # storm's sojourns must not dominate the statistics (and pin the
        # brownout ladder high) long after the queue has drained.
        self.signal = QueueDelaySignal(
            max_age_seconds=max(4.0 * config.rebalance_seconds, 1.0)
        )
        self.controller: Optional[AdmitRateController] = None
        if config.queue_target_seconds is not None:
            self.controller = AdmitRateController(
                target_delay_seconds=config.queue_target_seconds,
                min_rate=config.min_admit_rate,
            )
        self.shedder = DeadlineShedder(self.signal)
        self._brownout = brownout
        self.admission = AdmissionController(
            max_in_flight=config.max_queue_per_shard,
            retry_after_seconds=1.0,
            load_signal=self._load_signal,
        )

    def _load_signal(self, priority: Optional[str]) -> Optional[Tuple[str, float]]:
        cls = normalize_priority(priority)
        if (
            self._brownout is not None
            and self._brownout.current.shed_best_effort
            and cls == "best_effort"
        ):
            return ("brownout_shed", 2.0)
        if self.controller is not None and not self.controller.admit(cls):
            return ("overload", 1.0)
        return None


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform has it (workers start before traffic, so the
    fork is taken from a quiescent parent); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _shed_doc(reason: str, retry_after: float, trace_id: Optional[str] = None) -> Dict[str, Any]:
    return {"status": 503, "error": reason, "retry_after": retry_after, "trace_id": trace_id}


class ClusterManager:
    """Start, drive and stop a sharded solving cluster (thread-safe)."""

    def __init__(
        self,
        config: ClusterConfig,
        *,
        telemetry: Optional[MetricsRegistry] = None,
        injector: Optional[FaultInjector] = None,
    ):
        self.config = config
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.injector = injector
        ids = config.shard_ids()
        self.router = ConsistentHashRouter(ids, replicas=config.replicas)
        self.ledger = EnergyLeaseLedger(config.budget, ids, min_share=config.min_share)
        self._handles: Dict[str, _ShardHandle] = {s: _ShardHandle(s) for s in ids}
        self._batch_ids = itertools.count(1)
        self._started = False
        self._stopping = threading.Event()
        self._rebalancer: Optional[threading.Thread] = None
        self._supervisor: Optional[ShardSupervisor] = None
        self._retry_rng = random.Random()  # jitter only; never part of chaos determinism
        self._overload_journal: Optional[JournalWriter] = None
        self.brownout: Optional[BrownoutController] = None
        if config.brownout_target_p99_seconds is not None:
            if config.journal_root is not None:
                self._overload_journal = JournalWriter(
                    f"{config.journal_root}/overload-journal", fsync="rotate"
                )
            with collector(self.telemetry):
                self.brownout = BrownoutController(
                    target_p99_seconds=config.brownout_target_p99_seconds,
                    min_dwell_seconds=config.brownout_dwell_seconds,
                    on_transition=self._journal_brownout,
                )
        self._overload: Dict[str, _ShardOverload] = {
            s: _ShardOverload(s, config, self.brownout) for s in ids
        }

    def _journal_brownout(self, old: int, new: int, p99: float) -> None:
        """Durably record a brownout transition (rebalancer thread only)."""
        if self._overload_journal is not None:
            self._overload_journal.append(
                {"type": "brownout_transition", "from": old, "to": new, "p99": p99}
            )

    # -- lifecycle -------------------------------------------------------------

    def _spawn_shard(self, handle: _ShardHandle, *, with_chaos: bool) -> None:
        """Bring up one worker generation: queues, process, dispatcher, batcher.

        Only the *first* generation carries planned chaos faults — a
        restarted worker runs fault-free so campaigns terminate instead
        of killing every replacement on the same trigger.
        """
        ctx = _mp_context()
        shard = handle.shard
        chaos_events = (
            self.injector.worker_events(shard) if with_chaos and self.injector is not None else None
        )
        worker_config = WorkerConfig(
            shard,
            journal_dir=(
                None
                if self.config.journal_root is None
                else f"{self.config.journal_root}/{shard}"
            ),
            solver_timeout=self.config.solver_timeout,
            fallback=self.config.fallback,
            max_in_flight=self.config.max_in_flight,
            snapshot_every=self.config.snapshot_every,
            fsync=self.config.fsync,
            lease_horizon_seconds=self.config.lease_horizon_seconds,
            chaos_events=chaos_events,
            profile_hz=self.config.profile_hz,
        )
        handle.requests = ctx.Queue()
        handle.replies = ctx.Queue()
        handle.process = ctx.Process(
            target=worker_main,
            args=(worker_config, handle.requests, handle.replies),
            name=f"repro-{shard}",
            daemon=True,
        )
        handle.process.start()
        handle.epoch = self.ledger.epoch_of(shard)
        # One context copy per thread: a Context object cannot be
        # entered by two threads at once.
        dispatch_context = contextvars.copy_context()
        handle.dispatcher = threading.Thread(
            target=lambda c=dispatch_context, h=handle: c.run(self._dispatch_loop, h),
            name=f"repro-dispatch-{shard}",
            daemon=True,
        )
        handle.dispatcher.start()
        handle.batcher = WindowBatcher(
            lambda batch, h=handle: self._send_window(h, batch),
            max_batch=self.config.max_batch,
            max_wait_seconds=self.config.max_wait_seconds,
            name=f"window_{shard.replace('-', '_')}",
            max_queue=self.config.max_queue_per_shard,
            lifo_threshold=(4 * self.config.max_batch) if self.config.adaptive_lifo else None,
        )
        # ``alive`` gates routing, so it must flip last: on a restart the
        # handle still carries the dead generation's *closed* batcher
        # until the line above, and a request routed in that window would
        # be shed 503 by a shard that is in fact coming up.
        handle.alive = True

    def start(self) -> "ClusterManager":
        require(not self._started, "cluster already started")
        self._started = True
        for handle in self._handles.values():
            self._spawn_shard(handle, with_chaos=True)
        rebalance_context = contextvars.copy_context()
        self._rebalancer = threading.Thread(
            target=lambda: rebalance_context.run(self._rebalance_loop),
            name="repro-rebalancer",
            daemon=True,
        )
        self._rebalancer.start()
        if self.config.supervise:
            self._supervisor = ShardSupervisor(
                self,
                heartbeat_seconds=self.config.heartbeat_seconds,
                max_restarts=self.config.max_restarts,
            )
            self._supervisor.start()
        return self

    @staticmethod
    def _close_queue(q: Any) -> None:
        """Close one mp queue and reap its feeder thread (idempotent)."""
        if q is None:
            return
        try:
            q.close()
            q.join_thread()
        except (OSError, ValueError):  # pragma: no cover — already torn down
            pass

    def stop(self, *, timeout: float = 5.0) -> None:
        if not self._started or self._stopping.is_set():
            return
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.stop()
        for handle in self._handles.values():
            if handle.batcher is not None:
                handle.batcher.close(drain=False)
        for handle in self._handles.values():
            if handle.alive and handle.requests is not None:
                try:
                    handle.requests.put({"op": "shutdown", "batch_id": 0})
                except (OSError, ValueError):  # pragma: no cover — queue torn down
                    pass
        for handle in self._handles.values():
            if handle.process is not None:
                handle.process.join(timeout=timeout)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            handle.alive = False
            if handle.dispatcher is not None:
                handle.dispatcher.join(timeout=1.0)
            # A dead queue keeps a feeder thread (and its pipe) alive until
            # closed — the flaky-teardown source under pytest reruns.
            self._close_queue(handle.requests)
            self._close_queue(handle.replies)
        if self._overload_journal is not None:
            self._overload_journal.close()

    def __enter__(self) -> "ClusterManager":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- the request path ------------------------------------------------------

    def healthy_shards(self) -> Set[str]:
        return {s for s, h in self._handles.items() if h.alive}

    def submit(
        self,
        scheduler: str,
        instance_doc: Dict[str, Any],
        *,
        trace_id: Optional[str] = None,
        timeout: Optional[float] = None,
        priority: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Route one solve request through the cluster; blocks for the result.

        Returns the worker's response document (``status`` 200/4xx/5xx),
        or a synthesized 503/504 when no shard could serve it.  The
        request's trace id keys the consistent-hash routing, so retries
        of the same trace land on the same shard while topology holds.

        ``priority`` names the request's class (interactive / standard /
        best-effort; unknown values read as standard) — it weights the
        batcher dequeue, orders who sheds first under overload, and at
        brownout level 3 the best-effort class is rejected outright.
        ``deadline_seconds`` is the client's completion deadline from
        *now*: a request certain to miss it (measured against the
        shard's optimistic service floor) is shed 503 up front and again
        just before dispatch, so doomed work never reserves energy.
        """
        tid = trace_id or new_trace_id()
        cls = normalize_priority(priority)
        with collector(self.telemetry), trace_scope(tid):
            try:
                shard = self.router.route(tid, healthy=self.healthy_shards())
            except KeyError:
                self.telemetry.counter("frontend_rejected_total", reason="no_healthy_shards").inc()
                return _shed_doc("no healthy shards", 5.0, tid)
            handle = self._handles[shard]
            state = self._overload[shard]
            if self.injector is not None:
                event = self.injector.fire(SUBMIT_SITE, shard)
                if event is not None and event.kind == "arrival_burst":
                    self._inject_burst(handle, int(event.magnitude), scheduler, instance_doc)
            if deadline_seconds is not None and state.shedder.doomed(float(deadline_seconds)):
                self.telemetry.counter(
                    "overload_shed_total", reason="deadline_doomed", **{"class": cls}
                ).inc()
                return _shed_doc("deadline_doomed", 1.0, tid)
            decision = state.admission.try_begin(priority=cls)
            if not decision.admitted:
                self.telemetry.counter(
                    "overload_shed_total", reason=decision.reason, **{"class": cls}
                ).inc()
                return _shed_doc(decision.reason, max(decision.retry_after_seconds, 1.0), tid)
            try:
                return self._submit_admitted(
                    handle, scheduler, instance_doc, tid, cls, timeout, deadline_seconds
                )
            finally:
                # The front-end breaker never counts request failures —
                # worker-side breakers own that; this slot is a queue bound.
                state.admission.finish(failure=False)

    def _submit_admitted(
        self,
        handle: _ShardHandle,
        scheduler: str,
        instance_doc: Dict[str, Any],
        tid: str,
        cls: str,
        timeout: Optional[float],
        deadline_seconds: Optional[float],
    ) -> Dict[str, Any]:
        shard = handle.shard
        now = time.monotonic()
        item: Dict[str, Any] = {
            "scheduler": scheduler,
            "instance": instance_doc,
            "trace_id": tid,
            "priority": cls,
            "_enqueued": now,
        }
        if deadline_seconds is not None:
            item["_deadline_at"] = now + float(deadline_seconds)
        hedged: List[Tuple[_ShardHandle, Dict[str, Any]]] = [(handle, item)]
        deadline = now + (timeout or self.config.request_timeout_seconds)
        with self.telemetry.span("frontend.request", shard=shard, scheduler=scheduler):
            try:
                assert handle.batcher is not None
                pending = handle.batcher.submit(item, priority=cls)
            except QueueFullError:
                self.telemetry.counter(
                    "overload_shed_total", reason="queue_full", **{"class": cls}
                ).inc()
                return _shed_doc("queue_full", 1.0, tid)
            except ValidationError:
                return _shed_doc(f"shard {shard} is shutting down", 5.0, tid)
            try:
                hedge_after = self.config.hedge_after_seconds
                if hedge_after is not None and hedge_after < deadline - time.monotonic():
                    try:
                        result = pending.wait(hedge_after)
                    except TimeoutError:
                        loser = self._launch_hedge(tid, item, shard, pending)
                        if loser is not None:
                            hedged.append(loser)
                        result = pending.wait(max(deadline - time.monotonic(), 0.001))
                else:
                    result = pending.wait(max(deadline - time.monotonic(), 0.001))
            except TimeoutError:
                self._abandon(hedged, tid)
                self.telemetry.counter("frontend_rejected_total", reason="timeout").inc()
                return {"status": 504, "error": "request timed out in the cluster", "trace_id": tid}
            except Exception as exc:  # noqa: BLE001 — dispatch failure surfaces as 500
                self.telemetry.counter("frontend_rejected_total", reason="dispatch_error").inc()
                return {"status": 500, "error": f"dispatch failed: {exc}", "trace_id": tid}
        if len(hedged) > 1:
            self._cancel_losers(hedged, result, tid)
        return result

    def _inject_burst(
        self, handle: _ShardHandle, count: int, scheduler: str, instance_doc: Dict[str, Any]
    ) -> None:
        """An ``arrival_burst`` chaos fault: flood the shard's queue.

        The burst is ``count`` best-effort copies of the arriving request
        with throwaway pending results — nobody waits on them, but they
        queue, solve, spend lease, and drive the measured queue delay up,
        which is exactly what exercises the admission/brownout loop.
        """
        now = time.monotonic()
        submitted = 0
        for _ in range(max(count, 0)):
            item = {
                "scheduler": scheduler,
                "instance": instance_doc,
                "trace_id": new_trace_id(),
                "priority": "best_effort",
                "_enqueued": now,
                "_synthetic": True,
            }
            try:
                assert handle.batcher is not None
                handle.batcher.submit(item, priority="best_effort")
            except (ValidationError, AssertionError):
                break
            submitted += 1
        if submitted:
            self.telemetry.counter(
                "chaos_burst_requests_total", shard=handle.shard
            ).add(submitted)

    def _launch_hedge(
        self,
        tid: str,
        item: Dict[str, Any],
        primary: str,
        pending: PendingResult,
    ) -> Optional[Tuple[_ShardHandle, Dict[str, Any]]]:
        """Dispatch a hedge copy to the clockwise-next healthy shard.

        Both dispatches share one :class:`PendingResult`; first response
        wins (settlement is one-shot) and the loser is cancelled by
        :meth:`_cancel_losers` once a winner lands.
        """
        healthy = self.healthy_shards() - {primary}
        if not healthy:
            return None
        try:
            failover = self.router.route(tid, healthy=healthy)
        except KeyError:  # pragma: no cover — healthy is non-empty
            return None
        failover_handle = self._handles[failover]
        hedge_item = dict(item)
        hedge_item["_hedge"] = True
        try:
            assert failover_handle.batcher is not None
            failover_handle.batcher.submit(
                hedge_item, pending=pending, priority=hedge_item.get("priority")
            )
        except (ValidationError, AssertionError):
            return None
        self.telemetry.counter("frontend_hedges_total", shard=failover).inc()
        return (failover_handle, hedge_item)

    def _cancel_losers(
        self,
        hedged: List[Tuple[_ShardHandle, Dict[str, Any]]],
        result: Dict[str, Any],
        tid: str,
    ) -> None:
        """Withdraw every hedge copy the winner made redundant.

        A copy still queued is evicted before it ever reserves lease; a
        copy already inside a window is cancelled on the worker (it
        answers 499 with zero energy, so the window commit returns the
        loser's entire grant share to the lease).
        """
        winner = result.get("shard") if isinstance(result, dict) else None
        for loser_handle, loser_item in hedged:
            if winner is not None and loser_handle.shard == winner:
                continue
            if loser_handle.batcher is not None and loser_handle.batcher.evict(loser_item):
                mode = "evicted"
            else:
                mode = "cancelled"
                try:
                    loser_handle.requests.put({"op": "cancel", "trace_ids": [tid]})
                except (OSError, ValueError, AttributeError):  # pragma: no cover — shard torn down
                    continue
            self.telemetry.counter(
                "frontend_hedge_cancels_total", shard=loser_handle.shard, mode=mode
            ).inc()

    def _abandon(self, hedged: List[Tuple[_ShardHandle, Dict[str, Any]]], tid: str) -> None:
        """A caller gave up: evict its copies so the pending map cannot leak."""
        for loser_handle, loser_item in hedged:
            if loser_handle.batcher is not None and loser_handle.batcher.evict(loser_item):
                self.telemetry.counter("frontend_abandoned_total", shard=loser_handle.shard).inc()

    def _reserve_for(self, shard: str, batch: List[Tuple[Dict[str, Any], PendingResult]]) -> float:
        """How much lease to reserve for a window: the sum of the requests'
        own budgets (an infinite budget asks for the whole lease — the
        reservation clips to headroom either way)."""
        lease = self.ledger.lease_of(shard)
        ask = 0.0
        for item, _ in batch:
            raw = item["instance"].get("budget", "inf")
            value = float(raw)
            ask += lease if math.isinf(value) else value
        return self.ledger.reserve(shard, min(ask, lease))

    def _shed_doomed(
        self, handle: _ShardHandle, batch: List[Tuple[Dict[str, Any], PendingResult]]
    ) -> List[Tuple[Dict[str, Any], PendingResult]]:
        """Drop window members now certain to miss their deadline.

        This runs *before* the window reserves its lease grant, so a
        doomed request never spends a joule of B — the refund is by
        construction, not by release.  Doom is judged against the
        shard's optimistic service floor (see ``DeadlineShedder``), so a
        request an idle shard could still have served in time survives.
        """
        state = self._overload[handle.shard]
        now = time.monotonic()
        kept: List[Tuple[Dict[str, Any], PendingResult]] = []
        for item, pending in batch:
            deadline_at = item.get("_deadline_at")
            if deadline_at is not None and state.shedder.doomed(deadline_at - now):
                cls = normalize_priority(item.get("priority"))
                self.telemetry.counter(
                    "overload_shed_total", reason="deadline_doomed", **{"class": cls}
                ).inc()
                pending.resolve(_shed_doc("deadline_doomed", 1.0, item.get("trace_id")))
                continue
            if deadline_at is not None and deadline_at - now <= 0.0:
                # Live invariant check: doomed() must have shed this above;
                # the benchmark gates on this staying at zero.
                self.telemetry.counter("overload_doomed_dispatched_total").inc()
            kept.append((item, pending))
        return kept

    def _send_window(self, handle: _ShardHandle, batch: List[Tuple[Dict[str, Any], PendingResult]]) -> None:
        """Batcher dispatch: reserve the grant and ship the window."""
        if not handle.alive:
            for item, pending in batch:
                pending.resolve(_shed_doc(f"shard {handle.shard} is down", 2.0, item.get("trace_id")))
            return
        batch = self._shed_doomed(handle, batch)
        if not batch:
            return
        batch_id = next(self._batch_ids)
        grant: Optional[float] = None
        if self.ledger.budget is not None:
            grant = self._reserve_for(handle.shard, batch)
        try:
            envelope: Dict[str, Any] = {
                "op": "window",
                "batch_id": batch_id,
                "epoch": handle.epoch,
                # Underscore keys are front-end bookkeeping (_attempts, _hedge);
                # the worker never sees them.
                "requests": [
                    {k: v for k, v in item.items() if not k.startswith("_")} for item, _ in batch
                ],
            }
            if self.brownout is not None:
                envelope["brownout"] = self.brownout.level
            if grant is not None:
                envelope["grant"] = grant
                envelope["lease"] = self.ledger.lease_of(handle.shard)
            with handle.lock:
                handle.inflight[batch_id] = ("window", batch, grant or 0.0, handle.epoch, time.monotonic())
        except BaseException:
            # The grant never reached the inflight map, so no settle path
            # (reply, death sweep, stale sweep) will ever see it: release
            # it here or it leaks as a phantom reservation forever.
            if grant is not None:
                self.ledger.release(handle.shard, grant, epoch=handle.epoch)
            raise
        try:
            handle.requests.put(envelope)
        except (OSError, ValueError):
            with handle.lock:
                handle.inflight.pop(batch_id, None)
            if grant is not None:
                self.ledger.release(handle.shard, grant, epoch=handle.epoch)
            for item, pending in batch:
                pending.resolve(_shed_doc(f"shard {handle.shard} unreachable", 2.0, item.get("trace_id")))

    def _settle_window(
        self,
        handle: _ShardHandle,
        entry: Tuple[str, Any, float, int, float],
        reply: Dict[str, Any],
    ) -> None:
        _, batch, grant, epoch, _ = entry
        results = reply.get("results", [])
        elapsed = reply.get("elapsed", [])
        state = self._overload[handle.shard]
        now = time.monotonic()
        for index, (item, pending) in enumerate(batch):
            if index < len(results):
                delivered = pending.resolve(results[index])
                if not delivered and results[index].get("status") == 200:
                    # A hedge loser finished anyway: the solve is wasted
                    # energy but the client saw exactly one result.
                    self.telemetry.counter(
                        "frontend_duplicate_results_total", shard=handle.shard
                    ).inc()
            else:  # pragma: no cover — a worker always answers the full window
                pending.resolve(_shed_doc("window truncated by worker", 2.0, item.get("trace_id")))
            # Feed the overload loop: the settled request's sojourn time
            # (submit -> result) drives AIMD admission and (aggregated)
            # the brownout controller; its solve time tightens the
            # deadline shedder's optimistic service floor.
            enqueued = item.get("_enqueued")
            if enqueued is not None:
                sojourn = max(now - float(enqueued), 0.0)
                state.signal.observe_sojourn(sojourn)
                if state.controller is not None:
                    state.controller.observe(sojourn)
                # The dispatcher thread has no ambient trace context, so
                # re-open the settling request's scope around the observe:
                # that is what lets the histogram capture an exemplar
                # linking its worst bucket to this request's /trace/<id>.
                tid = item.get("trace_id")
                with trace_scope(tid) if tid else contextlib.nullcontext():
                    self.telemetry.histogram(
                        "frontend_queue_delay_seconds",
                        buckets=(0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0),
                    ).observe(sojourn)
            if index < len(elapsed):
                state.signal.observe_service(float(elapsed[index]))
        if self.ledger.budget is None:
            return
        spent = float(reply.get("spent", 0.0))
        try:
            committed = self.ledger.commit(handle.shard, grant, spent, epoch=epoch)
        except ValidationError:
            # The worker overran its grant — record the whole grant as spent
            # (conservative: the ledger must never under-count) and flag it.
            self.telemetry.counter("lease_overruns_total", shard=handle.shard).inc()
            committed = self.ledger.commit(handle.shard, grant, grant, epoch=epoch)
        if not committed and spent > 0.0:
            # The window raced an epoch bump: its generation is fenced but
            # the energy was physically burned and journalled.  Re-record
            # it under the current epoch (grant=spend — the old epoch's
            # reservations were already dropped by the bump) so the
            # in-memory ledger never under-counts the durable one.
            self.ledger.commit(handle.shard, spent, spent)
            self.telemetry.counter("lease_fenced_spend_recommits_total", shard=handle.shard).inc()

    def _shard_died(self, handle: _ShardHandle) -> None:
        """A worker stopped answering: fence its generation, fail over.

        Every orphaned grant is committed *in full* rather than released:
        the dead worker may have journalled spend the front-end never saw,
        and the in-memory ledger must never under-count the durable one
        (released headroom would be re-granted — and re-spent — while the
        journal already holds the first spend).  Orphaned requests retry
        on surviving shards with backoff; the epoch bump fences any
        straggler commit of the dead generation.
        """
        with handle.lock:
            if not handle.alive:
                return  # dispatcher and supervisor raced; first caller wins
            handle.alive = False
            orphans = list(handle.inflight.values())
            handle.inflight.clear()
        self.telemetry.counter("shard_deaths_total", shard=handle.shard).inc()
        if handle.batcher is not None:
            handle.batcher.close(drain=False)
        for kind, payload, grant, epoch, _ in orphans:
            if grant and self.ledger.budget is not None:
                if self.injector is not None:
                    event = self.injector.fire(RELEASE_SITE, handle.shard)
                    if event is not None:
                        time.sleep(max(event.magnitude, 0.0))
                if self.ledger.commit(handle.shard, grant, grant, epoch=epoch):
                    self.telemetry.counter(
                        "lease_conservative_commits_total", shard=handle.shard
                    ).inc()
            if kind == "window":
                for item, pending in payload:
                    self._retry_or_fail(
                        item, pending, f"shard {handle.shard} died mid-request"
                    )
            else:
                payload.fail(ChildProcessError(f"shard {handle.shard} died"))
        self.ledger.bump_epoch(handle.shard)

    # -- retry / resubmission ---------------------------------------------------

    def _retry_or_fail(self, item: Dict[str, Any], pending: PendingResult, reason: str) -> None:
        """Requeue an orphaned request with bounded backoff, or 503 it."""
        if pending.done:
            return
        attempts = int(item.get("_attempts", 0))
        if not self.config.supervise or attempts >= self.config.max_retries:
            pending.resolve(_shed_doc(reason, 2.0, item.get("trace_id")))
            return
        item["_attempts"] = attempts + 1
        delay = (
            self.config.retry_backoff_seconds
            * (2.0**attempts)
            * (0.5 + self._retry_rng.random())
        )
        self.telemetry.counter("frontend_retries_total").inc()
        timer = threading.Timer(delay, self._resubmit, args=(item, pending, reason))
        timer.daemon = True
        timer.start()

    def _resubmit(self, item: Dict[str, Any], pending: PendingResult, reason: str) -> None:
        """Timer body: re-route a retried request to a currently-healthy shard."""
        if pending.done or self._stopping.is_set():
            return
        tid = item.get("trace_id")
        try:
            shard = self.router.route(str(tid), healthy=self.healthy_shards())
        except KeyError:
            pending.resolve(_shed_doc("no healthy shards", 5.0, tid))
            return
        handle = self._handles[shard]
        try:
            assert handle.batcher is not None
            handle.batcher.submit(item, pending=pending, priority=item.get("priority"))
        except (ValidationError, AssertionError):
            # The chosen shard shut its batcher between route and submit;
            # burn one more attempt rather than dropping the request.
            self._retry_or_fail(item, pending, reason)

    def _dispatch_loop(self, handle: _ShardHandle) -> None:
        """Per-shard reply pump: settle windows, watch for worker death."""
        while not self._stopping.is_set():
            try:
                reply = handle.replies.get(timeout=0.2)
            except queue.Empty:
                if handle.alive and handle.process is not None and not handle.process.is_alive():
                    self._shard_died(handle)
                    return
                continue
            except (OSError, ValueError):  # pragma: no cover — queue torn down
                return
            if reply.get("op") == "shutdown_ack":
                return
            with handle.lock:
                entry = handle.inflight.pop(reply.get("batch_id"), None)
            if entry is None:
                continue
            if entry[0] == "window":
                self._settle_window(handle, entry, reply)
            else:
                entry[1].resolve(reply)

    # -- supervision hooks -------------------------------------------------------

    def _restart_shard(self, handle: _ShardHandle) -> None:
        """Bring up a replacement worker generation for a dead shard.

        The epoch was bumped on the death path, so the replacement's
        grants carry a fresh fencing token; the new worker recovers the
        shard journal on startup (its cumulative-energy chain resumes
        where the crashed generation's last durable record left it).
        """
        self._close_queue(handle.requests)
        self._close_queue(handle.replies)
        if handle.dispatcher is not None:
            handle.dispatcher.join(timeout=1.0)
        handle.restarts += 1
        self._spawn_shard(handle, with_chaos=False)
        self.telemetry.counter("shard_restarts_total", shard=handle.shard).inc()

    def _sweep_stale(self) -> None:
        """Reap windows whose reply will never come (e.g. a dropped reply).

        Without this, a reply-queue drop leaks the window's grant as
        permanent phantom reservation.  The grant is committed in full —
        never released — because the worker may well have solved the
        window and journalled the spend; only the reply vanished.  The
        horizon sits at half the request timeout so the victims resolve
        as explicit 503s while their callers are still waiting (a late
        genuine reply finds its in-flight entry gone and is ignored —
        the pending settles exactly once).
        """
        horizon = 0.5 * self.config.request_timeout_seconds
        now = time.monotonic()
        for handle in self._handles.values():
            if not handle.alive:
                continue
            with handle.lock:
                stale = [
                    (batch_id, entry)
                    for batch_id, entry in handle.inflight.items()
                    if entry[0] == "window" and now - entry[4] > horizon
                ]
                for batch_id, _ in stale:
                    handle.inflight.pop(batch_id, None)
            for _, (kind, batch, grant, epoch, _sent) in stale:
                if grant and self.ledger.budget is not None:
                    self.ledger.commit(handle.shard, grant, grant, epoch=epoch)
                for item, pending in batch:
                    pending.resolve(
                        _shed_doc(f"shard {handle.shard} never answered", 2.0, item.get("trace_id"))
                    )
                self.telemetry.counter("frontend_swept_windows_total", shard=handle.shard).inc()

    # -- rebalancing -----------------------------------------------------------

    def _rebalance_loop(self) -> None:
        with collector(self.telemetry):
            period = self.config.rebalance_seconds
            while not self._stopping.wait(period):
                period = self.config.rebalance_seconds
                if self.injector is not None:
                    event = self.injector.fire(REBALANCE_SITE)
                    if event is not None:
                        # Clock skew: the next cadence tick drifts.
                        period = max(period + event.magnitude, 0.05)
                if self.ledger.budget is not None:
                    self.ledger.rebalance()
                # The rebalancer doubles as the brownout tick: one
                # controller, one coordinated cluster-wide level — shards
                # brown out together instead of oscillating separately.
                if self.brownout is not None:
                    p99s = [
                        p
                        for p in (s.signal.sojourn_p99() for s in self._overload.values())
                        if p is not None
                    ]
                    self.brownout.update(max(p99s) if p99s else None)
                for shard, state in self._overload.items():
                    if state.controller is not None:
                        self.telemetry.gauge("frontend_admit_rate", shard=shard).set(
                            state.controller.rate
                        )

    # -- observation -----------------------------------------------------------

    def _ask_shard(self, handle: _ShardHandle, op: str, timeout: float) -> Optional[Dict[str, Any]]:
        if not handle.alive:
            return None
        batch_id = next(self._batch_ids)
        pending = PendingResult()
        with handle.lock:
            handle.inflight[batch_id] = (op, pending, 0.0, handle.epoch, time.monotonic())
        try:
            handle.requests.put({"op": op, "batch_id": batch_id})
            return pending.wait(timeout)
        except (TimeoutError, ChildProcessError, OSError, ValueError):
            with handle.lock:
                handle.inflight.pop(batch_id, None)
            return None

    def shard_stats(self, *, timeout: float = 5.0) -> Dict[str, Optional[Dict[str, Any]]]:
        """Each live shard's stats document (``None`` for dead shards)."""
        return {s: self._ask_shard(h, "stats", timeout) for s, h in self._handles.items()}

    def health(self) -> Dict[str, Any]:
        healthy = self.healthy_shards()
        return {
            "status": "ok" if len(healthy) == len(self._handles) else ("degraded" if healthy else "down"),
            "shards": {s: ("up" if h.alive else "down") for s, h in self._handles.items()},
            "restarts": {s: h.restarts for s, h in self._handles.items()},
            "supervised": self._supervisor is not None,
            "ledger": self.ledger.to_dict(),
            "overload": self.overload_snapshot(),
        }

    def overload_snapshot(self) -> Dict[str, Any]:
        """The overload control plane's current state, for /health and tests."""
        return {
            "brownout": None if self.brownout is None else self.brownout.snapshot(),
            "shards": {
                shard: {
                    "admit_rate": (
                        1.0 if state.controller is None else state.controller.rate
                    ),
                    "queue_delay": state.signal.snapshot(),
                }
                for shard, state in self._overload.items()
            },
        }

    def metrics_text(self, *, timeout: float = 5.0) -> str:
        """Cluster-wide Prometheus exposition: the front-end registry plus
        every worker registry, each worker metric labelled with its shard."""
        snap = self.telemetry.snapshot()
        metrics = list(snap["metrics"])
        for shard, stats in self.shard_stats(timeout=timeout).items():
            if stats is None:
                continue
            for entry in stats.get("telemetry", {}).get("metrics", []):
                labelled = dict(entry)
                labelled["labels"] = {**entry.get("labels", {}), "shard": shard}
                metrics.append(labelled)
        return prometheus_text({"metrics": metrics, "spans": []})

    def profile_document(self, *, timeout: float = 5.0) -> Dict[str, Any]:
        """Cluster-wide continuous profile: per-shard and merged.

        Each live shard answers a ``profile`` probe with its sampler's
        aggregated stacks plus its exact per-phase span splits; the
        front-end contributes its own phase splits (it runs no sampler —
        a sampler thread in the parent would be fork-hostile) and merges
        everything into one document for ``/debug/profile`` and
        ``repro top``.
        """
        shard_docs: Dict[str, Optional[Dict[str, Any]]] = {
            s: self._ask_shard(h, "profile", timeout) for s, h in self._handles.items()
        }
        profiles = [d.get("profile") for d in shard_docs.values() if d is not None]
        breakdowns = [d.get("phases", {}) for d in shard_docs.values() if d is not None]
        breakdowns.append(phase_breakdown(self.telemetry.snapshot()))
        merged_phases = merge_phase_breakdowns(breakdowns)
        return {
            "shards": {
                shard: (None if doc is None else {"profile": doc.get("profile"), "phases": doc.get("phases", {})})
                for shard, doc in shard_docs.items()
            },
            "merged": {
                "profile": merge_profiles(profiles),
                "phases": merged_phases,
                "hottest": [
                    {"phase": name, **entry} for name, entry in hottest_phases(merged_phases)
                ],
            },
        }

    def trace_document(self, trace_id: str, *, timeout: float = 5.0) -> Optional[Dict[str, Any]]:
        """One trace's spans across the whole cluster (front-end + workers)."""
        spans = trace_spans(self.telemetry, trace_id)
        for stats in self.shard_stats(timeout=timeout).values():
            if stats is not None:
                spans.extend(trace_spans(stats.get("telemetry", {"spans": []}), trace_id))
        if not spans:
            return None
        spans.sort(key=lambda s: (s["start"], s["span_id"]))
        return to_trace_events(spans, trace_id=trace_id)


# -- the HTTP surface -----------------------------------------------------------


class _ClusterHandler(BaseHTTPRequestHandler):
    server_version = f"repro-cluster/{_pkg_version}"
    _trace_id: Optional[str] = None

    @property
    def _manager(self) -> ClusterManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, payload: Dict[str, Any], status: int = 200, headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id is not None:
            self.send_header("X-Repro-Trace-Id", self._trace_id)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = urlparse(self.path).path
        manager = self._manager
        manager.telemetry.counter("frontend_requests_total", path=path).inc()
        if path == "/health":
            health = manager.health()
            health["version"] = _pkg_version
            self._send_json(health, 200 if health["status"] == "ok" else 503)
        elif path == "/schedulers":
            self._send_json({"schedulers": available_schedulers()})
        elif path == "/shards":
            self._send_json({"shards": manager.shard_stats()})
        elif path == "/debug/profile":
            self._send_json(manager.profile_document())
        elif path == "/metrics":
            body = manager.metrics_text().encode()
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path.startswith("/trace/"):
            trace_id = path[len("/trace/") :]
            if valid_trace_id(trace_id) is None:
                self._send_json({"error": f"malformed trace id {trace_id!r}"}, 400)
                return
            document = manager.trace_document(trace_id)
            if document is None:
                self._send_json({"error": f"unknown trace {trace_id!r}"}, 404)
                return
            self._send_json(document)
        else:
            self._send_json({"error": f"unknown path {path!r}"}, 404)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        try:
            self._do_post()
        except Exception as exc:  # noqa: BLE001 — serving boundary
            self._manager.telemetry.counter("frontend_errors_total", status="500").inc()
            try:
                self._send_json({"error": f"internal error: {exc}"}, 500)
            except OSError:
                pass  # client already gone

    def _do_post(self) -> None:
        parsed = urlparse(self.path)
        manager = self._manager
        manager.telemetry.counter("frontend_requests_total", path=parsed.path).inc()
        if parsed.path != "/solve":
            self._send_json({"error": f"unknown path {parsed.path!r}"}, 404)
            return
        trace_id = valid_trace_id(self.headers.get("X-Repro-Trace-Id")) or new_trace_id()
        self._trace_id = trace_id
        try:
            params = parse_qs(parsed.query)
            name = params.get("scheduler", ["approx"])[0]
            priority = params.get("priority", [None])[0]
            deadline: Optional[float] = None
            raw_deadline = params.get("deadline", [None])[0]
            if raw_deadline is not None:
                try:
                    deadline = float(raw_deadline)
                except ValueError:
                    manager.telemetry.counter("frontend_errors_total", status="400").inc()
                    self._send_json({"error": f"invalid deadline {raw_deadline!r}"}, 400)
                    return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                data = json.loads(self.rfile.read(length).decode())
            except (ValueError, UnicodeDecodeError) as exc:
                manager.telemetry.counter("frontend_errors_total", status="400").inc()
                self._send_json({"error": f"invalid JSON body: {exc}"}, 400)
                return
            result = manager.submit(
                name, data, trace_id=trace_id, priority=priority, deadline_seconds=deadline
            )
            status = int(result.pop("status", 200))
            headers = None
            retry_after = result.pop("retry_after", None)
            if retry_after is not None:
                headers = {"Retry-After": str(int(max(float(retry_after), 1)))}
            if status >= 400:
                manager.telemetry.counter("frontend_errors_total", status=str(status)).inc()
            self._send_json(result, status, headers)
        finally:
            self._trace_id = None  # keep-alive connections reuse the handler


def make_cluster_server(
    manager: ClusterManager, host: str = "127.0.0.1", port: int = 0, *, verbose: bool = False
) -> ThreadingHTTPServer:
    """The HTTP front-end for a (started) cluster; port 0 picks a free port."""
    server = ThreadingHTTPServer((host, port), _ClusterHandler)
    server.manager = manager  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve_cluster(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    config: Optional[ClusterConfig] = None,
) -> None:
    """Run a cluster until interrupted (the CLI's ``cluster`` command)."""
    manager = ClusterManager(config if config is not None else ClusterConfig())
    manager.start()
    server = make_cluster_server(manager, host, port, verbose=True)
    cfg = manager.config
    budget = "unbounded" if cfg.budget is None else f"{cfg.budget:.1f} J"
    print(f"repro cluster front-end on http://{host}:{server.server_address[1]}")
    print(
        f"topology: {cfg.shards} shard worker(s), windows <= {cfg.max_batch} requests / "
        f"{cfg.max_wait_seconds * 1000:.0f} ms, energy budget {budget}"
    )
    if cfg.journal_root is not None:
        print(f"durability: per-shard journals under {cfg.journal_root}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        manager.stop()
        if cfg.journal_root is not None:
            from .ledger import audit_cluster

            print(audit_cluster(cfg.journal_root, budget=cfg.budget).summary())
