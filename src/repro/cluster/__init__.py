"""Scale-out serving: sharded, batched, multi-worker solving under one budget.

The single-process server (:mod:`repro.server`) solves one request at a
time inside one Python process.  This package turns the same service
into a small cluster while preserving the paper's core constraint — one
global energy budget ``B`` — across all of it:

* :mod:`repro.cluster.solve_service` — the one solve code path (scheduler
  construction, deadline, response shape) shared by the plain server and
  every cluster worker;
* :mod:`repro.cluster.router` — consistent-hash routing of requests to
  shards, walking past dead shards;
* :mod:`repro.cluster.batcher` — per-shard coalescing of requests into
  bounded solve windows (``max_batch`` / ``max_wait``);
* :mod:`repro.cluster.ledger` — the global budget split into per-shard
  energy *leases* (reserve/commit/release; demand-weighted rebalancing)
  plus :func:`~repro.cluster.ledger.audit_cluster`, the durable proof
  that the shards' journalled spends sum within ``B``;
* :mod:`repro.cluster.worker` — the shard worker process: own journal,
  telemetry registry, admission control and burn-rate monitor;
* :mod:`repro.cluster.frontend` — the control plane and HTTP front-end
  (:class:`~repro.cluster.frontend.ClusterManager`,
  :func:`~repro.cluster.frontend.make_cluster_server`);
* :mod:`repro.cluster.bench` — the serving load benchmark behind
  ``repro bench serve``.

Quick start::

    config = ClusterConfig(shards=2, budget=500.0, journal_root="led/")
    with ClusterManager(config) as manager:
        result = manager.submit("approx", instance_doc)
    assert audit_cluster("led/", budget=500.0).certified
"""

from .batcher import PendingResult, QueueFullError, WindowBatcher
from .bench import bench_serve, run_load
from .frontend import ClusterConfig, ClusterManager, make_cluster_server, serve_cluster
from .ledger import ClusterAudit, EnergyLeaseLedger, ShardLease, audit_cluster
from .router import ConsistentHashRouter
from .solve_service import SolveService, SolveServiceConfig, solve_payload
from .supervisor import ShardSupervisor
from .worker import WorkerConfig, worker_main

__all__ = [
    "PendingResult",
    "QueueFullError",
    "WindowBatcher",
    "bench_serve",
    "run_load",
    "ClusterConfig",
    "ClusterManager",
    "make_cluster_server",
    "serve_cluster",
    "ClusterAudit",
    "EnergyLeaseLedger",
    "ShardLease",
    "audit_cluster",
    "ConsistentHashRouter",
    "ShardSupervisor",
    "SolveService",
    "SolveServiceConfig",
    "solve_payload",
    "WorkerConfig",
    "worker_main",
]
