"""Consistent-hash task-to-shard routing.

The front-end must send a request *somewhere*, and the choice has to be
stable (the same routing key lands on the same shard while the topology
holds) yet elastic (losing a shard moves only that shard's keys, not the
whole keyspace).  The classic answer is a consistent-hash ring: every
shard owns ``replicas`` pseudo-random points on a 2^64 circle, a key
hashes to a point, and the owning shard is the first shard point at or
clockwise of it.

Health-aware routing is layered on the same ring: when the preferred
shard is down, :meth:`ConsistentHashRouter.route` keeps walking
clockwise to the next *healthy* shard — exactly the "survivors absorb
the dead shard's keyspace" behaviour the cluster's failure story needs,
with no rerouting of keys owned by live shards.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..utils.validation import require

__all__ = ["ConsistentHashRouter"]


def _point(data: str) -> int:
    """A stable 64-bit ring coordinate for ``data`` (first 8 md5 bytes)."""
    return int.from_bytes(hashlib.md5(data.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRouter:
    """Consistent-hash ring over a fixed set of shard ids.

    ``replicas`` virtual nodes per shard smooth the load split (the
    classic variance-reduction trick); 64 keeps the max/min shard load
    ratio within a few percent for realistic shard counts while the ring
    stays tiny.  The router itself is immutable and thread-safe; health
    is passed per call so routing never holds cluster-wide state.
    """

    def __init__(self, shard_ids: Sequence[str], *, replicas: int = 64):
        require(len(shard_ids) >= 1, "router needs at least one shard")
        require(len(set(shard_ids)) == len(shard_ids), "shard ids must be unique")
        require(replicas >= 1, f"replicas must be >= 1, got {replicas}")
        self.shard_ids: Tuple[str, ...] = tuple(str(s) for s in shard_ids)
        self.replicas = int(replicas)
        points: List[Tuple[int, str]] = []
        for shard in self.shard_ids:
            for vnode in range(self.replicas):
                points.append((_point(f"{shard}#{vnode}"), shard))
        points.sort()
        self._points: List[int] = [p for p, _ in points]
        self._owners: List[str] = [s for _, s in points]

    def route(self, key: str, *, healthy: Optional[Set[str]] = None) -> str:
        """The shard owning ``key``; walks past unhealthy shards.

        ``healthy=None`` treats every shard as up.  With every shard
        down there is nowhere to route — the caller gets ``KeyError``
        and should answer 503.
        """
        up = set(self.shard_ids) if healthy is None else set(healthy) & set(self.shard_ids)
        if not up:
            raise KeyError("no healthy shards to route to")
        start = bisect.bisect_left(self._points, _point(str(key)))
        n = len(self._points)
        seen: Set[str] = set()
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner in up:
                return owner
            seen.add(owner)
            if len(seen) == len(self.shard_ids):  # pragma: no cover — up is nonempty
                break
        raise KeyError("no healthy shards to route to")  # pragma: no cover

    def distribution(self, keys: Sequence[str], *, healthy: Optional[Set[str]] = None) -> Dict[str, int]:
        """How many of ``keys`` each shard would receive (load preview)."""
        counts: Dict[str, int] = {shard: 0 for shard in self.shard_ids}
        for key in keys:
            counts[self.route(key, healthy=healthy)] += 1
        return counts

    def __repr__(self) -> str:
        return f"ConsistentHashRouter(shards={list(self.shard_ids)}, replicas={self.replicas})"
