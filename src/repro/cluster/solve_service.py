"""The one solve code path shared by the HTTP handler and cluster workers.

Before the cluster existed, :mod:`repro.server` built its scheduler and
enforced the per-request deadline inside the request handler — logic any
worker process would have had to copy.  :class:`SolveService` extracts
that path so the single-process server and every shard worker run the
*same* code: scheduler construction (with the optional fallback chain),
deadline enforcement, and the response payload shape.

The service is stateless and thread-safe: configuration is frozen at
construction and each :meth:`solve` call owns its scheduler instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..algorithms.base import Scheduler, SolveResult
from ..algorithms.registry import make_scheduler
from ..core.instance import ProblemInstance
from ..core.serialization import schedule_to_dict
from ..resilience.fallback import FallbackChain, run_with_deadline

__all__ = ["SolveServiceConfig", "SolveService", "solve_payload"]


@dataclass(frozen=True)
class SolveServiceConfig:
    """How requests are solved, wherever they are solved.

    ``solver_timeout`` bounds each solve's wall clock (seconds,
    ``None`` = unbounded); ``fallback`` serves every request through
    :meth:`FallbackChain.default` with the requested scheduler pinned
    to the front of the ladder.
    """

    solver_timeout: Optional[float] = None
    fallback: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"solver_timeout": self.solver_timeout, "fallback": self.fallback}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolveServiceConfig":
        return cls(
            solver_timeout=data.get("solver_timeout"),
            fallback=bool(data.get("fallback", False)),
        )


class SolveService:
    """Build the scheduler and run one solve, under the configured guards."""

    def __init__(self, config: Optional[SolveServiceConfig] = None):
        self.config = config if config is not None else SolveServiceConfig()

    def build_scheduler(self, name: str) -> Scheduler:
        """The requested scheduler, wrapped in a fallback chain if enabled."""
        if self.config.fallback:
            return FallbackChain.default(
                deadline_seconds=self.config.solver_timeout, first=name
            )
        return make_scheduler(name)

    def solve(self, scheduler: Scheduler, instance: ProblemInstance) -> SolveResult:
        """One solve, under the per-request deadline when configured.

        A :class:`FallbackChain` applies its own per-tier deadlines; only
        bare schedulers get the outer :func:`run_with_deadline` wrapper.
        """
        timeout = self.config.solver_timeout
        if timeout is not None and not isinstance(scheduler, FallbackChain):
            return run_with_deadline(
                lambda: scheduler.solve_with_info(instance), timeout, solver=scheduler.name
            )
        return scheduler.solve_with_info(instance)

    def solve_named(self, name: str, instance: ProblemInstance) -> SolveResult:
        """Convenience: build the scheduler for ``name`` and solve."""
        return self.solve(self.build_scheduler(name), instance)


def solve_payload(
    scheduler_name: str,
    result: SolveResult,
    instance: ProblemInstance,
    *,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``/solve`` response document for one completed solve.

    One payload shape for the single-process server and every cluster
    worker, so clients cannot observe which topology served them.
    """
    schedule = result.schedule
    audit = schedule.feasibility()
    payload: Dict[str, Any] = {
        "scheduler": scheduler_name,
        "trace_id": trace_id,
        "schedule": schedule_to_dict(schedule, embed_instance=False),
        "metrics": {
            "mean_accuracy": schedule.mean_accuracy,
            "total_accuracy": schedule.total_accuracy,
            "energy_joules": schedule.total_energy,
            "budget_joules": instance.budget,
            "runtime_seconds": result.info.runtime_seconds,
        },
        "feasible": audit.feasible,
        "violations": [str(v) for v in audit.violations],
    }
    if "tier" in result.info.extra:
        payload["served_tier"] = result.info.extra["tier"]
    return payload
