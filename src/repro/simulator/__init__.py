"""Discrete-event cluster simulator: replay schedules, measure, audit."""

from .cluster_sim import ClusterSimulator
from .engine import EventQueue
from .events import MachineIdle, SimEvent, TaskFinished, TaskStarted
from .failures import (
    FailureModel,
    FailureReport,
    Outage,
    Slowdown,
    replay_with_duration_noise,
    replay_with_failures,
)
from .metrics import SimulationReport
from .online_sim import OnlineSimReport, OnlineSimulation, ServedRequest
from .power import PowerModel
from .trace import ExecutionTrace, TaskRecord

__all__ = [
    "ClusterSimulator",
    "OnlineSimulation",
    "OnlineSimReport",
    "ServedRequest",
    "EventQueue",
    "FailureModel",
    "FailureReport",
    "Outage",
    "Slowdown",
    "replay_with_failures",
    "replay_with_duration_noise",
    "SimulationReport",
    "PowerModel",
    "ExecutionTrace",
    "TaskRecord",
    "TaskStarted",
    "TaskFinished",
    "MachineIdle",
    "SimEvent",
]
