"""Online discrete-event simulation of a served request stream.

Where :class:`~repro.simulator.cluster_sim.ClusterSimulator` replays a
precomputed plan, :class:`OnlineSimulation` runs the *serving loop*
itself inside the event engine:

* request arrivals are events (from any arrival process);
* at every planning-window boundary the buffered requests are handed to
  a :class:`~repro.online.planner.RollingHorizonPlanner`-style policy
  (any scheduler, window energy budget);
* the planned shares are dispatched to machine queues and executed
  non-preemptively; completions are measured against each request's
  *absolute* SLO deadline (arrival + SLO), not the planner's relative
  view — so the simulation catches planning-boundary effects the
  algebraic evaluation cannot (a request arriving just before the
  boundary loses part of its SLO to waiting).

This is the library's end-to-end substrate for the MLaaS serving story
the paper motivates in its introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.machine import Cluster
from ..telemetry import get_collector
from ..utils.errors import SimulationError
from ..utils.validation import check_positive, require
from ..workloads.arrivals import Request
from ..workloads.generator import tasks_from_thetas
from .engine import EventQueue

__all__ = ["ServedRequest", "OnlineSimReport", "OnlineSimulation"]


@dataclass
class ServedRequest:
    """Lifecycle record of one request through the online system."""

    request: Request
    planned_window: Optional[float] = None
    machine: Optional[int] = None
    start: Optional[float] = None
    finish: Optional[float] = None
    flops: float = 0.0
    accuracy: float = 0.0

    @property
    def served(self) -> bool:
        return self.flops > 0.0

    @property
    def met_slo(self) -> bool:
        """Served and finished by the absolute SLO deadline."""
        return self.served and self.finish is not None and self.finish <= self.request.deadline + 1e-9


@dataclass(frozen=True)
class OnlineSimReport:
    """Measured outcome of one online run."""

    records: tuple[ServedRequest, ...]
    machine_busy: np.ndarray
    energy: float
    horizon: float

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def mean_accuracy(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.accuracy for r in self.records]))

    @property
    def slo_attainment(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.met_slo for r in self.records) / len(self.records)

    @property
    def served_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.served for r in self.records) / len(self.records)


class OnlineSimulation:
    """Event-driven serving loop: buffer → plan per window → execute.

    Planned shares start no earlier than their window boundary; machines
    execute shares back-to-back in planned order.  Because planning is
    window-synchronous, a machine may still be draining the previous
    window's work when new shares arrive — the simulation (unlike the
    algebraic planner view) charges that queueing delay against the SLO,
    which is exactly the effect worth measuring.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        *,
        window_seconds: float = 2.0,
        power_cap_fraction: float = 0.5,
    ):
        check_positive(window_seconds, "window_seconds")
        require(power_cap_fraction > 0, "power_cap_fraction must be > 0")
        self.cluster = cluster
        self.scheduler = scheduler
        self.window_seconds = float(window_seconds)
        self.power_cap_fraction = float(power_cap_fraction)

    @property
    def window_budget(self) -> float:
        return self.power_cap_fraction * self.window_seconds * self.cluster.total_power

    def run(self, requests: Sequence[Request]) -> OnlineSimReport:
        """Simulate the full stream; returns measured per-request records."""
        with get_collector().span("online_sim.run"):
            report = self._run(requests)
        tele = get_collector()
        tele.counter("online_sim_requests_total").add(report.n_requests)
        tele.counter("online_sim_slo_met_total").add(sum(r.met_slo for r in report.records))
        return report

    def _run(self, requests: Sequence[Request]) -> OnlineSimReport:
        records = [ServedRequest(request=r) for r in sorted(requests, key=lambda r: r.arrival_time)]
        if not records:
            return OnlineSimReport((), np.zeros(len(self.cluster)), 0.0, 0.0)

        queue = EventQueue()
        buffered: List[int] = []  # indices into records awaiting planning
        machine_free_at = np.zeros(len(self.cluster))
        busy = np.zeros(len(self.cluster))
        speeds = self.cluster.speeds
        powers = self.cluster.powers

        def arrive(idx: int) -> None:
            buffered.append(idx)

        def plan_window() -> None:
            nonlocal buffered
            window_start = queue.now
            if buffered:
                batch = list(buffered)
                buffered = []
                self._plan_and_dispatch(batch, records, window_start, machine_free_at, busy, queue)
            # Next window tick while there can still be arrivals or work.
            if queue.now < horizon:
                queue.schedule_in(self.window_seconds, plan_window)

        horizon = max(r.request.arrival_time for r in records) + self.window_seconds
        for idx, rec in enumerate(records):
            queue.schedule_at(rec.request.arrival_time, lambda idx=idx: arrive(idx))
        queue.schedule_at(self.window_seconds, plan_window)
        queue.run()
        # A final planning pass for anything still buffered at the end.
        if buffered:
            self._plan_and_dispatch(list(buffered), records, queue.now, machine_free_at, busy, queue)
            queue.run()

        energy = float(busy @ powers)
        return OnlineSimReport(tuple(records), busy, energy, queue.now)

    # -- internals -------------------------------------------------------------

    def _plan_and_dispatch(
        self,
        batch: List[int],
        records: List[ServedRequest],
        window_start: float,
        machine_free_at: np.ndarray,
        busy: np.ndarray,
        queue: EventQueue,
    ) -> None:
        """Solve the batched instance and enqueue execution of the shares."""
        tele = get_collector()
        reqs = [records[i].request for i in batch]
        # Deadlines relative to the *planning instant*; a request that has
        # already burnt part of its SLO waiting gets only the remainder.
        deadlines = [max(r.deadline - window_start, 1e-3) for r in reqs]
        order = list(np.argsort(deadlines, kind="stable"))
        tasks = tasks_from_thetas(
            [reqs[i].theta_per_tflop for i in order],
            [deadlines[i] for i in order],
        )
        instance = ProblemInstance(tasks, self.cluster, self.window_budget)
        with tele.span("online_sim.window.plan"):
            schedule = self.scheduler.solve(instance)
        tele.counter("online_sim_windows_total").inc()
        times = schedule.times
        flops = schedule.task_flops
        accs = schedule.task_accuracies

        for slot, i in enumerate(order):
            rec = records[batch[i]]
            rec.planned_window = window_start
            rec.accuracy = float(accs[slot])
            rec.flops = float(flops[slot])
            if rec.flops <= 0.0:
                continue
            shares = np.nonzero(times[slot] > 0.0)[0]
            if shares.size != 1:
                # Integral schedulers give one machine; fractional inputs
                # are rejected up front to keep execution semantics clear.
                raise SimulationError(
                    "OnlineSimulation requires an integral scheduler "
                    f"(task got {shares.size} machine shares)"
                )
            r = int(shares[0])
            duration = float(times[slot, r])
            start = max(window_start, float(machine_free_at[r]))
            machine_free_at[r] = start + duration
            busy[r] += duration
            rec.machine = r
            rec.start = start
            tele.counter("online_sim_dispatched_total").inc()
            tele.histogram("online_sim_queue_delay_seconds").observe(start - window_start)

            def finish(rec=rec, end=start + duration) -> None:
                rec.finish = end

            queue.schedule_at(start + duration, finish)
