"""Online discrete-event simulation of a served request stream.

Where :class:`~repro.simulator.cluster_sim.ClusterSimulator` replays a
precomputed plan, :class:`OnlineSimulation` runs the *serving loop*
itself inside the event engine:

* request arrivals are events (from any arrival process);
* at every planning-window boundary the buffered requests are handed to
  a :class:`~repro.online.planner.RollingHorizonPlanner`-style policy
  (any scheduler, window energy budget);
* the planned shares are dispatched to machine queues and executed
  non-preemptively; completions are measured against each request's
  *absolute* SLO deadline (arrival + SLO), not the planner's relative
  view — so the simulation catches planning-boundary effects the
  algebraic evaluation cannot (a request arriving just before the
  boundary loses part of its SLO to waiting).

Failures are first-class events (``failures=FailureModel(...)``): an
:class:`~repro.simulator.failures.Outage` stops a machine mid-stream —
the share in flight is truncated with partial accuracy credit and queued
shares are lost — and a :class:`~repro.simulator.failures.Slowdown`
stretches every share planned on the machine from its onset.  With
``replan=True`` the loop is *failure-aware*: requests whose shares an
outage destroyed are re-buffered into the next planning window, and
planning only targets surviving machines at their effective speeds (the
stale-plan baseline, ``replan=False``, keeps planning onto dead machines
and loses that work).  A global ``energy_budget`` plus a
:class:`~repro.resilience.degrade.DegradationPolicy` additionally
degrade windows gracefully under energy pressure instead of overrunning
the budget.

This is the library's end-to-end substrate for the MLaaS serving story
the paper motivates in its introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.machine import Cluster, Machine
from ..telemetry import current_trace_id, ensure_trace, get_collector
from ..utils.errors import ReproError, SimulationError
from ..utils.validation import check_nonnegative, check_positive, require
from ..workloads.arrivals import Request
from ..workloads.generator import tasks_from_thetas
from .engine import EventQueue
from .failures import FailureModel, Outage

__all__ = ["ServedRequest", "OnlineSimReport", "OnlineSimulation"]


@dataclass
class ServedRequest:
    """Lifecycle record of one request through the online system."""

    request: Request
    planned_window: Optional[float] = None
    machine: Optional[int] = None
    start: Optional[float] = None
    finish: Optional[float] = None
    flops: float = 0.0
    accuracy: float = 0.0
    disrupted: bool = False  #: a failure destroyed (part of) its share
    replans: int = 0  #: times the request was re-buffered after a failure

    @property
    def served(self) -> bool:
        return self.flops > 0.0

    @property
    def met_slo(self) -> bool:
        """Served and finished by the absolute SLO deadline."""
        return self.served and self.finish is not None and self.finish <= self.request.deadline + 1e-9


@dataclass
class _Dispatch:
    """One planned share in flight or queued on a machine."""

    rec: ServedRequest
    index: int  #: index into the records list
    start: float
    end: float
    flops: float
    accuracy_value: object  #: callable FLOP -> accuracy for partial credit
    cancelled: bool = False


@dataclass(frozen=True)
class OnlineSimReport:
    """Measured outcome of one online run."""

    records: tuple
    machine_busy: np.ndarray
    energy: float
    horizon: float

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def mean_accuracy(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.accuracy for r in self.records]))

    @property
    def slo_attainment(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.met_slo for r in self.records) / len(self.records)

    @property
    def served_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.served for r in self.records) / len(self.records)

    @property
    def disrupted_count(self) -> int:
        return sum(r.disrupted for r in self.records)


class OnlineSimulation:
    """Event-driven serving loop: buffer → plan per window → execute.

    Planned shares start no earlier than their window boundary; machines
    execute shares back-to-back in planned order.  Because planning is
    window-synchronous, a machine may still be draining the previous
    window's work when new shares arrive — the simulation (unlike the
    algebraic planner view) charges that queueing delay against the SLO,
    which is exactly the effect worth measuring.

    Parameters
    ----------
    failures:
        Injected outages/slowdowns, on the stream's absolute clock.
    replan:
        Failure-aware mode: re-buffer disrupted requests into the next
        window and plan only on surviving machines at effective speeds.
        Off by default — the stale-plan baseline.
    energy_budget:
        Optional global energy cap (J).  Window budgets are clipped to
        what remains of it, and it anchors the degradation policy's
        spent-fraction watermarks.
    degradation:
        Optional :class:`~repro.resilience.degrade.DegradationPolicy`
        applied to each window's instance (requires ``energy_budget``).
    journal:
        Optional :class:`~repro.durability.journal.JournalWriter`: the
        run appends arrivals, window plans, realised shares, failures,
        degradation changes and the cumulative energy ledger, so a
        crashed serving process can account for spent joules on restart
        (:func:`repro.durability.recover`).  The journaled ledger is
        *planned* spend — a conservative upper bound; outage refunds
        only ever lower realised energy below it.
    initial_energy_spent:
        Energy (J) already charged against ``energy_budget`` by a
        previous incarnation of this run — feed it
        ``recover(journal_dir).energy_spent`` and the budget clipping
        and degradation watermarks resume where the crash left them
        instead of silently granting the budget twice.
    slo:
        Optional :class:`~repro.observe.slo.BurnRateMonitor`: after
        every planning window the cumulative energy ledger is fed to it
        (``observe(window_start, cum_energy)``); alerts it fires bump
        ``slo_alerts_total{severity=...}`` and are journaled as
        ``slo_alert`` events.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        *,
        window_seconds: float = 2.0,
        power_cap_fraction: float = 0.5,
        failures: Optional[FailureModel] = None,
        replan: bool = False,
        energy_budget: Optional[float] = None,
        degradation=None,
        journal=None,
        initial_energy_spent: float = 0.0,
        slo=None,
    ):
        check_positive(window_seconds, "window_seconds")
        require(power_cap_fraction > 0, "power_cap_fraction must be > 0")
        check_nonnegative(initial_energy_spent, "initial_energy_spent")
        if energy_budget is not None:
            check_positive(energy_budget, "energy_budget")
        if degradation is not None and energy_budget is None:
            raise SimulationError("a degradation policy needs energy_budget to measure pressure against")
        self.cluster = cluster
        self.scheduler = scheduler
        self.window_seconds = float(window_seconds)
        self.power_cap_fraction = float(power_cap_fraction)
        self.failures = failures if failures is not None else FailureModel()
        self.replan = bool(replan)
        self.energy_budget = energy_budget
        self.degradation = degradation
        self.journal = journal
        self.initial_energy_spent = float(initial_energy_spent)
        self.slo = slo
        for o in self.failures.outages:
            require(0 <= o.machine < len(cluster), f"outage references machine {o.machine}")
        for s in self.failures.slowdowns:
            require(0 <= s.machine < len(cluster), f"slowdown references machine {s.machine}")

    @property
    def window_budget(self) -> float:
        return self.power_cap_fraction * self.window_seconds * self.cluster.total_power

    def run(self, requests: Sequence[Request]) -> OnlineSimReport:
        """Simulate the full stream; returns measured per-request records.

        Runs under one trace (the caller's active trace id or a fresh
        one); journaled events carry it, so a journal correlates with
        the run's spans post hoc.
        """
        with ensure_trace(), get_collector().span("online_sim.run"):
            report = self._run(requests)
        tele = get_collector()
        tele.counter("online_sim_requests_total").add(report.n_requests)
        tele.counter("online_sim_slo_met_total").add(sum(r.met_slo for r in report.records))
        tele.counter("online_sim_accuracy_total").add(
            float(sum(r.accuracy for r in report.records))
        )
        return report

    def _run(self, requests: Sequence[Request]) -> OnlineSimReport:
        records = [ServedRequest(request=r) for r in sorted(requests, key=lambda r: r.arrival_time)]
        m = len(self.cluster)
        if not records:
            return OnlineSimReport((), np.zeros(m), 0.0, 0.0)

        queue = EventQueue()
        buffered: List[int] = []  # indices into records awaiting planning
        machine_free_at = np.zeros(m)
        busy = np.zeros(m)
        alive = np.ones(m, dtype=bool)
        factor = np.ones(m)  # slowdown speed multipliers
        pending: List[List[_Dispatch]] = [[] for _ in range(m)]
        powers = self.cluster.powers
        tele = get_collector()
        # Energy ledger mirrored into the journal: cum starts at whatever a
        # crashed predecessor already spent, and only ever grows (outage
        # refunds lower realised energy *below* the ledger, never above).
        ledger = {"cum": self.initial_energy_spent, "window": 0, "level": -1}
        self._journal(
            {
                "type": "run_start",
                "meta": {
                    "kind": "online_sim",
                    "n_requests": len(records),
                    "window_seconds": self.window_seconds,
                    "power_cap_fraction": self.power_cap_fraction,
                    "energy_budget": self.energy_budget,
                    "initial_energy_spent": self.initial_energy_spent,
                    "replan": self.replan,
                },
            }
        )

        def arrive(idx: int) -> None:
            buffered.append(idx)
            self._journal({"type": "arrival", "id": idx, "t": queue.now})

        def on_outage(r: int) -> None:
            if not alive[r]:
                return
            alive[r] = False
            now = queue.now
            tele.counter("online_sim_outages_total").inc()
            self._journal({"type": "failure", "kind": "outage", "machine": r, "t": now})
            for d in pending[r]:
                if d.cancelled or (d.rec.finish is not None and d.end <= now):
                    continue
                d.cancelled = True
                d.rec.disrupted = True
                if d.start >= now:  # queued, never started: total loss
                    busy[r] -= d.end - d.start
                    d.rec.flops = 0.0
                    d.rec.accuracy = 0.0
                    d.rec.machine = None
                    d.rec.start = None
                    if self.replan:
                        d.rec.replans += 1
                        buffered.append(d.index)
                        tele.counter("online_sim_replanned_requests_total").inc()
                    else:
                        tele.counter("online_sim_lost_requests_total").inc()
                else:  # in flight: truncate with partial credit
                    done = (now - d.start) / (d.end - d.start)
                    busy[r] -= d.end - now
                    d.rec.flops = d.flops * done
                    d.rec.accuracy = float(d.accuracy_value(d.rec.flops))
                    d.rec.finish = now
            pending[r].clear()
            machine_free_at[r] = now

        def on_slowdown(r: int, f: float) -> None:
            # Applies at planning granularity: shares already dispatched
            # keep their nominal duration; every later window plans the
            # machine at its reduced effective speed.
            factor[r] = f
            self._journal(
                {"type": "failure", "kind": "slowdown", "machine": r, "factor": f, "t": queue.now}
            )

        def plan_window() -> None:
            nonlocal buffered
            window_start = queue.now
            if buffered:
                batch = list(buffered)
                buffered = []
                self._plan_and_dispatch(
                    batch, records, window_start, machine_free_at, busy, queue,
                    alive=alive, factor=factor, pending=pending, powers=powers,
                    ledger=ledger,
                )
            # Next window tick while there can still be arrivals or work.
            if queue.now < horizon:
                queue.schedule_in(self.window_seconds, plan_window)

        horizon = max(r.request.arrival_time for r in records) + self.window_seconds
        for idx, rec in enumerate(records):
            queue.schedule_at(rec.request.arrival_time, lambda idx=idx: arrive(idx))
        for event in self.failures.events():
            if isinstance(event, Outage):
                queue.schedule_at(event.at, lambda r=event.machine: on_outage(r))
            else:
                queue.schedule_at(event.at, lambda r=event.machine, f=event.factor: on_slowdown(r, f))
        queue.schedule_at(self.window_seconds, plan_window)
        queue.run()
        # A final planning pass for anything still buffered at the end.
        if buffered:
            self._plan_and_dispatch(
                list(buffered), records, queue.now, machine_free_at, busy, queue,
                alive=alive, factor=factor, pending=pending, powers=powers,
                ledger=ledger,
            )
            queue.run()

        energy = float(busy @ powers)
        self._journal(
            {
                "type": "run_end",
                "energy_realized": energy,
                "cum_energy": ledger["cum"],
                "horizon": queue.now,
            }
        )
        return OnlineSimReport(tuple(records), busy, energy, queue.now)

    # -- internals -------------------------------------------------------------

    def _journal(self, event: dict) -> None:
        if self.journal is not None:
            trace_id = current_trace_id()
            if trace_id is not None and "trace_id" not in event:
                event = {**event, "trace_id": trace_id}
            self.journal.append(event)

    def _observe_slo(self, t: float, cum_energy: float) -> None:
        """Feed the burn-rate monitor one ledger sample; record alerts."""
        if self.slo is None:
            return
        tele = get_collector()
        for alert in self.slo.observe(t, cum_energy):
            tele.counter("slo_alerts_total", severity=alert.severity).inc()
            self._journal(
                {
                    "type": "slo_alert",
                    "severity": alert.severity,
                    "t": alert.at,
                    "burn_rate": alert.burn_rate,
                    "window": alert.window,
                    "threshold": alert.threshold,
                }
            )

    def _planning_view(self, alive: np.ndarray, factor: np.ndarray):
        """The cluster the planner sees, plus sub-index → machine map.

        Failure-aware mode restricts to survivors at effective (slowed)
        speeds; scaling efficiency alongside keeps power draw constant.
        The stale baseline always sees the nominal full cluster.
        """
        if not self.replan:
            return self.cluster, list(range(len(self.cluster)))
        index_map = [r for r in range(len(self.cluster)) if alive[r]]
        if not index_map:
            return None, []
        machines = []
        for r in index_map:
            base = self.cluster[r]
            f = float(factor[r])
            machines.append(Machine(speed=base.speed * f, efficiency=base.efficiency * f, name=base.name))
        return Cluster(machines), index_map

    def _window_budget_now(self, busy: np.ndarray, powers: np.ndarray) -> float:
        """This window's energy grant, clipped to the global remainder.

        The remainder charges both this incarnation's committed busy time
        and any journaled spend inherited from a crashed predecessor.
        """
        budget = self.window_budget
        if self.energy_budget is not None:
            committed = self.initial_energy_spent + float(busy @ powers)
            budget = min(budget, max(self.energy_budget - committed, 0.0))
        return budget

    def _plan_and_dispatch(
        self,
        batch: List[int],
        records: List[ServedRequest],
        window_start: float,
        machine_free_at: np.ndarray,
        busy: np.ndarray,
        queue: EventQueue,
        *,
        alive: np.ndarray,
        factor: np.ndarray,
        pending: List[List[_Dispatch]],
        powers: np.ndarray,
        ledger: Optional[dict] = None,
    ) -> None:
        """Solve the batched instance and enqueue execution of the shares."""
        tele = get_collector()
        ledger = ledger if ledger is not None else {"cum": self.initial_energy_spent, "window": 0, "level": -1}
        window_index = ledger["window"]
        ledger["window"] += 1

        def commit_empty(note: str) -> None:
            """Journal a window that served nothing (ledger unchanged)."""
            self._journal(
                {
                    "type": "window_done",
                    "window": window_index,
                    "start": window_start,
                    "ids": list(batch),
                    "deadlines": [],
                    "flops": [],
                    "caps": [],
                    "energy": 0.0,
                    "cum_energy": ledger["cum"],
                    "level": ledger["level"],
                    "note": note,
                }
            )
            self._observe_slo(window_start, ledger["cum"])

        cluster, index_map = self._planning_view(alive, factor)
        reqs = [records[i].request for i in batch]
        if cluster is None:
            # Every machine is down; the window is unservable.
            for i in batch:
                records[i].planned_window = window_start
            tele.counter("online_sim_unservable_windows_total").inc()
            commit_empty("unservable")
            return
        # Deadlines relative to the *planning instant*; a request that has
        # already burnt part of its SLO waiting gets only the remainder.
        deadlines = [max(r.deadline - window_start, 1e-3) for r in reqs]
        order = list(np.argsort(deadlines, kind="stable"))
        tasks = tasks_from_thetas(
            [reqs[i].theta_per_tflop for i in order],
            [deadlines[i] for i in order],
        )
        instance = ProblemInstance(tasks, cluster, self._window_budget_now(busy, powers))
        self._journal(
            {
                "type": "window_plan",
                "window": window_index,
                "start": window_start,
                "ids": [batch[i] for i in order],
                "budget": instance.budget,
            }
        )

        kept = np.arange(len(batch))
        if self.degradation is not None:
            spent = self.initial_energy_spent + float(busy @ powers)
            decision = self.degradation.apply(instance, spent / self.energy_budget)
            if decision.degraded:
                tele.counter("online_sim_degraded_windows_total").inc()
            if decision.level != ledger["level"]:
                self._journal({"type": "degrade", "level": decision.level, "window": window_index})
                ledger["level"] = decision.level
            instance, kept = decision.instance, decision.kept

        try:
            with tele.span("online_sim.window.plan"):
                schedule = self.scheduler.solve(instance)
        except ReproError:
            # A failed window solve serves nothing but must not kill the
            # stream — the affected requests are simply not served.
            tele.counter("online_sim_failed_windows_total").inc()
            for i in batch:
                records[i].planned_window = window_start
            commit_empty("solve_failed")
            return
        tele.counter("online_sim_windows_total").inc()
        times = schedule.times
        flops = schedule.task_flops
        accs = schedule.task_accuracies
        speeds = instance.cluster.speeds

        window_energy = 0.0
        window_flops = [0.0] * len(batch)
        planned = {int(k): slot for slot, k in enumerate(kept)}
        for i in range(len(batch)):
            rec = records[batch[order[i]]]
            rec.planned_window = window_start
            slot = planned.get(i)
            if slot is None:  # shed by the degradation policy
                rec.flops = 0.0
                rec.accuracy = 0.0
                continue
            rec.accuracy = float(accs[slot])
            rec.flops = float(flops[slot])
            if rec.flops <= 0.0:
                continue
            shares = np.nonzero(times[slot] > 0.0)[0]
            if shares.size != 1:
                # Integral schedulers give one machine; fractional inputs
                # are rejected up front to keep execution semantics clear.
                raise SimulationError(
                    "OnlineSimulation requires an integral scheduler "
                    f"(task got {shares.size} machine shares)"
                )
            rr = int(shares[0])
            r = index_map[rr]
            if not alive[r]:
                # Stale-plan baseline: the planner does not know the
                # machine is dead, so its share is simply lost.
                rec.flops = 0.0
                rec.accuracy = 0.0
                rec.disrupted = True
                tele.counter("online_sim_lost_requests_total").inc()
                continue
            duration = float(times[slot, rr])
            if not self.replan:
                # The stale planner quoted wall time at nominal speed; a
                # slowed machine physically takes 1/factor longer (same
                # FLOPs delivered, later finish).  The failure-aware view
                # already plans on effective speeds, so no correction.
                duration /= float(factor[r])
            start = max(window_start, float(machine_free_at[r]))
            machine_free_at[r] = start + duration
            busy[r] += duration
            window_energy += duration * float(powers[r])
            window_flops[i] = rec.flops
            rec.machine = r
            rec.start = start
            dispatch = _Dispatch(
                rec=rec,
                index=batch[order[i]],
                start=start,
                end=start + duration,
                flops=rec.flops,
                accuracy_value=instance.tasks[slot].accuracy.value,
            )
            pending[r].append(dispatch)
            tele.counter("online_sim_dispatched_total").inc()
            tele.histogram("online_sim_queue_delay_seconds").observe(start - window_start)

            def finish(d=dispatch) -> None:
                if not d.cancelled:
                    d.rec.finish = d.end

            queue.schedule_at(start + duration, finish)

        ledger["cum"] += window_energy
        self._observe_slo(window_start, ledger["cum"])
        if self.journal is not None:
            caps: List[float] = []
            if self.degradation is not None and decision.degraded:
                caps = [decision.work_cap_scale * float(f) for f in tasks.f_max]
            self._journal(
                {
                    "type": "window_done",
                    "window": window_index,
                    "start": window_start,
                    "ids": [batch[i] for i in order],
                    "deadlines": [float(d) for d in tasks.deadlines],
                    "flops": window_flops,
                    "caps": caps,
                    "energy": window_energy,
                    "cum_energy": ledger["cum"],
                    "level": ledger["level"],
                }
            )
