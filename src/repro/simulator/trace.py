"""Execution traces: what actually happened when a schedule was replayed."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..utils.errors import ValidationError

__all__ = ["TaskRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class TaskRecord:
    """One task's share on one machine."""

    task: int
    machine: int
    start: float
    end: float
    flops: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """All task-share records of one simulated run."""

    n_tasks: int
    n_machines: int
    records: List[TaskRecord] = field(default_factory=list)

    def add(self, record: TaskRecord) -> None:
        if not 0 <= record.task < self.n_tasks:
            raise ValidationError(f"task index {record.task} out of range")
        if not 0 <= record.machine < self.n_machines:
            raise ValidationError(f"machine index {record.machine} out of range")
        self.records.append(record)

    def task_flops(self) -> np.ndarray:
        """Total work done per task across machines."""
        out = np.zeros(self.n_tasks)
        for rec in self.records:
            out[rec.task] += rec.flops
        return out

    def task_completion(self) -> np.ndarray:
        """Latest end time per task (0 for tasks never executed)."""
        out = np.zeros(self.n_tasks)
        for rec in self.records:
            out[rec.task] = max(out[rec.task], rec.end)
        return out

    def machine_busy(self) -> np.ndarray:
        """Total busy seconds per machine."""
        out = np.zeros(self.n_machines)
        for rec in self.records:
            out[rec.machine] += rec.duration
        return out

    def makespan(self) -> float:
        """End of the last share (0 for an empty trace)."""
        return max((rec.end for rec in self.records), default=0.0)

    def gantt(self, *, width: int = 72, min_share: float = 1e-9) -> str:
        """ASCII Gantt chart (one row per machine) for examples/debugging."""
        span = self.makespan()
        if span <= 0:
            return "(empty trace)"
        lines = []
        for r in range(self.n_machines):
            row = [" "] * width
            for rec in self.records:
                if rec.machine != r or rec.duration < min_share:
                    continue
                lo = int(rec.start / span * (width - 1))
                hi = max(int(rec.end / span * (width - 1)), lo)
                label = str(rec.task % 10)
                for x in range(lo, hi + 1):
                    row[x] = label
            lines.append(f"m{r:<2d} |{''.join(row)}|")
        lines.append(f"     0{' ' * (width - 12)}{span:.4g}s")
        return "\n".join(lines)

    def to_svg(
        self,
        *,
        width: int = 800,
        row_height: int = 28,
        colors: Sequence[str] = ("#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948"),
    ) -> str:
        """Render the trace as a standalone SVG Gantt chart.

        Dependency-free (string assembly); one row per machine, one
        rectangle per task share, tasks coloured cyclically with the
        task index as a label.  Open the result in any browser.
        """
        span = self.makespan()
        margin, label_w = 8, 40
        chart_w = width - 2 * margin - label_w
        height = self.n_machines * row_height + 2 * margin + 20
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
            f'font-family="monospace" font-size="11">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]
        for r in range(self.n_machines):
            y = margin + r * row_height
            parts.append(
                f'<text x="{margin}" y="{y + row_height * 0.65:.1f}" fill="#333">m{r}</text>'
            )
            parts.append(
                f'<line x1="{margin + label_w}" y1="{y + row_height - 4}" '
                f'x2="{width - margin}" y2="{y + row_height - 4}" stroke="#ddd"/>'
            )
        if span > 0:
            for rec in self.records:
                x = margin + label_w + rec.start / span * chart_w
                w = max(rec.duration / span * chart_w, 1.0)
                y = margin + rec.machine * row_height + 3
                color = colors[rec.task % len(colors)]
                parts.append(
                    f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{row_height - 10}" '
                    f'fill="{color}" stroke="#333" stroke-width="0.5">'
                    f"<title>task {rec.task}: {rec.start:.4g}s–{rec.end:.4g}s "
                    f"({rec.flops:.3g} FLOP)</title></rect>"
                )
                if w > 14:
                    parts.append(
                        f'<text x="{x + 2:.1f}" y="{y + row_height * 0.5:.1f}" '
                        f'fill="white">{rec.task}</text>'
                    )
        axis_y = margin + self.n_machines * row_height + 12
        parts.append(f'<text x="{margin + label_w}" y="{axis_y}" fill="#333">0</text>')
        parts.append(
            f'<text x="{width - margin - 50}" y="{axis_y}" fill="#333">{span:.4g}s</text>'
        )
        parts.append("</svg>")
        return "".join(parts)
