"""A small discrete-event simulation engine.

The cluster simulator (and the online-serving example) are built on this
classic event-heap core: callbacks are scheduled at absolute times and
executed in time order (FIFO among equal times).  The engine is
deliberately minimal — no processes or channels — because the workloads
here are open-loop: schedules are computed up front and the simulator
replays them, checking the model's assumptions against "physical" time.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

from ..telemetry import get_collector
from ..utils.errors import SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered callback executor."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (≥ now)."""
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN time")
        if time < self._now - 1e-12 * max(abs(self._now), 1.0):
            raise SimulationError(f"cannot schedule in the past: {time} < now {self._now}")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Process events in order; returns the final simulation time.

        ``until`` stops the clock at that time (remaining events stay
        queued); without it the queue drains completely.
        """
        if self._running:
            raise SimulationError("EventQueue.run is not reentrant")
        self._running = True
        # Telemetry is batched: events are counted locally and reported
        # once per run() so the per-event hot path stays untouched.
        dispatched = 0
        try:
            while self._heap:
                time, _, callback = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._heap)
                self._now = time
                dispatched += 1
                callback()
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self._running = False
            tele = get_collector()
            tele.counter("sim_events_total").add(dispatched)
            tele.gauge("sim_clock_seconds").set(self._now)

    def __len__(self) -> int:
        return len(self._heap)
