"""Typed event records emitted by the cluster simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaskStarted", "TaskFinished", "MachineIdle", "SimEvent"]


@dataclass(frozen=True)
class TaskStarted:
    """A task's share began executing on a machine."""

    time: float
    task: int
    machine: int


@dataclass(frozen=True)
class TaskFinished:
    """A task's share finished on a machine.

    ``flops`` is the work done by this machine's share; ``missed_deadline``
    flags completions past the task's deadline (the simulator's audit —
    the algorithms should never produce one).
    """

    time: float
    task: int
    machine: int
    flops: float
    missed_deadline: bool


@dataclass(frozen=True)
class MachineIdle:
    """A machine ran out of queued work."""

    time: float
    machine: int


SimEvent = TaskStarted | TaskFinished | MachineIdle
