"""Power accounting models for the simulator.

The paper's model (Eq. 1f) charges only *busy* time at ``P_r = s_r/E_r``.
Real servers also draw idle power, which the paper leaves to future
work; :class:`PowerModel` supports both so the idle-power ablation can
quantify how much of the "energy saved" survives a non-zero floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.machine import Cluster
from ..utils.errors import ValidationError

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Busy/idle power accounting for a cluster.

    ``idle_fraction`` sets each machine's idle draw as a fraction of its
    busy power (typical servers: 0.1–0.5); per-machine ``idle_power``
    overrides take precedence when a machine was built with one.
    """

    cluster: Cluster
    idle_fraction: float = 0.0
    account_idle: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_fraction <= 1.0:
            raise ValidationError(f"idle_fraction must lie in [0, 1], got {self.idle_fraction}")

    @property
    def busy_powers(self) -> np.ndarray:
        """``P_r`` vector (W)."""
        return self.cluster.powers

    @property
    def idle_powers(self) -> np.ndarray:
        """Idle draw per machine (W)."""
        explicit = np.array([m.idle_power for m in self.cluster])
        fallback = self.busy_powers * self.idle_fraction
        return np.where(explicit > 0, explicit, fallback)

    def energy(self, busy_seconds: Sequence[float], horizon: Optional[float] = None) -> float:
        """Total energy (J) for the given per-machine busy time.

        With ``account_idle`` the remainder of ``horizon`` (default: the
        longest busy time) is charged at idle power on every machine.
        """
        busy = np.asarray(busy_seconds, dtype=float)
        if busy.shape != (len(self.cluster),):
            raise ValidationError(f"expected {len(self.cluster)} busy times, got {busy.shape}")
        if np.any(busy < 0):
            raise ValidationError("busy times must be >= 0")
        total = float(busy @ self.busy_powers)
        if self.account_idle:
            h = float(horizon) if horizon is not None else float(busy.max(initial=0.0))
            if np.any(busy > h * (1 + 1e-12)):
                raise ValidationError("horizon shorter than a machine's busy time")
            total += float(np.clip(h - busy, 0.0, None) @ self.idle_powers)
        return total
