"""Replay a schedule on a simulated cluster and audit the model.

:class:`ClusterSimulator` executes a :class:`~repro.core.schedule.Schedule`
with the discrete-event engine: every machine runs its task shares
back-to-back in EDF order starting at t = 0 (exactly the execution model
behind constraint (1b)); the simulator then measures — rather than
assumes — completion times, work done, accuracy and energy.

This is the library's ground-truth substrate: tests assert that the
algebraic quantities on :class:`Schedule` agree with what the simulated
cluster observes, and the audit catches any scheduler that emits
deadline-violating or budget-violating plans.
"""

from __future__ import annotations

from typing import List, Optional


from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..utils.errors import SimulationError
from .engine import EventQueue
from .events import MachineIdle, SimEvent, TaskFinished, TaskStarted
from .metrics import SimulationReport
from .power import PowerModel
from .trace import ExecutionTrace, TaskRecord

__all__ = ["ClusterSimulator"]

#: Shares shorter than this (relative to the last deadline) are skipped —
#: they carry no measurable work and only add event noise.
_MIN_SHARE_REL = 1e-12


class ClusterSimulator:
    """Discrete-event replay of schedules for one problem instance."""

    def __init__(self, instance: ProblemInstance, *, power_model: Optional[PowerModel] = None):
        self.instance = instance
        self.power_model = power_model or PowerModel(instance.cluster)
        if power_model is not None and power_model.cluster is not instance.cluster:
            raise SimulationError("power model must wrap the instance's cluster")

    def run(self, schedule: Schedule, *, collect_events: bool = False) -> SimulationReport:
        """Execute ``schedule``; returns the measured report."""
        if schedule.instance is not self.instance:
            raise SimulationError("schedule belongs to a different instance")
        n, m = self.instance.n_tasks, self.instance.n_machines
        times = schedule.times
        speeds = self.instance.cluster.speeds
        deadlines = self.instance.tasks.deadlines
        min_share = _MIN_SHARE_REL * self.instance.tasks.d_max

        queue = EventQueue()
        trace = ExecutionTrace(n, m)
        events: List[SimEvent] = []
        misses: List[tuple[int, int, float]] = []

        # Per-machine FIFO of (task, duration) shares in EDF order.
        backlog: List[List[tuple[int, float]]] = [
            [(j, float(times[j, r])) for j in range(n) if times[j, r] > min_share] for r in range(m)
        ]
        cursor = [0] * m

        def start_next(r: int) -> None:
            if cursor[r] >= len(backlog[r]):
                if collect_events:
                    events.append(MachineIdle(queue.now, r))
                return
            j, duration = backlog[r][cursor[r]]
            cursor[r] += 1
            start = queue.now
            if collect_events:
                events.append(TaskStarted(start, j, r))

            def finish(j=j, r=r, start=start, duration=duration) -> None:
                end = queue.now
                flops = duration * speeds[r]
                missed = end > deadlines[j] * (1.0 + 1e-9)
                if missed:
                    misses.append((j, r, end - deadlines[j]))
                trace.add(TaskRecord(task=j, machine=r, start=start, end=end, flops=flops))
                if collect_events:
                    events.append(TaskFinished(end, j, r, flops, missed))
                start_next(r)

            queue.schedule_in(duration, finish)

        for r in range(m):
            queue.schedule_at(0.0, lambda r=r: start_next(r))
        queue.run()

        return SimulationReport.from_trace(
            self.instance,
            trace,
            self.power_model,
            deadline_misses=tuple(misses),
            events=tuple(events) if collect_events else (),
        )
