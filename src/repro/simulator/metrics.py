"""Measured outcomes of a simulated run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.instance import ProblemInstance
from .events import SimEvent
from .power import PowerModel
from .trace import ExecutionTrace

__all__ = ["SimulationReport"]


@dataclass(frozen=True)
class SimulationReport:
    """Everything the simulated cluster measured while replaying a plan."""

    instance: ProblemInstance
    trace: ExecutionTrace
    task_flops: np.ndarray
    task_accuracies: np.ndarray
    task_completion: np.ndarray
    machine_busy: np.ndarray
    energy: float
    deadline_misses: Tuple[tuple[int, int, float], ...]
    events: Tuple[SimEvent, ...] = ()

    @classmethod
    def from_trace(
        cls,
        instance: ProblemInstance,
        trace: ExecutionTrace,
        power_model: PowerModel,
        *,
        deadline_misses: Tuple[tuple[int, int, float], ...] = (),
        events: Tuple[SimEvent, ...] = (),
    ) -> "SimulationReport":
        flops = trace.task_flops()
        return cls(
            instance=instance,
            trace=trace,
            task_flops=flops,
            task_accuracies=instance.tasks.accuracies(flops),
            task_completion=trace.task_completion(),
            machine_busy=trace.machine_busy(),
            energy=power_model.energy(trace.machine_busy(), horizon=instance.tasks.d_max if power_model.account_idle else None),
            deadline_misses=deadline_misses,
            events=events,
        )

    # -- aggregates ------------------------------------------------------------

    @property
    def total_accuracy(self) -> float:
        return float(self.task_accuracies.sum())

    @property
    def mean_accuracy(self) -> float:
        return self.total_accuracy / self.instance.n_tasks

    @property
    def within_budget(self) -> bool:
        budget = self.instance.budget
        return self.energy <= budget * (1.0 + 1e-7) if np.isfinite(budget) else True

    @property
    def all_deadlines_met(self) -> bool:
        return not self.deadline_misses

    @property
    def makespan(self) -> float:
        return self.trace.makespan()

    @property
    def utilization(self) -> np.ndarray:
        """Busy fraction per machine over the deadline horizon."""
        horizon = self.instance.tasks.d_max
        return self.machine_busy / horizon if horizon > 0 else np.zeros_like(self.machine_busy)

    def summary(self) -> str:
        """Human-readable digest (used by examples)."""
        lines = [
            f"tasks: {self.instance.n_tasks}, machines: {self.instance.n_machines}",
            f"mean accuracy:     {self.mean_accuracy:.4f}",
            f"energy:            {self.energy:.1f} J"
            + (f" / budget {self.instance.budget:.1f} J" if np.isfinite(self.instance.budget) else " (no budget)"),
            f"deadlines met:     {self.all_deadlines_met} ({len(self.deadline_misses)} misses)",
            f"makespan:          {self.makespan:.4g} s",
            f"utilization:       {np.array2string(self.utilization, precision=2)}",
        ]
        return "\n".join(lines)
