"""Failure injection for the cluster simulator.

The paper assumes machines never fail; a production scheduler cares what
a plan loses when they do.  :class:`FailureModel` injects machine
outages and slowdowns into a schedule replay:

* an **outage** stops a machine at a given time: the share running at
  that moment is truncated, queued shares never run;
* a **slowdown** multiplies a machine's speed from a given time onward
  (thermal throttling, co-location interference): shares take
  proportionally longer and may blow their deadlines.

:func:`replay_with_failures` executes a schedule under a failure model
and reports the *realised* accuracy, energy and deadline misses —
quantifying the robustness margin of DSCT-EA-APPROX plans (e.g. how much
accuracy a mid-horizon outage of the most-loaded machine costs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..utils.errors import ValidationError
from ..utils.validation import check_nonnegative, require

__all__ = [
    "Outage",
    "Slowdown",
    "FailureEvent",
    "FailureModel",
    "FailureReport",
    "replay_with_failures",
    "replay_with_duration_noise",
]


@dataclass(frozen=True)
class Outage:
    """Machine ``machine`` stops executing at time ``at`` (seconds)."""

    machine: int
    at: float

    def __post_init__(self) -> None:
        check_nonnegative(self.at, "at")


@dataclass(frozen=True)
class Slowdown:
    """Machine ``machine`` runs at ``factor`` × speed from time ``at``."""

    machine: int
    at: float
    factor: float

    def __post_init__(self) -> None:
        check_nonnegative(self.at, "at")
        require(0.0 < self.factor <= 1.0, f"slowdown factor must lie in (0, 1], got {self.factor}")


@dataclass(frozen=True)
class FailureModel:
    """A set of injected failures (at most one outage/slowdown per machine)."""

    outages: tuple[Outage, ...] = ()
    slowdowns: tuple[Slowdown, ...] = ()

    def __post_init__(self) -> None:
        for group, name in ((self.outages, "outage"), (self.slowdowns, "slowdown")):
            machines = [f.machine for f in group]
            if len(machines) != len(set(machines)):
                raise ValidationError(f"at most one {name} per machine")

    def outage_at(self, machine: int) -> float:
        for o in self.outages:
            if o.machine == machine:
                return o.at
        return math.inf

    def slowdown_for(self, machine: int) -> Optional[Slowdown]:
        for s in self.slowdowns:
            if s.machine == machine:
                return s
        return None

    # -- event-stream view (consumed by repro.resilience.replan and the
    # -- online simulator, which react to failures one event at a time) --------

    def events(self) -> Tuple["FailureEvent", ...]:
        """All failures as one time-ordered stream.

        Ties break outage-first: a machine that dies at ``t`` never gets
        to run slower from ``t``.
        """
        stream: List[FailureEvent] = list(self.outages) + list(self.slowdowns)
        return tuple(sorted(stream, key=lambda e: (e.at, isinstance(e, Slowdown))))

    def shifted(self, offset: float) -> "FailureModel":
        """The same failures on a clock that starts ``offset`` seconds later.

        Event times are reduced by ``offset`` and clamped at zero: a
        machine that already died is dead from the start of the shifted
        frame, a running slowdown applies from time zero.  Used to
        express a global failure stream in window-local coordinates.
        """
        return FailureModel(
            outages=tuple(Outage(o.machine, max(o.at - offset, 0.0)) for o in self.outages),
            slowdowns=tuple(
                Slowdown(s.machine, max(s.at - offset, 0.0), s.factor) for s in self.slowdowns
            ),
        )

    def dead_machines(self, at: float) -> frozenset:
        """Machines whose outage has struck by time ``at`` (inclusive)."""
        return frozenset(o.machine for o in self.outages if o.at <= at)


#: One entry of :meth:`FailureModel.events`.
FailureEvent = Union[Outage, Slowdown]


@dataclass(frozen=True)
class FailureReport:
    """Realised outcome of a schedule under injected failures."""

    task_flops: np.ndarray
    task_accuracies: np.ndarray
    task_completion: np.ndarray
    machine_busy: np.ndarray
    energy: float
    deadline_misses: tuple[int, ...]
    truncated_tasks: tuple[int, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(self.task_accuracies.mean())

    @property
    def total_accuracy(self) -> float:
        return float(self.task_accuracies.sum())


def replay_with_failures(
    instance: ProblemInstance,
    schedule: Schedule,
    failures: FailureModel,
) -> FailureReport:
    """Execute ``schedule`` under ``failures``; returns realised metrics.

    Machines run their shares back-to-back in EDF order (the model's
    execution semantics).  A slowdown stretches the portion of a share
    executed after its onset; an outage truncates the share in flight
    and cancels the rest of the queue.  Flops are credited for the work
    actually performed, and the tasks' accuracy functions convert them
    into realised accuracy.
    """
    n, m = instance.n_tasks, instance.n_machines
    for o in failures.outages:
        if not 0 <= o.machine < m:
            raise ValidationError(f"outage references machine {o.machine} (m = {m})")
    for s in failures.slowdowns:
        if not 0 <= s.machine < m:
            raise ValidationError(f"slowdown references machine {s.machine} (m = {m})")

    speeds = instance.cluster.speeds
    powers = instance.cluster.powers
    deadlines = instance.tasks.deadlines
    times = schedule.times

    flops = np.zeros(n)
    completion = np.zeros(n)
    busy = np.zeros(m)
    truncated: List[int] = []

    for r in range(m):
        outage = failures.outage_at(r)
        slow = failures.slowdown_for(r)
        clock = 0.0
        for j in range(n):
            nominal = float(times[j, r])
            if nominal <= 0.0:
                continue
            work = nominal * speeds[r]  # FLOP this share owes
            start = clock
            # Wall time to perform `work`, given the slowdown onset.
            if slow is None or start + nominal <= slow.at:
                duration = nominal
            else:
                before = max(slow.at - start, 0.0)
                remaining_work = work - before * speeds[r]
                duration = before + remaining_work / (speeds[r] * slow.factor)
            end = start + duration

            if start >= outage:
                truncated.append(j)
                continue  # never started
            if end > outage:
                # Truncated mid-share: credit the work done until the outage.
                done_wall = outage - start
                if slow is None or outage <= slow.at:
                    done_work = done_wall * speeds[r]
                else:
                    before = max(slow.at - start, 0.0)
                    done_work = before * speeds[r] + (done_wall - before) * speeds[r] * slow.factor
                flops[j] += done_work
                busy[r] += done_wall
                completion[j] = max(completion[j], outage)
                truncated.append(j)
                clock = outage
                continue

            flops[j] += work
            busy[r] += duration
            completion[j] = max(completion[j], end)
            clock = end

    accuracies = instance.tasks.accuracies(flops)
    misses = tuple(
        int(j) for j in range(n) if flops[j] > 0 and completion[j] > deadlines[j] * (1.0 + 1e-9)
    )
    energy = float(busy @ powers)
    return FailureReport(
        task_flops=flops,
        task_accuracies=accuracies,
        task_completion=completion,
        machine_busy=busy,
        energy=energy,
        deadline_misses=misses,
        truncated_tasks=tuple(sorted(set(truncated))),
    )


def replay_with_duration_noise(
    instance: ProblemInstance,
    schedule: Schedule,
    *,
    sigma: float = 0.1,
    seed=None,
) -> FailureReport:
    """Execute a schedule whose share durations jitter log-normally.

    Profiled latencies are estimates; at execution each share's duration
    is multiplied by ``exp(N(0, sigma))`` (mean ~1).  The work performed
    is unchanged — the share runs to completion, just not on time — so
    accuracy is preserved while deadlines absorb the noise.  The report's
    ``deadline_misses`` is the quantity of interest: it measures how much
    deadline slack the plan's cut-and-shift left as a safety margin.
    """
    from ..utils.rng import ensure_rng
    from ..utils.validation import check_nonnegative

    check_nonnegative(sigma, "sigma")
    rng = ensure_rng(seed)
    n, m = instance.n_tasks, instance.n_machines
    speeds = instance.cluster.speeds
    powers = instance.cluster.powers
    deadlines = instance.tasks.deadlines
    times = schedule.times

    flops = np.zeros(n)
    completion = np.zeros(n)
    busy = np.zeros(m)
    for r in range(m):
        clock = 0.0
        for j in range(n):
            nominal = float(times[j, r])
            if nominal <= 0.0:
                continue
            factor = float(np.exp(rng.normal(0.0, sigma))) if sigma > 0 else 1.0
            duration = nominal * factor
            clock += duration
            busy[r] += duration
            flops[j] += nominal * speeds[r]  # the work owed is completed
            completion[j] = max(completion[j], clock)

    accuracies = instance.tasks.accuracies(flops)
    misses = tuple(
        int(j) for j in range(n) if flops[j] > 0 and completion[j] > deadlines[j] * (1.0 + 1e-9)
    )
    return FailureReport(
        task_flops=flops,
        task_accuracies=accuracies,
        task_completion=completion,
        machine_busy=busy,
        energy=float(busy @ powers),
        deadline_misses=misses,
        truncated_tasks=(),
    )
