"""Deterministic random-number plumbing.

All stochastic code in the library takes a ``seed`` argument that may be

* ``None`` — fresh OS entropy,
* an ``int`` — reproducible stream,
* a ``numpy.random.Generator`` — used as-is (caller controls the stream).

:func:`ensure_rng` normalises the three forms.  :func:`spawn` derives
independent child generators so that, e.g., each repetition of an
experiment gets its own stream and adding repetitions never perturbs
earlier ones.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "spawn"]

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Children are derived through NumPy's ``spawn`` mechanism so streams do
    not overlap, and the i-th child is a pure function of ``(seed, i)``.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return ensure_rng(seed).spawn(n)
