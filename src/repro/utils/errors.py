"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library-level failures without
accidentally swallowing programming errors (``TypeError`` etc. propagate
unchanged).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "InfeasibleError",
    "SolverError",
    "SolverTimeoutError",
    "FallbackExhaustedError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ValidationError(ReproError, ValueError):
    """Invalid input data: negative speeds, unsorted breakpoints, ..."""


class InfeasibleError(ReproError):
    """The problem instance admits no feasible solution.

    For DSCT-EA this is rare — the all-zero schedule is always feasible
    when the budget is non-negative — but degenerate inputs (negative
    budget, negative deadlines) raise this.
    """


class SolverError(ReproError):
    """An exact solver (LP/MIP backend) failed or returned a bad status."""


class SolverTimeoutError(SolverError):
    """A solver exceeded its wall-clock deadline (see repro.resilience)."""


class FallbackExhaustedError(SolverError):
    """Every tier of a fallback chain timed out or failed."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""
