"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library-level failures without
accidentally swallowing programming errors (``TypeError`` etc. propagate
unchanged).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "InfeasibleError",
    "SolverError",
    "SolverTimeoutError",
    "FallbackExhaustedError",
    "SimulationError",
    "DurabilityError",
    "JournalCorruptError",
    "RecoveryError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ValidationError(ReproError, ValueError):
    """Invalid input data: negative speeds, unsorted breakpoints, ..."""


class InfeasibleError(ReproError):
    """The problem instance admits no feasible solution.

    For DSCT-EA this is rare — the all-zero schedule is always feasible
    when the budget is non-negative — but degenerate inputs (negative
    budget, negative deadlines) raise this.
    """


class SolverError(ReproError):
    """An exact solver (LP/MIP backend) failed or returned a bad status."""


class SolverTimeoutError(SolverError):
    """A solver exceeded its wall-clock deadline (see repro.resilience)."""


class FallbackExhaustedError(SolverError):
    """Every tier of a fallback chain timed out or failed."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""


class DurabilityError(ReproError):
    """Base class for crash-safety failures (see repro.durability)."""


class JournalCorruptError(DurabilityError):
    """A journal holds invalid records *before* its torn tail.

    A truncated tail is expected after a crash and is repaired silently;
    garbage followed by further valid records means the file was damaged
    some other way, and recovery refuses to guess.
    """


class RecoveryError(DurabilityError):
    """Recovered state failed certification or does not match the run."""
