"""Unit conventions and conversions.

The library stores all quantities internally in SI units:

===============  =========================  =====================
quantity         internal unit              typical constructor
===============  =========================  =====================
work             FLOP (floating-point ops)  :func:`tflop`
speed            FLOP/s                     :func:`tflops`
time             second                     plain float
power            Watt                       plain float
energy           Joule                      plain float
efficiency       FLOP/J (= FLOP/s/W)        :func:`gflops_per_watt`
accuracy         fraction in [0, 1]         plain float
===============  =========================  =====================

The paper quotes machine speeds in TFLOPS (10**12 FLOP/s) and energy
efficiencies in GFLOPS/W (10**9 FLOP/J); the helpers here are the single
conversion point so that the rest of the code never multiplies by raw
powers of ten.

float64 headroom: a 20 TFLOPS machine running for an hour performs
7.2e16 FLOP, ~39 bits — far inside the 53-bit mantissa, so plain SI
floats are safe without rescaling.
"""

from __future__ import annotations

__all__ = [
    "TERA",
    "GIGA",
    "MEGA",
    "KILO",
    "tflop",
    "gflop",
    "tflops",
    "gflops",
    "gflops_per_watt",
    "as_tflop",
    "as_gflop",
    "as_tflops",
    "as_gflops_per_watt",
    "joules",
    "watt_hours",
    "as_watt_hours",
]

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12


def tflop(value: float) -> float:
    """Convert teraFLOP to FLOP."""
    return value * TERA


def gflop(value: float) -> float:
    """Convert gigaFLOP to FLOP."""
    return value * GIGA


def tflops(value: float) -> float:
    """Convert TFLOPS (10**12 FLOP/s) to FLOP/s."""
    return value * TERA


def gflops(value: float) -> float:
    """Convert GFLOPS (10**9 FLOP/s) to FLOP/s."""
    return value * GIGA


def gflops_per_watt(value: float) -> float:
    """Convert GFLOPS/W to FLOP/J (the internal efficiency unit)."""
    return value * GIGA


def as_tflop(value: float) -> float:
    """Convert FLOP to teraFLOP (for display)."""
    return value / TERA


def as_gflop(value: float) -> float:
    """Convert FLOP to gigaFLOP (for display)."""
    return value / GIGA


def as_tflops(value: float) -> float:
    """Convert FLOP/s to TFLOPS (for display)."""
    return value / TERA


def as_gflops_per_watt(value: float) -> float:
    """Convert FLOP/J to GFLOPS/W (for display)."""
    return value / GIGA


def joules(value: float) -> float:
    """Identity — energy is already stored in Joules; kept for symmetry."""
    return value


def watt_hours(value: float) -> float:
    """Convert watt-hours to Joules."""
    return value * 3600.0


def as_watt_hours(value: float) -> float:
    """Convert Joules to watt-hours (for display)."""
    return value / 3600.0
