"""Crash-safe file primitives shared across the library.

A plain ``Path.write_text`` is *not* crash-safe: a process killed
mid-write leaves a truncated file under the final name, silently
corrupting saved instances, schedules and metric exports.  The standard
fix — used by every journaled system — is implemented once here:

* :func:`atomic_write` writes to a temporary file in the *same
  directory* (rename is only atomic within a filesystem), flushes and
  ``fsync``\\ s it, then atomically renames it over the target.  Readers
  therefore only ever observe the old contents or the complete new
  contents, never a torn intermediate.
* :func:`fsync_directory` persists a directory entry itself (the rename
  or a newly created file) so the *name* survives a power loss, not just
  the bytes.  Best-effort: some filesystems refuse directory fds.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write", "fsync_directory"]


def fsync_directory(path: Union[str, Path]) -> None:
    """Flush a directory entry to stable storage (best-effort)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return  # e.g. Windows, or a filesystem without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, Path],
    data: Union[str, bytes],
    *,
    fsync: bool = True,
    encoding: str = "utf-8",
) -> Path:
    """Write ``data`` to ``path`` atomically (write-temp + fsync + rename).

    ``fsync=False`` skips the durability barrier (the rename is still
    atomic, but after a power loss the file may hold the old contents).
    Returns the target path.
    """
    path = Path(path)
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(path.parent)
    return path
