"""Wall-clock measurement helpers for the runtime experiments (Fig. 4, Table 1).

The paper compares algorithm execution times; these helpers keep the
measurement convention (``perf_counter``, best-of / mean-of repetitions)
in one place so all experiments time things the same way.

All helpers optionally report into the active telemetry collector
(:mod:`repro.telemetry`): pass ``metric="some_histogram_name"`` (plus
labels) and every measured duration is also observed into that
histogram — with no collector active the report is a no-op.  The
original positional API is unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

from ..telemetry import get_collector

__all__ = ["Timer", "TimingResult", "time_call", "repeat_call"]

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True

    With ``metric`` (and optional labels), the elapsed time is also
    observed into that histogram of the active telemetry collector::

        with Timer(metric="experiment_solve_seconds", solver="approx"):
            scheduler.solve(instance)
    """

    def __init__(self, metric: Optional[str] = None, **labels: str) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0
        self._metric = metric
        self._labels = labels

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        if self._metric is not None:
            get_collector().histogram(self._metric, **self._labels).observe(self.elapsed)


@dataclass
class TimingResult:
    """Aggregate of repeated timings of one callable."""

    seconds: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Mean elapsed seconds (0.0 when empty)."""
        return sum(self.seconds) / len(self.seconds) if self.seconds else 0.0

    @property
    def best(self) -> float:
        """Minimum elapsed seconds."""
        return min(self.seconds) if self.seconds else 0.0

    @property
    def worst(self) -> float:
        """Maximum elapsed seconds."""
        return max(self.seconds) if self.seconds else 0.0


def time_call(fn: Callable[[], T], *, metric: Optional[str] = None, **labels: str) -> tuple[T, float]:
    """Call ``fn`` once, returning ``(result, elapsed_seconds)``.

    ``metric``/labels forward to the active telemetry collector exactly
    like :class:`Timer`.
    """
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    if metric is not None:
        get_collector().histogram(metric, **labels).observe(elapsed)
    return result, elapsed


def repeat_call(
    fn: Callable[[], T], repetitions: int = 3, *, metric: Optional[str] = None, **labels: str
) -> TimingResult:
    """Time ``fn`` several times (paper experiments average over instances)."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    result = TimingResult()
    for _ in range(repetitions):
        _, elapsed = time_call(fn, metric=metric, **labels)
        result.seconds.append(elapsed)
    return result
