"""Wall-clock measurement helpers for the runtime experiments (Fig. 4, Table 1).

The paper compares algorithm execution times; these helpers keep the
measurement convention (``perf_counter``, best-of / mean-of repetitions)
in one place so all experiments time things the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

__all__ = ["Timer", "TimingResult", "time_call", "repeat_call"]

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingResult:
    """Aggregate of repeated timings of one callable."""

    seconds: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Mean elapsed seconds (0.0 when empty)."""
        return sum(self.seconds) / len(self.seconds) if self.seconds else 0.0

    @property
    def best(self) -> float:
        """Minimum elapsed seconds."""
        return min(self.seconds) if self.seconds else 0.0

    @property
    def worst(self) -> float:
        """Maximum elapsed seconds."""
        return max(self.seconds) if self.seconds else 0.0


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Call ``fn`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def repeat_call(fn: Callable[[], T], repetitions: int = 3) -> TimingResult:
    """Time ``fn`` several times (paper experiments average over instances)."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    result = TimingResult()
    for _ in range(repetitions):
        _, elapsed = time_call(fn)
        result.seconds.append(elapsed)
    return result
