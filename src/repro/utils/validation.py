"""Small reusable argument validators.

These raise :class:`~repro.utils.errors.ValidationError` (a ``ValueError``
subclass) with messages naming the offending argument, keeping the checks
in data-model constructors one-liners.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ValidationError

__all__ = [
    "require",
    "check_positive",
    "check_nonnegative",
    "check_finite",
    "check_fraction",
    "check_sorted",
    "check_same_length",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` (and finite); return it."""
    check_finite(value, name)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate ``value >= 0`` (and finite); return it."""
    check_finite(value, name)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_finite(value: float, name: str) -> float:
    """Validate that ``value`` is a finite real number; return it."""
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Validate ``0 <= value <= 1``; return it."""
    check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_sorted(values: Sequence[float], name: str, *, strict: bool = False) -> None:
    """Validate that ``values`` is non-decreasing (or increasing if strict)."""
    arr = np.asarray(values, dtype=float)
    if arr.size <= 1:
        return
    diffs = np.diff(arr)
    bad = (diffs <= 0) if strict else (diffs < 0)
    if np.any(bad):
        kind = "strictly increasing" if strict else "non-decreasing"
        raise ValidationError(f"{name} must be {kind}, got {list(arr)}")


def check_same_length(name_a: str, a: Iterable, name_b: str, b: Iterable) -> None:
    """Validate that two sized iterables have equal length."""
    la, lb = len(list(a)), len(list(b))
    if la != lb:
        raise ValidationError(f"{name_a} (len {la}) and {name_b} (len {lb}) must have equal length")
