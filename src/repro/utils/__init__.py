"""Shared utilities: units, RNG plumbing, validation, timing, file I/O, errors."""

from . import units
from .errors import (
    DurabilityError,
    InfeasibleError,
    JournalCorruptError,
    RecoveryError,
    ReproError,
    SimulationError,
    SolverError,
    ValidationError,
)
from .fileio import atomic_write, fsync_directory
from .rng import SeedLike, ensure_rng, spawn
from .timing import Timer, TimingResult, repeat_call, time_call
from .validation import (
    check_finite,
    check_fraction,
    check_nonnegative,
    check_positive,
    check_same_length,
    check_sorted,
    require,
)

__all__ = [
    "units",
    "ReproError",
    "ValidationError",
    "InfeasibleError",
    "SolverError",
    "SimulationError",
    "DurabilityError",
    "JournalCorruptError",
    "RecoveryError",
    "atomic_write",
    "fsync_directory",
    "SeedLike",
    "ensure_rng",
    "spawn",
    "Timer",
    "TimingResult",
    "time_call",
    "repeat_call",
    "require",
    "check_positive",
    "check_nonnegative",
    "check_finite",
    "check_fraction",
    "check_sorted",
    "check_same_length",
]
