"""repro — reproduction of "Scheduling Machine Learning Compressible
Inference Tasks with Limited Energy Budget" (ICPP 2024).

Public API highlights
---------------------

Data model (``repro.core``):
    :class:`~repro.core.accuracy.PiecewiseLinearAccuracy`,
    :class:`~repro.core.accuracy.ExponentialAccuracy`,
    :class:`~repro.core.task.Task` / :class:`~repro.core.task.TaskSet`,
    :class:`~repro.core.machine.Machine` / :class:`~repro.core.machine.Cluster`,
    :class:`~repro.core.instance.ProblemInstance`,
    :class:`~repro.core.schedule.Schedule`.

Algorithms (``repro.algorithms``):
    :class:`~repro.algorithms.fractional.FractionalScheduler` (DSCT-EA-FR-OPT
    / DSCT-EA-UB) and :class:`~repro.algorithms.approx.ApproxScheduler`
    (DSCT-EA-APPROX) — the paper's contribution.

Exact solvers (``repro.exact``):
    :class:`~repro.exact.mip.MIPScheduler` and
    :class:`~repro.exact.lp.LPFractionalScheduler` (HiGHS in the role of
    the paper's MOSEK).

Baselines (``repro.baselines``), workload generation
(``repro.workloads``), hardware catalog (``repro.hardware``), synthetic
OFA model zoo (``repro.models``), discrete-event simulator
(``repro.simulator``) and the experiment drivers behind every paper
table/figure (``repro.experiments``).

Observability (``repro.telemetry``):
    :class:`~repro.telemetry.registry.MetricsRegistry` (counters,
    gauges, histograms, phase spans),
    :func:`~repro.telemetry.context.collector` activation, and
    JSON-lines/CSV/Prometheus exporters — every solver and serving path
    is instrumented.
"""

from . import core, telemetry, utils
from .core import (
    Cluster,
    ExponentialAccuracy,
    Machine,
    PiecewiseLinearAccuracy,
    ProblemInstance,
    Schedule,
    Task,
    TaskSet,
    fit_piecewise,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "telemetry",
    "utils",
    "Cluster",
    "ExponentialAccuracy",
    "Machine",
    "PiecewiseLinearAccuracy",
    "ProblemInstance",
    "Schedule",
    "Task",
    "TaskSet",
    "fit_piecewise",
    "__version__",
]
