"""Communication-energy extension — the paper's second future-work item.

§7: "we intend to consider in the problem model the energy consumption
resulted from communication of devices."  The natural first model: each
task must ship its input data to the machine that executes it, costing a
fixed per-assignment energy ``c_jr = input_bytes_j · joules_per_byte_r``
(independent of the compression level — the input images always travel).

This changes the budget constraint to
``Σ_{j,r} P_r t_jr + Σ_j c_{j,σ(j)} ≤ B`` where σ is the assignment.
The compute part stays the DSCT-EA structure, so we solve it by fixed
point: schedule with a budget reduced by the previous iteration's
communication bill until the assignment (hence the bill) stabilises —
with a conservative fallback that always terminates feasibly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..algorithms.approx import ApproxScheduler
from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..utils.errors import ValidationError
from ..utils.validation import require

__all__ = ["CommunicationModel", "communication_energy", "CommAwareScheduler"]


@dataclass(frozen=True)
class CommunicationModel:
    """Per-task input sizes and per-machine transfer costs.

    Attributes
    ----------
    input_bytes:
        Bytes each task must receive before executing (length n).
    joules_per_byte:
        Energy cost of delivering one byte to each machine (length m) —
        heterogeneous NICs/fabric per the paper's motivation.
    """

    input_bytes: np.ndarray
    joules_per_byte: np.ndarray

    def __post_init__(self) -> None:
        ib = np.asarray(self.input_bytes, dtype=float)
        jb = np.asarray(self.joules_per_byte, dtype=float)
        if ib.ndim != 1 or jb.ndim != 1:
            raise ValidationError("input_bytes and joules_per_byte must be vectors")
        if np.any(ib < 0) or np.any(jb < 0):
            raise ValidationError("communication quantities must be >= 0")
        ib, jb = ib.copy(), jb.copy()
        ib.setflags(write=False)
        jb.setflags(write=False)
        object.__setattr__(self, "input_bytes", ib)
        object.__setattr__(self, "joules_per_byte", jb)

    @property
    def n_tasks(self) -> int:
        return int(self.input_bytes.size)

    @property
    def n_machines(self) -> int:
        return int(self.joules_per_byte.size)

    def cost_matrix(self) -> np.ndarray:
        """``c_jr`` (n × m): energy to place task j's input on machine r."""
        return np.outer(self.input_bytes, self.joules_per_byte)

    def worst_case_total(self) -> float:
        """Σ_j max_r c_jr — a bill no assignment can exceed."""
        return float(self.cost_matrix().max(axis=1).sum())


def communication_energy(schedule: Schedule, model: CommunicationModel) -> float:
    """Communication bill of an integral schedule's assignment.

    Unassigned tasks (no work anywhere) ship nothing.
    """
    inst = schedule.instance
    if model.n_tasks != inst.n_tasks or model.n_machines != inst.n_machines:
        raise ValidationError("communication model shape does not match the instance")
    assigned = schedule.assigned_machine  # raises for fractional schedules
    costs = model.cost_matrix()
    total = 0.0
    for j, r in enumerate(assigned):
        if r >= 0:
            total += costs[j, r]
    return total


class CommAwareScheduler(Scheduler):
    """DSCT-EA-APPROX with assignment-dependent communication energy.

    Fixed-point loop: solve with budget ``B − bill(previous assignment)``;
    when the bill stops changing (or ``max_rounds`` is hit) fall back to
    the conservative budget ``B − Σ_j max_r c_jr``, which is feasible for
    *any* assignment.  The returned schedule always satisfies the joint
    compute + communication budget.
    """

    name = "DSCT-EA-APPROX-COMM"

    def __init__(
        self,
        model: CommunicationModel,
        *,
        inner: Optional[Scheduler] = None,
        max_rounds: int = 5,
    ):
        require(max_rounds >= 1, "max_rounds must be >= 1")
        self.model = model
        self.inner = inner or ApproxScheduler()
        self.max_rounds = int(max_rounds)

    def _with_budget(self, instance: ProblemInstance, budget: float) -> ProblemInstance:
        return ProblemInstance(instance.tasks, instance.cluster, max(budget, 0.0))

    def solve(self, instance: ProblemInstance) -> Schedule:
        return self.solve_with_info(instance).schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        if self.model.n_tasks != instance.n_tasks or self.model.n_machines != instance.n_machines:
            raise ValidationError("communication model shape does not match the instance")
        budget = instance.budget
        if math.isinf(budget):
            schedule = self.inner.solve(instance)
            bill = communication_energy(schedule, self.model)
            info = SolveInfo(self.name, extra={"comm_energy": bill, "rounds": 1, "fallback": False})
            return SolveResult(schedule, info)

        bill = 0.0
        schedule: Optional[Schedule] = None
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            candidate = self.inner.solve(self._with_budget(instance, budget - bill))
            new_bill = communication_energy(candidate, self.model)
            if candidate.total_energy + new_bill <= budget * (1 + 1e-12):
                schedule = candidate
                bill = new_bill
                break
            bill = new_bill
        fallback = schedule is None
        if fallback:
            # Conservative but always feasible: reserve the worst case.
            reserve = self.model.worst_case_total()
            schedule = self.inner.solve(self._with_budget(instance, budget - reserve))
            bill = communication_energy(schedule, self.model)
        assert schedule is not None
        info = SolveInfo(
            self.name,
            extra={
                "comm_energy": bill,
                "compute_energy": schedule.total_energy,
                "rounds": rounds,
                "fallback": fallback,
            },
        )
        return SolveResult(schedule, info)
