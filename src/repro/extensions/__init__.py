"""Extensions implementing the paper's stated future work (§7)."""

from .carbon import (
    CarbonIntensityCurve,
    duck_curve_grid,
    flat_grid,
    report_carbon,
    schedule_carbon,
)
from .communication import CommAwareScheduler, CommunicationModel, communication_energy
from .consolidation import ConsolidatingScheduler
from .dvfs import DVFSScheduler, OperatingPoint, dvfs_curve
from .pricing import cheapest_budget_for_accuracy, cheapest_cost_for_accuracy
from .renewable import EpochOutcome, RenewablePlanner, RenewableReport, solar_curve
from .weighted import weighted_instance, weighted_total_accuracy

__all__ = [
    "CarbonIntensityCurve",
    "flat_grid",
    "duck_curve_grid",
    "schedule_carbon",
    "report_carbon",
    "CommunicationModel",
    "communication_energy",
    "CommAwareScheduler",
    "ConsolidatingScheduler",
    "DVFSScheduler",
    "OperatingPoint",
    "dvfs_curve",
    "cheapest_budget_for_accuracy",
    "cheapest_cost_for_accuracy",
    "solar_curve",
    "RenewablePlanner",
    "RenewableReport",
    "EpochOutcome",
    "weighted_instance",
    "weighted_total_accuracy",
]
