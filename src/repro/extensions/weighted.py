"""Weighted tasks — priority classes on top of DSCT-EA.

MLaaS tiers pay differently: a premium request's accuracy point is worth
more than a best-effort one.  The weighted objective ``Σ_j w_j a_j(f_j)``
needs no new algorithms: scaling every task's accuracy *values* by
``w_j / max w`` turns the weighted problem into a standard instance
(slopes scale with the weight, so the greedy/exchange machinery prices
tasks correctly), and the optimal schedules coincide.

:func:`weighted_instance` performs that reduction;
:func:`weighted_total_accuracy` evaluates a schedule of the reduced
instance back in original weighted units.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.accuracy import PiecewiseLinearAccuracy
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..core.task import Task, TaskSet
from ..utils.errors import ValidationError

__all__ = ["weighted_instance", "weighted_total_accuracy"]


def weighted_instance(
    instance: ProblemInstance, weights: Sequence[float]
) -> tuple[ProblemInstance, float]:
    """Reduce a weighted problem to a standard one.

    Returns ``(reduced_instance, scale)`` where the reduced instance's
    accuracy functions are the originals scaled by ``w_j / max w`` and
    ``scale = max w``: a schedule's weighted objective equals
    ``scale ×`` its total accuracy on the reduced instance.

    Deadlines, machines and the budget are untouched — the constraint
    geometry does not change, only the objective prices.
    """
    w = np.asarray(list(weights), dtype=float)
    if w.shape != (instance.n_tasks,):
        raise ValidationError(f"need one weight per task ({instance.n_tasks}), got {w.shape}")
    if np.any(w <= 0):
        raise ValidationError("weights must be > 0 (drop zero-weight tasks up front)")
    scale = float(w.max())
    rel = w / scale
    tasks = []
    for task, r in zip(instance.tasks, rel):
        acc = task.accuracy
        scaled = PiecewiseLinearAccuracy(acc.breakpoints, acc.breakpoint_accuracies * r)
        tasks.append(Task(deadline=task.deadline, accuracy=scaled, name=task.name))
    reduced = ProblemInstance(TaskSet(tasks, assume_sorted=True), instance.cluster, instance.budget)
    return reduced, scale


def weighted_total_accuracy(schedule: Schedule, scale: float) -> float:
    """Weighted objective of a reduced-instance schedule (original units)."""
    if scale <= 0:
        raise ValidationError("scale must be > 0 (the max weight from weighted_instance)")
    return schedule.total_accuracy * scale
