"""Carbon accounting — the sustainability lens behind the paper's motivation.

The introduction frames DSCT-EA as a tool for cutting the cloud's carbon
footprint; this module closes the loop by converting Joules into grams
of CO₂ under a (time-varying) grid carbon-intensity curve, and by
scoring schedules/epoch plans in carbon terms.

A :class:`CarbonIntensityCurve` is a step function over hours of day
(g CO₂ per kWh, the unit grid operators publish).  Typical shapes are
provided: a flat average grid and a "duck curve" grid that dips at
midday solar peak — the combination under which carbon-aware scheduling
differs most from energy-aware scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.schedule import Schedule
from ..extensions.renewable import RenewableReport
from ..utils.errors import ValidationError
from ..utils.validation import check_nonnegative

__all__ = [
    "CarbonIntensityCurve",
    "flat_grid",
    "duck_curve_grid",
    "schedule_carbon",
    "report_carbon",
    "JOULES_PER_KWH",
]

JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CarbonIntensityCurve:
    """Hourly step function of grid carbon intensity (g CO₂ / kWh).

    ``values[h]`` applies to hour-of-day ``[h, h+1)``; any number of
    steps ≥ 1 is allowed (they divide the day evenly).
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1 or values.size < 1:
            raise ValidationError("carbon curve needs a 1-D vector with >= 1 step")
        if np.any(values < 0):
            raise ValidationError("carbon intensity must be >= 0")
        values = values.copy()
        values.setflags(write=False)
        object.__setattr__(self, "values", values)

    @property
    def n_steps(self) -> int:
        return int(self.values.size)

    def at_hour(self, hour: float) -> float:
        """Intensity at an hour-of-day (wraps modulo 24)."""
        step = int((hour % 24.0) / 24.0 * self.n_steps)
        return float(self.values[min(step, self.n_steps - 1)])

    def grams_for_energy(self, joules: float, hour: float) -> float:
        """CO₂ (g) for ``joules`` consumed entirely within one step."""
        check_nonnegative(joules, "joules")
        return joules / JOULES_PER_KWH * self.at_hour(hour)

    @property
    def mean_intensity(self) -> float:
        return float(self.values.mean())


def flat_grid(intensity: float = 400.0) -> CarbonIntensityCurve:
    """A constant-intensity grid (default ≈ world-average 2020s mix)."""
    return CarbonIntensityCurve(np.full(24, float(intensity)))


def duck_curve_grid(
    *,
    base: float = 450.0,
    midday_dip: float = 150.0,
    evening_peak: float = 550.0,
) -> CarbonIntensityCurve:
    """A solar-heavy grid: clean at midday, dirty in the evening ramp."""
    hours = np.arange(24, dtype=float)
    values = np.full(24, base)
    values[10:16] = midday_dip
    values[17:21] = evening_peak
    return CarbonIntensityCurve(values)


def schedule_carbon(schedule: Schedule, curve: CarbonIntensityCurve, *, hour: float = 12.0) -> float:
    """CO₂ (g) of one schedule executed at a given hour of day.

    Schedules span seconds, far below the curve's hourly resolution, so
    a single step applies.
    """
    return curve.grams_for_energy(schedule.total_energy, hour)


def report_carbon(
    report: RenewableReport,
    curve: CarbonIntensityCurve,
    *,
    grid_fraction: Sequence[float] | None = None,
) -> float:
    """CO₂ (g) of a day-long epoch plan.

    Epoch ``e`` of ``E`` maps to hour-of-day ``24·e/E``.  With
    ``grid_fraction`` (per-epoch share of the energy drawn from the grid
    rather than local renewables; defaults to all-grid) only that share
    emits.
    """
    n = len(report.epochs)
    if n == 0:
        return 0.0
    if grid_fraction is None:
        fractions = np.ones(n)
    else:
        fractions = np.asarray(list(grid_fraction), dtype=float)
        if fractions.shape != (n,):
            raise ValidationError(f"grid_fraction must have length {n}")
        if np.any((fractions < 0) | (fractions > 1)):
            raise ValidationError("grid_fraction entries must lie in [0, 1]")
    total = 0.0
    for epoch, frac in zip(report.epochs, fractions):
        hour = 24.0 * epoch.epoch / n
        total += curve.grams_for_energy(epoch.energy_used * float(frac), hour)
    return total
