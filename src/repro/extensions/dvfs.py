"""DVFS operating points — speed/power scaling as a scheduling knob.

The paper fixes each machine's (speed, power) pair.  Real accelerators
expose DVFS states: lower clocks cut power super-linearly (the classic
cubic law ``P ∝ f³`` for core power, plus a static floor), so a machine
can *become more energy-efficient by slowing down* — at the cost of
deadline room.  This extension models that trade-off:

* :class:`OperatingPoint` — one (frequency-scale, power-scale) state;
* :func:`dvfs_curve` — generate a realistic state ladder from the cubic
  law with a static-power floor;
* :class:`DVFSScheduler` — pick one operating point per machine (grid
  enumeration over per-machine ladders for small m, greedy coordinate
  descent otherwise), then schedule with the inner method on the scaled
  cluster.

Under tight energy budgets the scheduler down-clocks machines to stretch
the budget; with loose budgets it runs at full speed for deadline room —
exactly the behaviour the tests pin down.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..algorithms.approx import ApproxScheduler
from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..core.instance import ProblemInstance
from ..core.machine import Cluster, Machine
from ..core.schedule import Schedule
from ..utils.errors import ValidationError
from ..utils.validation import require

__all__ = ["OperatingPoint", "dvfs_curve", "DVFSScheduler"]


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS state: scales applied to a machine's speed and power."""

    speed_scale: float
    power_scale: float

    def __post_init__(self) -> None:
        require(0.0 < self.speed_scale <= 1.0, f"speed_scale must lie in (0, 1], got {self.speed_scale}")
        require(0.0 < self.power_scale <= 1.0, f"power_scale must lie in (0, 1], got {self.power_scale}")

    @property
    def efficiency_scale(self) -> float:
        """Factor applied to E_r = s_r/P_r (>1 when down-clocking pays)."""
        return self.speed_scale / self.power_scale

    def apply(self, machine: Machine) -> Machine:
        """The machine as seen at this operating point."""
        return Machine(
            speed=machine.speed * self.speed_scale,
            efficiency=machine.efficiency * self.efficiency_scale,
            name=machine.name,
            idle_power=machine.idle_power,
        )


def dvfs_curve(
    levels: int = 4,
    *,
    min_speed: float = 0.4,
    static_fraction: float = 0.3,
    exponent: float = 3.0,
) -> tuple[OperatingPoint, ...]:
    """A ladder of operating points from the cubic-power law.

    At frequency scale ``f``: ``P(f) = static + (1 − static)·f^exponent``
    (normalised to 1 at full speed).  With a static floor, efficiency
    peaks at an interior frequency — the realistic shape.
    """
    require(levels >= 1, "levels must be >= 1")
    require(0.0 < min_speed <= 1.0, "min_speed must lie in (0, 1]")
    require(0.0 <= static_fraction < 1.0, "static_fraction must lie in [0, 1)")
    require(exponent >= 1.0, "exponent must be >= 1")
    speeds = np.linspace(min_speed, 1.0, levels)
    points = []
    for f in speeds:
        p = static_fraction + (1.0 - static_fraction) * f**exponent
        points.append(OperatingPoint(speed_scale=float(f), power_scale=float(p)))
    return tuple(points)


class DVFSScheduler(Scheduler):
    """Choose a DVFS state per machine, then schedule on the scaled cluster.

    ``max_enumeration`` bounds the grid search (``levels^m`` combos);
    beyond it, a greedy coordinate descent from full speed is used.
    """

    name = "DSCT-EA-APPROX-DVFS"

    def __init__(
        self,
        points: Sequence[OperatingPoint] = dvfs_curve(),
        *,
        inner: Optional[Scheduler] = None,
        max_enumeration: int = 4096,
    ):
        if not points:
            raise ValidationError("need at least one operating point")
        self.points = tuple(points)
        self.inner = inner or ApproxScheduler()
        self.max_enumeration = int(max_enumeration)

    def _scaled_instance(self, instance: ProblemInstance, choice: Sequence[int]) -> ProblemInstance:
        machines = [self.points[c].apply(m) for c, m in zip(choice, instance.cluster)]
        return ProblemInstance(instance.tasks, Cluster(machines), instance.budget)

    def _score(self, instance: ProblemInstance, choice: Sequence[int]) -> tuple[float, Schedule]:
        scaled = self._scaled_instance(instance, choice)
        schedule = self.inner.solve(scaled)
        return schedule.total_accuracy, schedule

    def solve(self, instance: ProblemInstance) -> Schedule:
        return self.solve_with_info(instance).schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        m = instance.n_machines
        L = len(self.points)
        full_speed = L - 1  # points are generated slow → fast

        if L**m <= self.max_enumeration:
            best_choice, best_acc, best_sched = None, -math.inf, None
            # Iterate fastest-first so accuracy ties resolve to higher
            # clocks (more deadline headroom for the same objective).
            for choice in itertools.product(range(L - 1, -1, -1), repeat=m):
                acc, sched = self._score(instance, choice)
                if acc > best_acc + 1e-12:
                    best_choice, best_acc, best_sched = choice, acc, sched
            method = "enumeration"
        else:
            # Greedy coordinate descent from full speed.
            choice = [full_speed] * m
            best_acc, best_sched = self._score(instance, choice)
            improved = True
            while improved:
                improved = False
                for r in range(m):
                    for c in range(L):
                        if c == choice[r]:
                            continue
                        candidate = list(choice)
                        candidate[r] = c
                        acc, sched = self._score(instance, candidate)
                        if acc > best_acc + 1e-12:
                            choice, best_acc, best_sched = candidate, acc, sched
                            improved = True
            best_choice = tuple(choice)
            method = "coordinate_descent"

        assert best_sched is not None and best_choice is not None
        # Express times against the ORIGINAL cluster: the scaled machine
        # did the same work in the same wall time (speed differs), so the
        # schedule's times are reinterpreted — rebuild work-equivalent
        # times on original speeds would change durations; instead report
        # the scaled-cluster schedule and the chosen states.
        info = SolveInfo(
            self.name,
            status="ok",
            extra={
                "operating_points": [
                    {
                        "machine": r,
                        "speed_scale": self.points[c].speed_scale,
                        "power_scale": self.points[c].power_scale,
                    }
                    for r, c in enumerate(best_choice)
                ],
                "search": method,
            },
        )
        return SolveResult(best_sched, info)
