"""Renewable-powered scheduling — the paper's first future-work item (§7).

A planning day is split into epochs; each epoch harvests an energy budget
from a (solar-like) production curve and receives a batch of inference
tasks.  :class:`RenewablePlanner` schedules every epoch with any DSCT-EA
scheduler under the harvested budget, optionally banking unspent energy
in a battery (with round-trip efficiency and capacity limits) for later
epochs — the policy comparison behind ``examples/renewable_budget.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..algorithms.base import Scheduler
from ..core.instance import ProblemInstance
from ..core.machine import Cluster
from ..core.schedule import Schedule
from ..core.task import TaskSet
from ..utils.errors import ValidationError
from ..utils.validation import check_positive, require

__all__ = ["solar_curve", "EpochOutcome", "RenewableReport", "RenewablePlanner"]


def solar_curve(
    epochs: int,
    peak_beta: float,
    *,
    sunrise_hour: float = 6.0,
    sunset_hour: float = 18.0,
) -> np.ndarray:
    """Half-sine daytime harvest over a 24 h day, as budget ratios β_e.

    Zero outside [sunrise, sunset]; peaks at ``peak_beta`` at solar noon.
    """
    require(epochs >= 1, "epochs must be >= 1")
    check_positive(peak_beta, "peak_beta")
    require(0 <= sunrise_hour < sunset_hour <= 24, "need 0 <= sunrise < sunset <= 24")
    hours = np.linspace(0.0, 24.0, epochs, endpoint=False) + 12.0 / epochs
    span = sunset_hour - sunrise_hour
    phase = (hours - sunrise_hour) / span * math.pi
    lit = np.where((hours >= sunrise_hour) & (hours <= sunset_hour), np.sin(phase), 0.0)
    return peak_beta * np.clip(lit, 0.0, None)


@dataclass(frozen=True)
class EpochOutcome:
    """One epoch: harvest in, schedule out, battery after."""

    epoch: int
    harvest: float
    granted_budget: float
    schedule: Schedule
    battery_after: float

    @property
    def mean_accuracy(self) -> float:
        return self.schedule.mean_accuracy

    @property
    def energy_used(self) -> float:
        return self.schedule.total_energy


@dataclass(frozen=True)
class RenewableReport:
    """All epochs of one planning day."""

    epochs: tuple[EpochOutcome, ...]

    @property
    def day_mean_accuracy(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.mean_accuracy for e in self.epochs]))

    @property
    def total_energy(self) -> float:
        return sum(e.energy_used for e in self.epochs)

    @property
    def total_harvest(self) -> float:
        return sum(e.harvest for e in self.epochs)


class RenewablePlanner:
    """Schedule epoch batches under harvested energy, optionally banked.

    Parameters
    ----------
    cluster, scheduler:
        The machines and the per-epoch scheduling method.
    battery_capacity:
        Max energy (J) the battery can hold; 0 disables banking,
        ``math.inf`` is a lossless unbounded battery.
    battery_efficiency:
        Round-trip efficiency in (0, 1]: banking E Joules makes
        ``battery_efficiency · E`` available later.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        *,
        battery_capacity: float = 0.0,
        battery_efficiency: float = 1.0,
    ):
        if battery_capacity < 0:
            raise ValidationError(f"battery_capacity must be >= 0, got {battery_capacity}")
        require(0.0 < battery_efficiency <= 1.0, "battery_efficiency must lie in (0, 1]")
        self.cluster = cluster
        self.scheduler = scheduler
        self.battery_capacity = float(battery_capacity)
        self.battery_efficiency = float(battery_efficiency)

    def run(self, epoch_tasks: Sequence[TaskSet], harvests: Sequence[float]) -> RenewableReport:
        """Plan each epoch in order; harvests are absolute energies (J)."""
        if len(epoch_tasks) != len(harvests):
            raise ValidationError("epoch_tasks and harvests must have equal length")
        battery = 0.0
        outcomes: List[EpochOutcome] = []
        for e, (tasks, harvest) in enumerate(zip(epoch_tasks, harvests)):
            if harvest < 0:
                raise ValidationError(f"harvest must be >= 0, got {harvest} (epoch {e})")
            granted = harvest + battery
            instance = ProblemInstance(tasks, self.cluster, granted)
            schedule = self.scheduler.solve(instance)
            surplus = max(granted - schedule.total_energy, 0.0)
            battery = min(surplus * self.battery_efficiency, self.battery_capacity)
            outcomes.append(
                EpochOutcome(
                    epoch=e,
                    harvest=float(harvest),
                    granted_budget=granted,
                    schedule=schedule,
                    battery_after=battery,
                )
            )
        return RenewableReport(tuple(outcomes))

    def harvests_from_betas(self, betas: Sequence[float], epoch_tasks: Sequence[TaskSet]) -> List[float]:
        """Convert per-epoch β ratios into absolute harvests (J)."""
        if len(betas) != len(epoch_tasks):
            raise ValidationError("betas and epoch_tasks must have equal length")
        return [
            float(beta) * tasks.d_max * self.cluster.total_power
            for beta, tasks in zip(betas, epoch_tasks)
        ]
