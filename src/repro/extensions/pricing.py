"""Inverse problems: the cheapest budget for a target accuracy.

The paper fixes the budget and maximises accuracy; operators often face
the dual question — *what is the least energy (or money) that buys a
target accuracy?*  Because the optimal accuracy Φ(B) is concave and
non-decreasing in the budget, bisection answers it exactly.

:func:`cheapest_budget_for_accuracy` returns the minimal budget, and
:func:`cheapest_cost_for_accuracy` prices it under a tariff (currency
per kWh), the pattern behind time-of-use electricity contracts.
"""

from __future__ import annotations

from typing import Optional

from ..algorithms.base import Scheduler
from ..algorithms.fractional import FractionalScheduler
from ..core.instance import ProblemInstance
from ..utils.errors import InfeasibleError
from ..utils.validation import check_nonnegative, check_positive, require

__all__ = ["cheapest_budget_for_accuracy", "cheapest_cost_for_accuracy", "JOULES_PER_KWH"]

JOULES_PER_KWH = 3.6e6


def _with_budget(instance: ProblemInstance, budget: float) -> ProblemInstance:
    return ProblemInstance(instance.tasks, instance.cluster, budget)


def cheapest_budget_for_accuracy(
    instance: ProblemInstance,
    target_mean_accuracy: float,
    *,
    scheduler: Optional[Scheduler] = None,
    rel_tol: float = 1e-4,
    max_iterations: int = 60,
) -> float:
    """Minimal energy budget (J) whose schedule reaches the target.

    Bisects on the budget; the instance's own budget is ignored (the
    search range is ``[0, d_max · ΣP]``, the β = 1 budget, which allows
    full processing).  Raises :class:`InfeasibleError` if even β = 1
    cannot reach the target (deadlines bind, or the target exceeds what
    the accuracy functions allow).
    """
    require(0.0 <= target_mean_accuracy <= 1.0, "target accuracy must lie in [0, 1]")
    check_positive(rel_tol, "rel_tol")
    scheduler = scheduler or FractionalScheduler()

    hi = instance.tasks.d_max * instance.cluster.total_power  # β = 1
    top = scheduler.solve(_with_budget(instance, hi)).mean_accuracy
    if top < target_mean_accuracy - 1e-12:
        raise InfeasibleError(
            f"target accuracy {target_mean_accuracy:.4f} unreachable: "
            f"even the full budget achieves only {top:.4f}"
        )
    floor = scheduler.solve(_with_budget(instance, 0.0)).mean_accuracy
    if floor >= target_mean_accuracy:
        return 0.0

    lo = 0.0
    for _ in range(max_iterations):
        if hi - lo <= rel_tol * max(hi, 1.0):
            break
        mid = 0.5 * (lo + hi)
        acc = scheduler.solve(_with_budget(instance, mid)).mean_accuracy
        if acc >= target_mean_accuracy:
            hi = mid
        else:
            lo = mid
    return hi


def cheapest_cost_for_accuracy(
    instance: ProblemInstance,
    target_mean_accuracy: float,
    price_per_kwh: float,
    *,
    scheduler: Optional[Scheduler] = None,
    rel_tol: float = 1e-4,
) -> tuple[float, float]:
    """(cost, budget_joules) to reach the target under a flat tariff."""
    check_nonnegative(price_per_kwh, "price_per_kwh")
    budget = cheapest_budget_for_accuracy(
        instance, target_mean_accuracy, scheduler=scheduler, rel_tol=rel_tol
    )
    return budget / JOULES_PER_KWH * price_per_kwh, budget
