"""Idle-power-aware consolidation — scheduling when machines idle-burn.

The paper's energy model (Eq. 1f) charges busy time only, so spreading
work across all machines is free.  Real servers draw idle power, and
then *which machines to power on at all* becomes part of the problem.
:class:`ConsolidatingScheduler` makes that decision by enumeration:

for every prefix of the efficiency-ordered machine list, solve the
instance restricted to those machines with the budget reduced by their
idle draw over the horizon, and keep the powered-on set with the best
accuracy.  With zero idle power it degenerates to the inner scheduler
on the full cluster; with heavy idle power it powers machines down —
the behaviour the ablation bench quantifies.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..algorithms.approx import ApproxScheduler
from ..algorithms.base import Scheduler, SolveInfo, SolveResult
from ..core.instance import ProblemInstance
from ..core.machine import Cluster
from ..core.schedule import Schedule
from ..utils.validation import require

__all__ = ["ConsolidatingScheduler"]


class ConsolidatingScheduler(Scheduler):
    """Chooses how many machines to power on under idle draw.

    Parameters
    ----------
    idle_fraction:
        Idle power of each powered-on machine as a fraction of its busy
        power, charged for the full horizon ``d_max`` (a machine that is
        on is on for the whole batch).
    inner:
        Scheduler used on each candidate subset (default APPROX).
    """

    name = "DSCT-EA-APPROX-CONSOLIDATED"

    def __init__(self, *, idle_fraction: float = 0.3, inner: Optional[Scheduler] = None):
        require(0.0 <= idle_fraction <= 1.0, "idle_fraction must lie in [0, 1]")
        self.idle_fraction = float(idle_fraction)
        self.inner = inner or ApproxScheduler()

    def solve(self, instance: ProblemInstance) -> Schedule:
        return self.solve_with_info(instance).schedule

    def solve_with_info(self, instance: ProblemInstance) -> SolveResult:
        cluster = instance.cluster
        order = [int(r) for r in cluster.efficiency_order(descending=True)]
        d_max = instance.tasks.d_max
        budget = instance.budget

        best_schedule: Optional[Schedule] = None
        best_acc = -math.inf
        best_subset: list[int] = []
        best_overhead = 0.0

        for k in range(1, len(cluster) + 1):
            # Keep original index order within the subset so the k = m
            # candidate is exactly the original cluster (APPROX's rounding
            # is order-sensitive; reordering would perturb the baseline).
            subset = sorted(order[:k])
            sub_cluster = Cluster([cluster[r] for r in subset])
            idle_overhead = self.idle_fraction * d_max * sub_cluster.total_power
            if math.isfinite(budget):
                effective = budget - idle_overhead
                if effective <= 0:
                    continue  # powering on this many machines eats the budget
            else:
                effective = math.inf
            sub_instance = ProblemInstance(instance.tasks, sub_cluster, effective)
            sub_schedule = self.inner.solve(sub_instance)
            acc = sub_schedule.total_accuracy
            if acc > best_acc:
                best_acc = acc
                best_subset = subset
                best_overhead = idle_overhead
                best_schedule = sub_schedule

        if best_schedule is None:
            # Even one machine's idle draw exceeds the budget: power nothing.
            return SolveResult(
                Schedule.empty(instance),
                SolveInfo(self.name, status="all_machines_off", extra={"powered_on": []}),
            )

        # Lift the subset schedule back to full-cluster indexing.
        times = np.zeros((instance.n_tasks, instance.n_machines))
        for sub_idx, r in enumerate(best_subset):
            times[:, r] = best_schedule.times[:, sub_idx]
        schedule = Schedule(instance, times)
        info = SolveInfo(
            self.name,
            status="ok",
            extra={
                "powered_on": sorted(best_subset),
                "idle_overhead_joules": best_overhead,
                "idle_fraction": self.idle_fraction,
            },
        )
        return SolveResult(schedule, info)
