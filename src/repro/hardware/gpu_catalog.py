"""NVIDIA server-GPU catalog — the substrate behind the paper's Fig. 1.

The paper motivates machine heterogeneity with Desislavov et al. [7],
"Trends in AI inference energy consumption", which plots energy
efficiency against speed for NVIDIA server GPUs and observes a roughly
linear improvement of efficiency with hardware speed.  We embed a
representative catalog (dense FP32 throughput and TDP from public data
sheets — the same sources [7] aggregates) and the regression utilities
that reproduce the figure's trend line.

The catalog is a *substitute* for the paper's exact dataset (not
published); what matters downstream is the (speed, efficiency) envelope
it spans — 1–67 TFLOPS and ~15–100 GFLOPS/W — which brackets the
U(1, 20) TFLOPS × U(5, 60) GFLOPS/W sampling the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.machine import Cluster, Machine
from ..utils.errors import ValidationError
from ..utils.rng import SeedLike, ensure_rng

__all__ = ["GpuSpec", "GPU_CATALOG", "gpu_by_name", "catalog_cluster", "efficiency_speed_series", "fit_efficiency_trend", "sample_catalog_cluster"]


@dataclass(frozen=True)
class GpuSpec:
    """One GPU model: dense FP32 throughput and board power."""

    name: str
    year: int
    tflops_fp32: float
    tdp_watts: float

    @property
    def efficiency_gflops_per_watt(self) -> float:
        """GFLOPS/W — the paper's Fig. 1 y-axis."""
        return self.tflops_fp32 * 1000.0 / self.tdp_watts

    def to_machine(self) -> Machine:
        return Machine.from_tflops(self.tflops_fp32, self.efficiency_gflops_per_watt, name=self.name)


#: Representative NVIDIA server/inference GPUs (dense FP32, board TDP).
GPU_CATALOG: tuple[GpuSpec, ...] = (
    GpuSpec("Tesla K80", 2014, 8.7, 300.0),
    GpuSpec("Tesla M40", 2015, 6.8, 250.0),
    GpuSpec("Tesla M4", 2015, 2.2, 50.0),
    GpuSpec("Tesla P100", 2016, 10.6, 300.0),
    GpuSpec("Tesla P40", 2016, 12.0, 250.0),
    GpuSpec("Tesla P4", 2016, 5.5, 75.0),
    GpuSpec("Tesla V100", 2017, 15.7, 300.0),
    GpuSpec("Tesla T4", 2018, 8.1, 70.0),
    GpuSpec("Quadro RTX 8000", 2018, 16.3, 260.0),
    GpuSpec("A100 SXM", 2020, 19.5, 400.0),
    GpuSpec("A40", 2020, 37.4, 300.0),
    GpuSpec("A30", 2021, 10.3, 165.0),
    GpuSpec("A2", 2021, 4.5, 60.0),
    GpuSpec("A16", 2021, 4.5, 62.5),
    GpuSpec("RTX A2000", 2021, 8.0, 70.0),
    GpuSpec("L4", 2023, 30.3, 72.0),
    GpuSpec("L40", 2022, 90.5, 300.0),
    GpuSpec("H100 SXM", 2022, 66.9, 700.0),
)


def gpu_by_name(name: str) -> GpuSpec:
    """Look up a catalog entry by exact name."""
    for spec in GPU_CATALOG:
        if spec.name == name:
            return spec
    raise ValidationError(f"unknown GPU {name!r}; known: {[s.name for s in GPU_CATALOG]}")


def catalog_cluster(names: Sequence[str]) -> Cluster:
    """Build a :class:`Cluster` from catalog GPU names."""
    return Cluster([gpu_by_name(n).to_machine() for n in names])


def efficiency_speed_series(
    catalog: Sequence[GpuSpec] = GPU_CATALOG,
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """(speeds TFLOPS, efficiencies GFLOPS/W, names) — Fig. 1's scatter."""
    speeds = np.array([s.tflops_fp32 for s in catalog])
    effs = np.array([s.efficiency_gflops_per_watt for s in catalog])
    return speeds, effs, [s.name for s in catalog]


def fit_efficiency_trend(catalog: Sequence[GpuSpec] = GPU_CATALOG) -> tuple[float, float]:
    """Least-squares line ``efficiency ≈ a·speed + b`` (Fig. 1's trend).

    Returns ``(slope a in GFLOPS/W per TFLOPS, intercept b in GFLOPS/W)``;
    the paper's observation is that ``a > 0`` (efficiency improves
    linearly with device speed).
    """
    speeds, effs, _ = efficiency_speed_series(catalog)
    a, b = np.polyfit(speeds, effs, 1)
    return float(a), float(b)


def sample_catalog_cluster(m: int, seed: SeedLike = None) -> Cluster:
    """Random cluster of ``m`` catalog GPUs (with replacement)."""
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    rng = ensure_rng(seed)
    picks = rng.integers(0, len(GPU_CATALOG), size=m)
    return Cluster([GPU_CATALOG[int(i)].to_machine() for i in picks])
