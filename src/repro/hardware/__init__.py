"""Hardware substrate: GPU catalog (paper Fig. 1) and machine samplers."""

from .gpu_catalog import (
    GPU_CATALOG,
    GpuSpec,
    catalog_cluster,
    efficiency_speed_series,
    fit_efficiency_trend,
    gpu_by_name,
    sample_catalog_cluster,
)
from .sampling import (
    PAPER_EFFICIENCY_RANGE_GFLOPSW,
    PAPER_SPEED_RANGE_TFLOPS,
    sample_uniform_cluster,
)

__all__ = [
    "GpuSpec",
    "GPU_CATALOG",
    "gpu_by_name",
    "catalog_cluster",
    "efficiency_speed_series",
    "fit_efficiency_trend",
    "sample_catalog_cluster",
    "sample_uniform_cluster",
    "PAPER_SPEED_RANGE_TFLOPS",
    "PAPER_EFFICIENCY_RANGE_GFLOPSW",
]
