"""Random machine generation matching the paper's experimental setup.

Sec. 6: "We considered machine speeds that are uniformly distributed
between 1 TFLOPS and 20 TFLOPS, and energy efficiencies uniformly
distributed between 5 GFLOPS/W and 60 GFLOPS/W.  These values were
selected based on research findings presented in [7]."
"""

from __future__ import annotations

from typing import Tuple

from ..core.machine import Cluster, Machine
from ..utils.errors import ValidationError
from ..utils.rng import SeedLike, ensure_rng

__all__ = ["sample_uniform_cluster", "PAPER_SPEED_RANGE_TFLOPS", "PAPER_EFFICIENCY_RANGE_GFLOPSW"]

#: The paper's machine speed range (TFLOPS).
PAPER_SPEED_RANGE_TFLOPS: Tuple[float, float] = (1.0, 20.0)
#: The paper's energy-efficiency range (GFLOPS/W).
PAPER_EFFICIENCY_RANGE_GFLOPSW: Tuple[float, float] = (5.0, 60.0)


def sample_uniform_cluster(
    m: int,
    seed: SeedLike = None,
    *,
    speed_range_tflops: Tuple[float, float] = PAPER_SPEED_RANGE_TFLOPS,
    efficiency_range_gflopsw: Tuple[float, float] = PAPER_EFFICIENCY_RANGE_GFLOPSW,
) -> Cluster:
    """Sample ``m`` machines with the paper's uniform distributions."""
    if m < 1:
        raise ValidationError(f"m must be >= 1, got {m}")
    lo_s, hi_s = speed_range_tflops
    lo_e, hi_e = efficiency_range_gflopsw
    if not (0 < lo_s <= hi_s and 0 < lo_e <= hi_e):
        raise ValidationError("ranges must be positive and ordered (lo <= hi)")
    rng = ensure_rng(seed)
    machines = [
        Machine.from_tflops(float(rng.uniform(lo_s, hi_s)), float(rng.uniform(lo_e, hi_e)))
        for _ in range(m)
    ]
    return Cluster(machines)
