"""The unit of lint output: one :class:`Finding` per rule violation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is; drives exit codes and report ordering."""

    ERROR = "error"  #: almost certainly a bug (unit mismatch, lock leak)
    WARNING = "warning"  #: risky pattern worth a look (float ==, raw scale)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by ``(path, line, col, code)`` so reports are stable across
    runs and dict/set iteration orders.
    """

    path: str
    line: int  #: 1-based, like every compiler since cc
    col: int  #: 0-based, matching :mod:`ast` offsets
    code: str  #: rule id, e.g. ``"RL003"``
    message: str = field(compare=False)
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def format(self) -> str:
        """The canonical single-line rendering (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the ``--format json`` reporter's row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "code": self.code,
            "message": self.message,
            "severity": str(self.severity),
        }
