"""``python -m repro.lint`` — the standalone analyzer entry point."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
