"""The project call graph: call records resolved against the symbol table.

Resolution is deliberately conservative — an edge exists only when the
callee is *known*:

* ``self.m(...)`` → the enclosing class's method (base classes walked);
* ``self.attr.m(...)`` → the method of the class ``self.attr`` was
  constructed as (``self.attr = ClassName(...)`` in the class body);
* ``f(...)`` / ``mod.f(...)`` → through the module's imports;
* ``obj.m(...)`` on an untyped receiver → only when exactly **one**
  class in the whole program defines a method ``m`` (unique-method
  fallback) — ambiguity yields no edge rather than a wrong one.

Unresolved calls simply contribute nothing; the interprocedural rules
built on top (RL016/RL018/RL019) under-approximate instead of guessing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .summaries import CallRecord, FunctionSummary, ModuleSummary
from .symbols import SymbolTable

__all__ = ["CallGraph"]

#: Method names too generic for the unique-method fallback: one class
#: defining ``append`` must not capture every ``list.append`` call.
_GENERIC_METHODS = {
    "append", "add", "get", "put", "pop", "items", "values", "keys",
    "close", "join", "start", "run", "update", "copy", "clear", "extend",
    "remove", "discard", "sort", "index", "count", "write", "read",
    "flush", "release", "acquire", "set", "inc", "dec", "observe",
    "info", "debug", "warning", "error", "send", "recv", "wait", "notify",
}


class CallGraph:
    """caller qualname → resolved (callee qualname, call record) pairs."""

    def __init__(self, symtab: SymbolTable) -> None:
        self.symtab = symtab
        self.edges: Dict[str, List[Tuple[str, CallRecord]]] = {}

    @classmethod
    def build(cls, symtab: SymbolTable, summaries: Iterable[ModuleSummary]) -> "CallGraph":
        graph = cls(symtab)
        for module_summary in summaries:
            for func in module_summary.functions.values():
                for record in func.calls:
                    callee = graph.resolve_call(func, record)
                    if callee is not None:
                        graph.edges.setdefault(func.qualname, []).append((callee, record))
        return graph

    def callees(self, qualname: str) -> List[Tuple[str, CallRecord]]:
        return list(self.edges.get(qualname, ()))

    def reachable(self, qualname: str, *, max_depth: int = 6) -> Set[str]:
        """Functions transitively callable from ``qualname`` (bounded BFS)."""
        seen: Set[str] = set()
        frontier = [qualname]
        for _ in range(max_depth):
            nxt: List[str] = []
            for current in frontier:
                for callee, _record in self.edges.get(current, ()):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.append(callee)
            if not nxt:
                break
            frontier = nxt
        seen.discard(qualname)
        return seen

    # -- resolution ----------------------------------------------------------

    def resolve_call(self, caller: FunctionSummary, record: CallRecord) -> Optional[str]:
        """The callee qualname of one call site, or ``None`` if unknown."""
        parts = record.parts
        symtab = self.symtab
        own_class = self._class_of(caller)
        if parts[0] == "self" and own_class is not None:
            if len(parts) == 2:
                return symtab.class_method(own_class, parts[1])
            if len(parts) == 3:
                # self.attr.m(): type the attribute through the class body.
                cls = symtab.classes.get(own_class)
                attr_ref = cls.attr_types.get(parts[1]) if cls is not None else None
                if attr_ref is not None:
                    attr_class = symtab.resolve_class(caller.module, attr_ref)
                    if attr_class is not None:
                        return symtab.class_method(attr_class, parts[2])
                return self._unique_method(parts[2])
            return None
        if len(parts) == 1:
            return symtab.resolve_function(caller.module, parts[0])
        resolved = symtab.resolve_function(caller.module, ".".join(parts))
        if resolved is not None:
            return resolved
        # ``alias.m()`` where the alias names a class (from m import C; C.make()).
        if len(parts) == 2:
            klass = symtab.resolve_class(caller.module, parts[0])
            if klass is not None:
                return symtab.class_method(klass, parts[1])
            return self._unique_method(parts[1])
        return None

    def _class_of(self, func: FunctionSummary) -> Optional[str]:
        qual = func.qualname
        prefix, _, _name = qual.rpartition(".")
        if prefix == func.module:
            return None  # module-level function
        return prefix

    def _unique_method(self, name: str) -> Optional[str]:
        if name in _GENERIC_METHODS:
            return None
        candidates = self.symtab.method_candidates(name)
        return candidates[0] if len(candidates) == 1 else None
