"""Per-function dataflow summaries — the unit the whole-program rules consume.

Everything expensive happens here, once per file: CFG construction, the
energy-grant leak proof (RL017's engine), lock-region tracking, call
records with inferred argument dimensions, and direct-blocking
classification.  A :class:`FunctionSummary` is a plain serialisable
record — ``to_dict``/``from_dict`` round-trip through JSON — so the
incremental lint cache can keep summaries across runs and the
program-level joins (:mod:`.program`) stay cheap.

Lock identifiers are canonicalised *file-locally*: ``self._lock`` inside
``class EnergyLeaseLedger`` of ``repro.cluster.ledger`` becomes
``repro.cluster.ledger.EnergyLeaseLedger._lock``.  Cross-module lock
identity then needs no global type inference — a callee's locks are
canonicalised in the callee's own summary, and the caller reaches them
through the call graph.

The grant-leak analysis proves, per reservation site, that the grant
variable reaches a ``commit()``/``release()`` on **every** CFG path —
normal and exceptional.  States per path: *pending* (reserved, not yet
settled), *settled* (a commit/release call mentions the grant — also
accepted at an ``if`` that guards a settle with the grant in its test,
the ``if grant is not None: release(grant)`` idiom), *escaped* (the
grant is returned, stored into a container/attribute, or passed to a
non-settling call — responsibility moves elsewhere, but only on the
*normal* edge: if the escaping statement raises, the hand-off never
happened and the grant is still pending).  A path that reaches ``EXIT``
or ``RAISE`` while pending is a leak.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..rules.concurrency import _blocking_reason, _expr_text, _is_lock_expr
from ..rules.domain import _NAME_DIMS, POLY, Dim, build_env, infer_dim
from .cfg import CFG, build_cfg
from .symbols import ModuleDecl, build_module_decl

__all__ = [
    "CallRecord",
    "GrantLeak",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
]

#: Receivers whose ``.reserve()`` hands out an energy grant.
_LEDGER_RECEIVER = re.compile(r"ledger|lease", re.IGNORECASE)

#: Method/function names that *produce* a grant.
_RESERVE_HELPERS = {"_reserve_for"}

#: Method names that settle a grant (return it to the ledger's books).
_SETTLE_METHODS = {"commit", "release"}


def _dim_to_json(dim: Optional[object]) -> Optional[List[int]]:
    """A known :data:`Dim` as a JSON list; ``POLY``/unknown collapse to None."""
    if isinstance(dim, tuple):
        return list(dim)
    return None


def _dim_from_json(raw: Optional[Sequence[int]]) -> Optional[Dim]:
    if raw is None:
        return None
    return (int(raw[0]), int(raw[1]), int(raw[2]), int(raw[3]))


@dataclass
class CallRecord:
    """One call site, with everything the program-level rules need."""

    line: int
    col: int
    #: Dotted name parts as written (``("self", "_reserve_for")``).
    parts: Tuple[str, ...]
    #: Canonical ids of locks held when the call executes.
    under_locks: Tuple[str, ...] = ()
    #: Why the call blocks (RL011's tables), or ``None``.
    blocking: Optional[str] = None
    #: Inferred dimension per positional argument (None = unknown/poly).
    arg_dims: Tuple[Optional[Dim], ...] = ()
    #: Inferred dimension per keyword argument.
    kwarg_dims: Tuple[Tuple[str, Optional[Dim]], ...] = ()

    @property
    def text(self) -> str:
        return ".".join(self.parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "parts": list(self.parts),
            "under_locks": list(self.under_locks),
            "blocking": self.blocking,
            "arg_dims": [_dim_to_json(d) for d in self.arg_dims],
            "kwarg_dims": [[name, _dim_to_json(d)] for name, d in self.kwarg_dims],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CallRecord":
        return cls(
            line=int(raw["line"]),
            col=int(raw["col"]),
            parts=tuple(raw["parts"]),
            under_locks=tuple(raw["under_locks"]),
            blocking=raw.get("blocking"),
            arg_dims=tuple(_dim_from_json(d) for d in raw["arg_dims"]),
            kwarg_dims=tuple((str(n), _dim_from_json(d)) for n, d in raw["kwarg_dims"]),
        )


@dataclass
class GrantLeak:
    """One reservation whose grant provably misses a settle on some path."""

    line: int
    col: int
    variable: str
    reserve_text: str
    #: ``"exception"`` / ``"normal"`` / ``"discarded"``.
    path_kind: str
    #: Line of the statement whose edge left the function still pending.
    leak_line: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "variable": self.variable,
            "reserve_text": self.reserve_text,
            "path_kind": self.path_kind,
            "leak_line": self.leak_line,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "GrantLeak":
        return cls(
            line=int(raw["line"]),
            col=int(raw["col"]),
            variable=str(raw["variable"]),
            reserve_text=str(raw["reserve_text"]),
            path_kind=str(raw["path_kind"]),
            leak_line=int(raw["leak_line"]),
        )


@dataclass
class FunctionSummary:
    """Everything cross-file rules need to know about one function."""

    qualname: str
    module: str
    line: int
    calls: List[CallRecord] = field(default_factory=list)
    #: Canonical lock ids this function acquires directly (with/acquire).
    locks_acquired: Tuple[str, ...] = ()
    #: Directly nested acquisitions: (outer lock, inner lock, line).
    lock_pairs: Tuple[Tuple[str, str, int], ...] = ()
    #: Grant-leak proofs that failed (RL017 raw material).
    grant_leaks: List[GrantLeak] = field(default_factory=list)
    #: Dimensions of named parameters (from the unit-name tables).
    param_dims: Tuple[Tuple[str, Optional[Dim]], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "line": self.line,
            "calls": [c.to_dict() for c in self.calls],
            "locks_acquired": list(self.locks_acquired),
            "lock_pairs": [[a, b, line] for a, b, line in self.lock_pairs],
            "grant_leaks": [leak.to_dict() for leak in self.grant_leaks],
            "param_dims": [[name, _dim_to_json(d)] for name, d in self.param_dims],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(raw["qualname"]),
            module=str(raw["module"]),
            line=int(raw["line"]),
            calls=[CallRecord.from_dict(c) for c in raw["calls"]],
            locks_acquired=tuple(raw["locks_acquired"]),
            lock_pairs=tuple((str(a), str(b), int(line)) for a, b, line in raw["lock_pairs"]),
            grant_leaks=[GrantLeak.from_dict(leak) for leak in raw["grant_leaks"]],
            param_dims=tuple((str(n), _dim_from_json(d)) for n, d in raw["param_dims"]),
        )


@dataclass
class ModuleSummary:
    """One file's declarations plus all its function summaries."""

    decl: ModuleDecl
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "decl": self.decl.to_dict(),
            "functions": {q: s.to_dict() for q, s in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            decl=ModuleDecl.from_dict(raw["decl"]),
            functions={
                q: FunctionSummary.from_dict(s) for q, s in raw["functions"].items()
            },
        )


# -- lock canonicalisation -----------------------------------------------------


def _canonical_lock(receiver: str, module: str, class_name: Optional[str]) -> str:
    """File-local canonical id of a lock receiver expression.

    ``self.X`` binds to the enclosing class; everything else is scoped
    to the module so two files' ``handle.lock`` never merge by accident.
    """
    if receiver.startswith("self.") and class_name:
        return f"{module}.{class_name}.{receiver[5:]}"
    return f"{module}.{receiver}"


def _dotted_parts(func: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` → ``("a","b","c")``; None for computed callees."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


# -- the per-function walk -----------------------------------------------------


class _FunctionWalker(ast.NodeVisitor):
    """Collect calls / lock regions for one function body (not nested defs)."""

    def __init__(self, module: str, class_name: Optional[str], env: Dict[str, Dim]) -> None:
        self.module = module
        self.class_name = class_name
        self.env = env
        self.calls: List[CallRecord] = []
        self.locks_acquired: List[str] = []
        self.lock_pairs: List[Tuple[str, str, int]] = []
        self._held: List[str] = []

    # Nested scopes run later, elsewhere: never descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            if _is_lock_expr(expr) and not isinstance(expr, ast.Call):
                lock = _canonical_lock(_expr_text(expr), self.module, self.class_name)
                acquired.append(lock)
            self.visit(expr)
        for lock in acquired:
            for outer in self._held:
                self.lock_pairs.append((outer, lock, node.lineno))
            self.locks_acquired.append(lock)
        self._held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self._held[-len(acquired):]

    def visit_Call(self, node: ast.Call) -> None:
        parts = _dotted_parts(node.func)
        if parts is not None:
            # `.acquire()` on a lock counts as an acquisition too (RL010
            # polices the release discipline; here we only need ordering).
            if parts[-1] == "acquire" and isinstance(node.func, ast.Attribute) and _is_lock_expr(
                node.func.value
            ):
                lock = _canonical_lock(
                    _expr_text(node.func.value), self.module, self.class_name
                )
                for outer in self._held:
                    self.lock_pairs.append((outer, lock, node.lineno))
                self.locks_acquired.append(lock)
            arg_dims: List[Optional[Dim]] = []
            for arg in node.args:
                dim = infer_dim(arg, self.env)
                arg_dims.append(dim if isinstance(dim, tuple) else None)
            kwarg_dims: List[Tuple[str, Optional[Dim]]] = []
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                dim = infer_dim(kw.value, self.env)
                kwarg_dims.append((kw.arg, dim if isinstance(dim, tuple) else None))
            self.calls.append(
                CallRecord(
                    line=node.lineno,
                    col=node.col_offset,
                    parts=parts,
                    under_locks=tuple(self._held),
                    blocking=_blocking_reason(node),
                    arg_dims=tuple(arg_dims),
                    kwarg_dims=tuple(kwarg_dims),
                )
            )
        self.generic_visit(node)


# -- the grant-leak prover -----------------------------------------------------


def _reserve_call(value: ast.expr) -> Optional[str]:
    """The reserve text when ``value`` is a grant-producing call."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        if func.attr == "reserve" and _LEDGER_RECEIVER.search(_expr_text(func.value)):
            return f"{_expr_text(func.value)}.reserve()"
        if func.attr in _RESERVE_HELPERS:
            return f"{_expr_text(func.value)}.{func.attr}()"
    elif isinstance(func, ast.Name) and func.id in _RESERVE_HELPERS:
        return f"{func.id}()"
    return None


def _names_in(expr: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _is_settle_call(call: ast.Call, names: FrozenSet[str]) -> bool:
    """A ``commit``/``release`` call with the grant among its arguments."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr in _SETTLE_METHODS):
        return False
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if _names_in(arg) & names:
            return True
    return False


def _stmt_calls(stmt: ast.stmt) -> List[ast.Call]:
    """All calls textually inside ``stmt``, skipping nested scopes."""
    calls: List[ast.Call] = []
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return calls


def _settles(stmt: ast.stmt, names: FrozenSet[str]) -> bool:
    return any(_is_settle_call(call, names) for call in _stmt_calls(stmt))


def _guard_settles(stmt: ast.stmt, names: FrozenSet[str]) -> bool:
    """``if grant...: <settle(grant)>`` — settlement guarded on the grant.

    Path-insensitively accepting the guard is sound here: the test
    mentions the grant precisely because no grant exists on the other
    arm, so there is nothing left to settle there.
    """
    if not isinstance(stmt, ast.If):
        return False
    if not (_names_in(stmt.test) & names):
        return False
    return any(_settles(s, names) for s in stmt.body + stmt.orelse)


def _assigned_names(stmt: ast.stmt) -> Set[str]:
    """Plain-name targets this statement (re)binds."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) and stmt.value is not None:
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    names: Set[str] = set()
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _escapes(stmt: ast.stmt, names: FrozenSet[str]) -> bool:
    """The grant leaves this function's hands on the normal edge."""
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and bool(_names_in(stmt.value) & names)
    # Stored into an attribute or container: someone else now owns it.
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        if value is not None and _names_in(value) & names:
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True
    # Passed to a call that is not a settle (a helper that commits later).
    for call in _stmt_calls(stmt):
        if _is_settle_call(call, names):
            continue
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if _names_in(arg) & names:
                return True
    return False


def _taints(stmt: ast.stmt, names: FrozenSet[str]) -> Set[str]:
    """New aliases: plain-name targets assigned from the grant."""
    if not isinstance(stmt, ast.Assign) or not (_names_in(stmt.value) & names):
        return set()
    new: Set[str] = set()
    for target in stmt.targets:
        if isinstance(target, ast.Name):
            new.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                if isinstance(el, ast.Name):
                    new.add(el.id)
    return new


def _prove_grants(func: ast.FunctionDef | ast.AsyncFunctionDef, cfg: CFG) -> List[GrantLeak]:
    """Every reservation that can reach EXIT/RAISE without settling."""
    leaks: List[GrantLeak] = []
    for node in cfg.statement_nodes():
        stmt = node.stmt
        if isinstance(stmt, ast.Expr):
            reserve_text = _reserve_call(stmt.value)
            if reserve_text is not None:
                leaks.append(
                    GrantLeak(
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        variable="<discarded>",
                        reserve_text=reserve_text,
                        path_kind="discarded",
                        leak_line=stmt.lineno,
                    )
                )
            continue
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        reserve_text = _reserve_call(stmt.value)
        if reserve_text is None:
            continue
        leak = _walk_grant(cfg, node.index, target.id, reserve_text, stmt)
        if leak is not None:
            leaks.append(leak)
    return leaks


def _walk_grant(
    cfg: CFG,
    reserve_index: int,
    variable: str,
    reserve_text: str,
    reserve_stmt: ast.stmt,
) -> Optional[GrantLeak]:
    """BFS all paths from one reservation; first pending EXIT/RAISE wins.

    Exception paths are reported preferentially — they are the ones a
    runtime test never exercises.
    """
    start_names = frozenset({variable})
    # (node, names); the reserve's own exception edge carries no grant.
    queue: List[Tuple[int, FrozenSet[str], int]] = [
        (dst, start_names, cfg.node(reserve_index).line)
        for dst, kind in cfg.successors(reserve_index)
        if kind == "normal"
    ]
    seen: Set[Tuple[int, FrozenSet[str]]] = set()
    normal_leak: Optional[GrantLeak] = None
    while queue:
        index, names, from_line = queue.pop(0)
        if (index, names) in seen:
            continue
        seen.add((index, names))
        node = cfg.node(index)
        if index == cfg.raise_exit:
            return GrantLeak(
                line=reserve_stmt.lineno,
                col=reserve_stmt.col_offset,
                variable=variable,
                reserve_text=reserve_text,
                path_kind="exception",
                leak_line=from_line,
            )
        if index == cfg.exit:
            if normal_leak is None:
                normal_leak = GrantLeak(
                    line=reserve_stmt.lineno,
                    col=reserve_stmt.col_offset,
                    variable=variable,
                    reserve_text=reserve_text,
                    path_kind="normal",
                    leak_line=from_line,
                )
            continue
        stmt = node.stmt
        next_names = names
        escaped_here = False
        if stmt is not None and not isinstance(stmt, ast.ExceptHandler):
            if _settles(stmt, names) or _guard_settles(stmt, names):
                continue
            rebound = _assigned_names(stmt)
            if variable in rebound:
                # The grant variable is overwritten: this reservation's
                # obligation ends here (a fresh reserve starts its own walk).
                continue
            escaped_here = _escapes(stmt, names)
            tainted = _taints(stmt, names)
            if tainted:
                next_names = frozenset(names | tainted)
        line = node.line or from_line
        for dst, kind in cfg.successors(index):
            if escaped_here and kind == "normal":
                continue  # hand-off happened; the normal path is covered
            queue.append((dst, next_names if kind == "normal" else names, line))
    return normal_leak


# -- module summarisation ------------------------------------------------------


def _functions_of(tree: ast.Module) -> List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, Optional[str]]]:
    """Top-level and method definitions with their class context."""
    out: List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, Optional[str]]] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((stmt, None))
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((sub, stmt.name))
    return out


def _param_dims(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Tuple[Tuple[str, Optional[Dim]], ...]:
    names = [a.arg for a in func.args.posonlyargs + func.args.args]
    return tuple((name, _NAME_DIMS.get(name)) for name in names)


def summarize_module(tree: ast.Module, rel_path: str, display_path: str) -> ModuleSummary:
    """Parse-tree → declarations + per-function summaries for one file."""
    decl = build_module_decl(tree, rel_path, display_path)
    summary = ModuleSummary(decl=decl)
    for func, class_name in _functions_of(tree):
        qualname = (
            f"{decl.name}.{class_name}.{func.name}" if class_name else f"{decl.name}.{func.name}"
        )
        env_raw = build_env(func)
        walker = _FunctionWalker(decl.name, class_name, env_raw)
        for stmt in func.body:
            walker.visit(stmt)
        cfg = build_cfg(func)
        summary.functions[qualname] = FunctionSummary(
            qualname=qualname,
            module=decl.name,
            line=func.lineno,
            calls=walker.calls,
            locks_acquired=tuple(dict.fromkeys(walker.locks_acquired)),
            lock_pairs=tuple(walker.lock_pairs),
            grant_leaks=_prove_grants(func, cfg),
            param_dims=_param_dims(func),
        )
    return summary
