"""Whole-program dataflow for :mod:`repro.lint`.

The per-file rules (RL001–RL015) see one AST at a time; this package
gives rules the *program*: a project-wide symbol table and call graph
(:mod:`.symbols`, :mod:`.callgraph`), a per-function control-flow graph
with explicit exception edges (:mod:`.cfg`), and per-function dataflow
summaries (:mod:`.summaries`) that interprocedural rules consume.

The division of labour is deliberate:

* everything *per-file* — parsing, CFG construction, the grant-leak
  proof, lock regions, call-site dimension inference — happens once per
  file and is serialised into a :class:`~.summaries.FunctionSummary`,
  which the on-disk lint cache can keep across runs;
* everything *cross-file* — import resolution, call-graph edges,
  lock-order cycles, transitive blocking closures, argument/parameter
  dimension joins — happens in :class:`~.program.Program` from those
  summaries alone, cheaply, on every run.

That split is what makes ``repro lint --whole-program`` incremental:
touching one file re-analyses that file (and its dependency closure),
while the program-level joins are recomputed from cached summaries.
"""

from .callgraph import CallGraph
from .cfg import CFG, build_cfg
from .program import Program
from .summaries import FunctionSummary, ModuleSummary, summarize_module
from .symbols import FunctionDecl, ModuleDecl, SymbolTable, module_name_for

__all__ = [
    "CFG",
    "build_cfg",
    "CallGraph",
    "Program",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
    "FunctionDecl",
    "ModuleDecl",
    "SymbolTable",
    "module_name_for",
]
