"""The whole-program view: cached per-file summaries joined per run.

:class:`Program` owns the symbol table, the call graph, and the derived
facts the interprocedural rules consume — the cross-module lock-order
graph (RL016), transitive blocking reachability (RL019), grant-leak
collection (RL017) and argument/parameter dimension joins (RL018).
Everything here is recomputed from :class:`~.summaries.ModuleSummary`
objects on every run; it is cheap (graph walks over small summaries),
which is what lets the on-disk cache store only the per-file work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .summaries import CallRecord, FunctionSummary, ModuleSummary
from .symbols import SymbolTable

__all__ = ["Program", "LockEdge", "LockCycle", "BlockingChain", "DimMismatch"]


@dataclass(frozen=True)
class LockEdge:
    """``outer`` is held while ``inner`` is acquired, at a concrete site."""

    outer: str
    inner: str
    function: str  #: qualname of the function the acquisition happens in
    line: int
    via: Optional[str] = None  #: callee qualname when the edge crosses a call


@dataclass(frozen=True)
class LockCycle:
    """A cycle in the lock-order graph, with one witness edge per hop."""

    locks: Tuple[str, ...]
    edges: Tuple[LockEdge, ...]


@dataclass(frozen=True)
class BlockingChain:
    """A call path from a lock-held site to a blocking operation."""

    record: CallRecord  #: the call made while holding the lock
    caller: str  #: qualname holding the lock
    locks: Tuple[str, ...]
    chain: Tuple[str, ...]  #: qualnames from first callee to the blocker
    reason: str  #: the blocking operation (RL011 vocabulary)
    blocking_line: int


@dataclass(frozen=True)
class DimMismatch:
    """An argument whose dimension contradicts the parameter's name."""

    caller: str
    record: CallRecord
    callee: str
    param: str
    arg_label: str  #: ``"argument 2"`` or ``"keyword 'budget'"``
    arg_dim: Tuple[int, int, int, int]
    param_dim: Tuple[int, int, int, int]


class Program:
    """Summaries of every analysed file, joined and queryable."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        #: module name → its summary.
        self.summaries = summaries
        self.symtab = SymbolTable([s.decl for s in summaries.values()])
        self.callgraph = CallGraph.build(self.symtab, summaries.values())
        self._functions: Dict[str, FunctionSummary] = {}
        for module_summary in summaries.values():
            self._functions.update(module_summary.functions)
        self._lock_memo: Dict[str, Tuple[str, ...]] = {}
        self._blocking_memo: Dict[str, Optional[Tuple[Tuple[str, ...], str, int]]] = {}

    # -- locations -----------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        return self._functions.get(qualname)

    def functions(self) -> Iterator[FunctionSummary]:
        yield from self._functions.values()

    def location(self, qualname_or_module: str) -> Tuple[str, str]:
        """``(display_path, rel_path)`` of a function's (or module's) file."""
        module = qualname_or_module
        while module and module not in self.summaries:
            module = module.rpartition(".")[0]
        if module:
            decl = self.summaries[module].decl
            return decl.display_path, decl.rel_path
        return qualname_or_module, qualname_or_module

    # -- RL016: the lock-order graph -----------------------------------------

    def transitive_locks(self, qualname: str) -> Tuple[str, ...]:
        """Locks acquired by ``qualname`` or anything it (boundedly) calls."""
        memo = self._lock_memo.get(qualname)
        if memo is not None:
            return memo
        locks: Set[str] = set()
        func = self._functions.get(qualname)
        if func is not None:
            locks.update(func.locks_acquired)
        for callee in self.callgraph.reachable(qualname):
            callee_func = self._functions.get(callee)
            if callee_func is not None:
                locks.update(callee_func.locks_acquired)
        result = tuple(sorted(locks))
        self._lock_memo[qualname] = result
        return result

    def lock_edges(self) -> List[LockEdge]:
        """Every ordered pair: a lock acquired while another is held."""
        edges: List[LockEdge] = []
        for func in self._functions.values():
            for outer, inner, line in func.lock_pairs:
                edges.append(LockEdge(outer=outer, inner=inner, function=func.qualname, line=line))
            for callee, record in self.callgraph.callees(func.qualname):
                if not record.under_locks:
                    continue
                inner_locks = set(self.transitive_locks(callee))
                callee_func = self._functions.get(callee)
                if callee_func is not None:
                    inner_locks.update(callee_func.locks_acquired)
                for outer in record.under_locks:
                    for inner in sorted(inner_locks):
                        edges.append(
                            LockEdge(
                                outer=outer,
                                inner=inner,
                                function=func.qualname,
                                line=record.line,
                                via=callee,
                            )
                        )
        return edges

    def lock_cycles(self) -> List[LockCycle]:
        """Cycles in the lock-order graph (including reentrant self-loops)."""
        edges = self.lock_edges()
        adjacency: Dict[str, Dict[str, LockEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.outer, {}).setdefault(edge.inner, edge)
        cycles: List[LockCycle] = []
        reported: Set[Tuple[str, ...]] = set()
        for start in sorted(adjacency):
            path = self._find_cycle(adjacency, start)
            if path is None:
                continue
            canonical = self._canonical(path)
            if canonical in reported:
                continue
            reported.add(canonical)
            hops = [
                adjacency[path[i]][path[(i + 1) % len(path)]] for i in range(len(path))
            ]
            cycles.append(LockCycle(locks=tuple(path), edges=tuple(hops)))
        return cycles

    @staticmethod
    def _canonical(path: List[str]) -> Tuple[str, ...]:
        pivot = path.index(min(path))
        return tuple(path[pivot:] + path[:pivot])

    @staticmethod
    def _find_cycle(
        adjacency: Dict[str, Dict[str, LockEdge]], start: str
    ) -> Optional[List[str]]:
        """A simple cycle through ``start``, if one exists (DFS)."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen: Set[str] = set()
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adjacency.get(node, {})):
                if nxt == start:
                    return path
                if nxt in seen or nxt in path:
                    continue
                seen.add(nxt)
                stack.append((nxt, path + [nxt]))
        return None

    # -- RL019: transitive blocking ------------------------------------------

    def blocking_path(
        self, qualname: str, *, _depth: int = 0
    ) -> Optional[Tuple[Tuple[str, ...], str, int]]:
        """``(chain, reason, line)`` from ``qualname`` to a blocking call."""
        if qualname in self._blocking_memo:
            return self._blocking_memo[qualname]
        self._blocking_memo[qualname] = None  # cycle guard
        result: Optional[Tuple[Tuple[str, ...], str, int]] = None
        func = self._functions.get(qualname)
        if func is not None:
            for record in func.calls:
                if record.blocking is not None:
                    result = ((qualname,), record.blocking, record.line)
                    break
            if result is None and _depth < 4:
                for callee, _record in self.callgraph.callees(qualname):
                    sub = self.blocking_path(callee, _depth=_depth + 1)
                    if sub is not None:
                        chain, reason, line = sub
                        result = ((qualname, *chain), reason, line)
                        break
        self._blocking_memo[qualname] = result
        return result

    def blocking_under_lock(self) -> List[BlockingChain]:
        """Calls made under a lock whose *callees* block (RL011 can't see)."""
        chains: List[BlockingChain] = []
        for func in self._functions.values():
            for callee, record in self.callgraph.callees(func.qualname):
                if not record.under_locks or record.blocking is not None:
                    continue  # direct blocking under lock is RL011's finding
                sub = self.blocking_path(callee)
                if sub is None:
                    continue
                chain, reason, line = sub
                chains.append(
                    BlockingChain(
                        record=record,
                        caller=func.qualname,
                        locks=record.under_locks,
                        chain=chain,
                        reason=reason,
                        blocking_line=line,
                    )
                )
        return chains

    # -- RL018: interprocedural dimensions -----------------------------------

    def dim_mismatches(self) -> List[DimMismatch]:
        """Call arguments whose inferred dimension contradicts the callee."""
        mismatches: List[DimMismatch] = []
        for func in self._functions.values():
            for callee, record in self.callgraph.callees(func.qualname):
                callee_func = self._functions.get(callee)
                if callee_func is None:
                    continue
                params = list(callee_func.param_dims)
                if params and params[0][0] in ("self", "cls"):
                    params = params[1:]
                for index, arg_dim in enumerate(record.arg_dims):
                    if arg_dim is None or index >= len(params):
                        continue
                    pname, pdim = params[index]
                    if pdim is not None and pdim != arg_dim:
                        mismatches.append(
                            DimMismatch(
                                caller=func.qualname,
                                record=record,
                                callee=callee,
                                param=pname,
                                arg_label=f"argument {index + 1}",
                                arg_dim=arg_dim,
                                param_dim=pdim,
                            )
                        )
                declared = dict(callee_func.param_dims)
                for kw_name, kw_dim in record.kwarg_dims:
                    if kw_dim is None:
                        continue
                    pdim = declared.get(kw_name)
                    if pdim is not None and pdim != kw_dim:
                        mismatches.append(
                            DimMismatch(
                                caller=func.qualname,
                                record=record,
                                callee=callee,
                                param=kw_name,
                                arg_label=f"keyword {kw_name!r}",
                                arg_dim=kw_dim,
                                param_dim=pdim,
                            )
                        )
        return mismatches
