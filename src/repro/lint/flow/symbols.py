"""Project-wide symbols: modules, classes, functions, imports.

One :class:`ModuleDecl` per file records everything the program-level
analyses need to *name* things — the module's dotted name, its
functions and methods (with parameter lists), its classes (with base
names and the inferred types of ``self.x = ClassName(...)``
attributes), and its import aliases.  A :class:`SymbolTable` joins the
declarations of every file in the run and resolves dotted references
across them.

Everything here is plain data (``to_dict``/``from_dict`` round-trip),
because declarations ride in the on-disk lint cache: an unchanged file
contributes its symbols without being re-parsed.

Module naming is best-effort by design: inside a ``src`` tree the
dotted name is the path after the last ``src`` component (so
``src/repro/cluster/ledger.py`` → ``repro.cluster.ledger``); elsewhere
it is the longest path suffix whose components are valid identifiers.
References are then resolved by *suffix match* against the program's
modules, which makes fixture trees in temp directories resolve exactly
like installed packages.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FunctionDecl", "ClassDecl", "ModuleDecl", "SymbolTable", "module_name_for"]


def module_name_for(rel_path: str) -> str:
    """Best-effort dotted module name for a posix relative path."""
    parts = [p for p in rel_path.split("/") if p and p != "."]
    if not parts:
        return "<unknown>"
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    dirs = parts[:-1]
    if "src" in dirs:
        dirs = dirs[len(dirs) - 1 - dirs[::-1].index("src") + 1 :]
    else:
        # Longest suffix of identifier-valid components (temp dirs and
        # repo roots rarely survive this, package paths always do).
        kept: List[str] = []
        for part in reversed(dirs):
            if part.isidentifier():
                kept.append(part)
            else:
                break
        dirs = list(reversed(kept))
    if stem == "__init__":
        return ".".join(dirs) if dirs else "<init>"
    return ".".join([*dirs, stem]) if stem.isidentifier() else "<unknown>"


@dataclass
class FunctionDecl:
    """One function or method as the symbol table sees it."""

    qualname: str  #: ``module.func`` or ``module.Class.func``
    name: str
    module: str
    class_name: Optional[str]
    line: int
    params: List[str]  #: positional-or-keyword parameter names, in order
    decorators: List[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "module": self.module,
            "class_name": self.class_name,
            "line": self.line,
            "params": list(self.params),
            "decorators": list(self.decorators),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FunctionDecl":
        return cls(
            qualname=doc["qualname"],
            name=doc["name"],
            module=doc["module"],
            class_name=doc.get("class_name"),
            line=int(doc.get("line", 1)),
            params=list(doc.get("params", [])),
            decorators=list(doc.get("decorators", [])),
        )


@dataclass
class ClassDecl:
    """One class: its methods, bases, and constructor-inferred attr types."""

    name: str
    module: str
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    #: ``self.x = ClassName(...)`` assignments seen anywhere in the class
    #: body, as attribute → *unresolved* class reference (dotted text).
    attr_types: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "module": self.module,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attr_types": dict(self.attr_types),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ClassDecl":
        return cls(
            name=doc["name"],
            module=doc["module"],
            bases=list(doc.get("bases", [])),
            methods=list(doc.get("methods", [])),
            attr_types=dict(doc.get("attr_types", {})),
        )


@dataclass
class ModuleDecl:
    """Everything one file declares, as resolvable plain data."""

    name: str
    rel_path: str
    display_path: str
    imports: Dict[str, str] = field(default_factory=dict)  #: alias → dotted target
    functions: List[FunctionDecl] = field(default_factory=list)
    classes: List[ClassDecl] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rel_path": self.rel_path,
            "display_path": self.display_path,
            "imports": dict(self.imports),
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ModuleDecl":
        return cls(
            name=doc["name"],
            rel_path=doc["rel_path"],
            display_path=doc.get("display_path", doc["rel_path"]),
            imports=dict(doc.get("imports", {})),
            functions=[FunctionDecl.from_dict(f) for f in doc.get("functions", [])],
            classes=[ClassDecl.from_dict(c) for c in doc.get("classes", [])],
        )


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as text for pure Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _relative_base(module: str, level: int) -> str:
    """The package a ``from ...x import y`` resolves against."""
    parts = module.split(".")
    # level 1 = current package (drop the module component), 2 = parent...
    keep = len(parts) - level
    return ".".join(parts[:keep]) if keep > 0 else ""


def build_module_decl(tree: ast.Module, rel_path: str, display_path: str) -> ModuleDecl:
    """Extract one file's declarations (functions, classes, imports)."""
    name = module_name_for(rel_path)
    decl = ModuleDecl(name=name, rel_path=rel_path, display_path=display_path)
    for stmt in tree.body:
        _collect_imports(stmt, name, decl.imports)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decl.functions.append(_function_decl(stmt, name, None))
        elif isinstance(stmt, ast.ClassDef):
            _collect_class(stmt, name, decl)
    return decl


def _collect_imports(stmt: ast.stmt, module: str, imports: Dict[str, str]) -> None:
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            imports[bound] = target
            if alias.asname is None:
                # ``import a.b`` also makes ``a.b`` referencable as written.
                imports[alias.name] = alias.name
    elif isinstance(stmt, ast.ImportFrom):
        base = stmt.module or ""
        if stmt.level:
            prefix = _relative_base(module, stmt.level)
            base = f"{prefix}.{base}" if prefix and base else (prefix or base)
        for alias in stmt.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            imports[bound] = f"{base}.{alias.name}" if base else alias.name
    elif isinstance(stmt, (ast.If, ast.Try)):
        # ``if TYPE_CHECKING:`` blocks and guarded imports still bind names.
        for field_name in ("body", "orelse", "finalbody"):
            for child in getattr(stmt, field_name, []):
                _collect_imports(child, module, imports)
        for handler in getattr(stmt, "handlers", []):
            for child in handler.body:
                _collect_imports(child, module, imports)


def _function_decl(
    node: ast.FunctionDef | ast.AsyncFunctionDef, module: str, class_name: Optional[str]
) -> FunctionDecl:
    qual = f"{module}.{class_name}.{node.name}" if class_name else f"{module}.{node.name}"
    params = [a.arg for a in [*node.args.posonlyargs, *node.args.args]]
    decorators = [d for d in (_dotted(dec) for dec in node.decorator_list) if d is not None]
    return FunctionDecl(
        qualname=qual,
        name=node.name,
        module=module,
        class_name=class_name,
        line=node.lineno,
        params=params,
        decorators=decorators,
    )


def _collect_class(node: ast.ClassDef, module: str, decl: ModuleDecl) -> None:
    cls = ClassDecl(name=node.name, module=module)
    cls.bases = [b for b in (_dotted(base) for base in node.bases) if b is not None]
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods.append(stmt.name)
            decl.functions.append(_function_decl(stmt, module, node.name))
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Attribute)
                    and isinstance(sub.targets[0].value, ast.Name)
                    and sub.targets[0].value.id == "self"
                    and isinstance(sub.value, ast.Call)
                ):
                    ref = _dotted(sub.value.func)
                    if ref is not None:
                        cls.attr_types.setdefault(sub.targets[0].attr, ref)
    decl.classes.append(cls)


class SymbolTable:
    """Joined declarations of every module in the run, with resolution."""

    def __init__(self, modules: List[ModuleDecl]):
        self.modules: Dict[str, ModuleDecl] = {m.name: m for m in modules}
        self.functions: Dict[str, FunctionDecl] = {}
        self.classes: Dict[str, ClassDecl] = {}
        self._methods: Dict[str, List[str]] = {}
        for mod in modules:
            for func in mod.functions:
                self.functions[func.qualname] = func
                if func.class_name is not None:
                    self._methods.setdefault(func.name, []).append(func.qualname)
            for cls in mod.classes:
                self.classes[f"{mod.name}.{cls.name}"] = cls

    # -- reference resolution ----------------------------------------------------

    def resolve_module(self, ref: str) -> Optional[str]:
        """A dotted module reference → the program module it names."""
        if ref in self.modules:
            return ref
        suffix = f".{ref}"
        matches = [name for name in self.modules if name.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def resolve_class(self, module: str, ref: str) -> Optional[str]:
        """A class reference as written in ``module`` → class qualname."""
        return self._resolve_qualified(module, ref, kind="class")

    def resolve_function(self, module: str, ref: str) -> Optional[str]:
        """A function reference as written in ``module`` → function qualname."""
        return self._resolve_qualified(module, ref, kind="function")

    def _lookup(self, qualname: str, kind: str) -> Optional[str]:
        table = self.functions if kind == "function" else self.classes
        if qualname in table:
            return qualname
        suffix = f".{qualname}"
        matches = [q for q in table if q.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def _resolve_qualified(self, module: str, ref: str, *, kind: str) -> Optional[str]:
        mod = self.modules.get(module)
        parts = ref.split(".")
        head, rest = parts[0], parts[1:]
        # Module-local definition.
        if not rest:
            local = self._lookup(f"{module}.{head}", kind)
            if local is not None:
                return local
        # Through an import alias: the alias may name the target itself
        # (``from m import f``) or a module the rest indexes into.
        if mod is not None and head in mod.imports:
            target = mod.imports[head]
            full = ".".join([target, *rest]) if rest else target
            found = self._lookup(full, kind)
            if found is not None:
                return found
            target_module = self.resolve_module(target)
            if target_module is not None and rest:
                return self._lookup(".".join([target_module, *rest]), kind)
            return None
        # A dotted path through a (possibly unimported) module name.
        if rest:
            prefix_module = self.resolve_module(".".join(parts[:-1]))
            if prefix_module is not None:
                return self._lookup(f"{prefix_module}.{parts[-1]}", kind)
        return None

    def method_candidates(self, name: str) -> List[str]:
        """Every class method with this bare name, program-wide."""
        return list(self._methods.get(name, []))

    def class_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on a class, walking base classes by name."""
        seen: set[str] = set()
        queue: List[str] = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return f"{current}.{method}"
            for base in cls.bases:
                resolved = self.resolve_class(cls.module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def import_closure(self, module: str) -> Tuple[str, ...]:
        """Program modules reachable from ``module`` through imports."""
        seen: set[str] = set()
        queue: List[str] = [module]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            decl = self.modules.get(current)
            if decl is None:
                continue
            for target in decl.imports.values():
                for candidate in (target, target.rsplit(".", 1)[0] if "." in target else target):
                    resolved = self.resolve_module(candidate)
                    if resolved is not None and resolved not in seen:
                        queue.append(resolved)
        seen.discard(module)
        return tuple(sorted(seen))
