"""Per-function control-flow graphs with explicit exception edges.

The graph is statement-granular: every simple statement is a node, and
compound statements contribute a *branch* node for their test plus the
nodes of their bodies.  Three synthetic nodes frame the function:
``ENTRY``, ``EXIT`` (normal return / fall-through) and ``RAISE`` (the
exceptional exit — an exception escaping the function).

Exception edges are the point.  A statement **may raise** when it
contains a call, a ``raise``, or an ``assert`` (nested ``def``/
``lambda`` bodies are skipped — they merely get *defined* there).  Each
may-raise node gets an ``exception`` edge to its innermost handler
context: the ``except`` dispatch of an enclosing ``try``, the
exceptional copy of an enclosing ``finally``, or ``RAISE``.

``finally`` bodies are built **twice** — once on the normal
continuation and once on the exceptional one — so a grant released in
a ``finally`` proves settlement on *both* kinds of path without
merging them (a merged single copy would leak normal paths into
``RAISE`` and flood downstream analyses with false positives).

``except`` dispatch is conservative: an exception may be caught by any
handler, and unless some handler is a catch-all (``except:``,
``except Exception``, ``except BaseException``) it may also match none
and propagate outward.  A bare ``raise`` inside a handler re-raises to
the *outer* context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg"]

_CATCH_ALL_NAMES = {"Exception", "BaseException"}


@dataclass
class CFGNode:
    """One node: a statement (or branch test, or synthetic marker)."""

    index: int
    kind: str  #: ``entry`` / ``exit`` / ``raise`` / ``stmt`` / ``branch`` / ``dispatch``
    stmt: Optional[ast.stmt] = None
    line: int = 0

    def __repr__(self) -> str:
        label = type(self.stmt).__name__ if self.stmt is not None else self.kind
        return f"CFGNode({self.index}, {self.kind}, {label}@{self.line})"


@dataclass
class CFG:
    """A function's control-flow graph (see module docstring)."""

    nodes: List[CFGNode] = field(default_factory=list)
    #: edges as (source index, target index, kind) with kind ``normal``
    #: or ``exception``.
    edges: List[Tuple[int, int, str]] = field(default_factory=list)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2
    _succ: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)

    def add_node(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index=index, kind=kind, stmt=stmt, line=getattr(stmt, "lineno", 0)))
        return index

    def add_edge(self, src: int, dst: int, kind: str = "normal") -> None:
        edge = (src, dst, kind)
        if edge not in self._succ.get(src, []):
            self.edges.append(edge)
            self._succ.setdefault(src, []).append((dst, kind))

    def successors(self, index: int) -> List[Tuple[int, str]]:
        """``(target, edge_kind)`` pairs out of ``index``."""
        return list(self._succ.get(index, []))

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def statement_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether executing this statement can raise (conservatively).

    Calls, explicit raises and asserts count; expressions inside nested
    function/lambda bodies do not (they run later, elsewhere).
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            return True
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)
    return False


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: List[ast.expr] = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in names:
        name = expr.attr if isinstance(expr, ast.Attribute) else getattr(expr, "id", None)
        if name in _CATCH_ALL_NAMES:
            return True
    return False


class _Builder:
    """Recursive-descent CFG construction with continuation threading."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.add_node("entry")
        self.cfg.add_node("exit")
        self.cfg.add_node("raise")

    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        outs = self._sequence(
            func.body, [self.cfg.entry], exc=self.cfg.raise_exit, brk=None, cont=None
        )
        for out in outs:
            self.cfg.add_edge(out, self.cfg.exit)
        return self.cfg

    # Each _stmt/_sequence call receives the node indices whose *normal*
    # successor is the thing being built, and returns the indices whose
    # normal successor is whatever comes next.

    def _sequence(
        self,
        stmts: List[ast.stmt],
        preds: List[int],
        *,
        exc: int,
        brk: Optional[List[int]],
        cont: Optional[int],
    ) -> List[int]:
        current = preds
        for stmt in stmts:
            current = self._stmt(stmt, current, exc=exc, brk=brk, cont=cont)
            if not current:  # unreachable from here on (return/raise/...)
                break
        return current

    def _link(self, preds: List[int], node: int) -> None:
        for pred in preds:
            self.cfg.add_edge(pred, node)

    def _stmt(
        self,
        stmt: ast.stmt,
        preds: List[int],
        *,
        exc: int,
        brk: Optional[List[int]],
        cont: Optional[int],
    ) -> List[int]:
        if isinstance(stmt, ast.Return):
            node = self.cfg.add_node("stmt", stmt)
            self._link(preds, node)
            if _may_raise(stmt):
                self.cfg.add_edge(node, exc, "exception")
            self.cfg.add_edge(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self.cfg.add_node("stmt", stmt)
            self._link(preds, node)
            self.cfg.add_edge(node, exc, "exception")
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self.cfg.add_node("stmt", stmt)
            self._link(preds, node)
            if isinstance(stmt, ast.Break) and brk is not None:
                brk.append(node)
            elif isinstance(stmt, ast.Continue) and cont is not None:
                self.cfg.add_edge(node, cont)
            return []
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, exc=exc, brk=brk, cont=cont)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, exc=exc)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, exc=exc, brk=brk, cont=cont)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, exc=exc, brk=brk, cont=cont)
        # Simple statement (including nested def/class, which are opaque).
        node = self.cfg.add_node("stmt", stmt)
        self._link(preds, node)
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)) and _may_raise(stmt):
            self.cfg.add_edge(node, exc, "exception")
        return [node]

    def _if(
        self,
        stmt: ast.If,
        preds: List[int],
        *,
        exc: int,
        brk: Optional[List[int]],
        cont: Optional[int],
    ) -> List[int]:
        branch = self.cfg.add_node("branch", stmt)
        self._link(preds, branch)
        if _may_raise_expr(stmt.test):
            self.cfg.add_edge(branch, exc, "exception")
        outs = self._sequence(stmt.body, [branch], exc=exc, brk=brk, cont=cont)
        if stmt.orelse:
            outs += self._sequence(stmt.orelse, [branch], exc=exc, brk=brk, cont=cont)
        else:
            outs.append(branch)
        return outs

    def _loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        preds: List[int],
        *,
        exc: int,
    ) -> List[int]:
        branch = self.cfg.add_node("branch", stmt)
        self._link(preds, branch)
        test = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if _may_raise_expr(test):
            self.cfg.add_edge(branch, exc, "exception")
        breaks: List[int] = []
        outs = self._sequence(stmt.body, [branch], exc=exc, brk=breaks, cont=branch)
        for out in outs:
            self.cfg.add_edge(out, branch)
        after = self._sequence(stmt.orelse, [branch], exc=exc, brk=None, cont=None) if stmt.orelse else [branch]
        return after + breaks

    def _with(
        self,
        stmt: ast.With | ast.AsyncWith,
        preds: List[int],
        *,
        exc: int,
        brk: Optional[List[int]],
        cont: Optional[int],
    ) -> List[int]:
        enter = self.cfg.add_node("stmt", stmt)
        self._link(preds, enter)
        if any(_may_raise_expr(item.context_expr) for item in stmt.items):
            self.cfg.add_edge(enter, exc, "exception")
        return self._sequence(stmt.body, [enter], exc=exc, brk=brk, cont=cont)

    def _try(
        self,
        stmt: ast.Try,
        preds: List[int],
        *,
        exc: int,
        brk: Optional[List[int]],
        cont: Optional[int],
    ) -> List[int]:
        # Exceptional continuation seen from inside the try body: the
        # handler dispatch if there are handlers, else the exceptional
        # finally copy, else the outer context.
        fin_x_entry: Optional[int] = None
        if stmt.finalbody:
            # Exceptional copy: runs the finally body, then re-raises.
            fin_x_entry = self.cfg.add_node("dispatch", None)
            fin_x_outs = self._sequence(stmt.finalbody, [fin_x_entry], exc=exc, brk=brk, cont=cont)
            for out in fin_x_outs:
                self.cfg.add_edge(out, exc, "exception")
        after_handlers_exc = fin_x_entry if fin_x_entry is not None else exc

        inner_exc = after_handlers_exc
        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self.cfg.add_node("dispatch", None)
            inner_exc = dispatch

        body_outs = self._sequence(stmt.body, preds, exc=inner_exc, brk=brk, cont=cont)
        if stmt.orelse:
            body_outs = self._sequence(stmt.orelse, body_outs, exc=inner_exc, brk=brk, cont=cont)

        handler_outs: List[int] = []
        if dispatch is not None:
            caught_all = False
            for handler in stmt.handlers:
                entry = self.cfg.add_node("stmt", handler)  # type: ignore[arg-type]
                self.cfg.add_edge(dispatch, entry, "exception")
                handler_outs += self._sequence(
                    handler.body, [entry], exc=after_handlers_exc, brk=brk, cont=cont
                )
                caught_all = caught_all or _is_catch_all(handler)
            if not caught_all:
                self.cfg.add_edge(dispatch, after_handlers_exc, "exception")

        survivors = body_outs + handler_outs
        if stmt.finalbody:
            # Normal copy of the finally body.
            fin_n_entry = self.cfg.add_node("dispatch", None)
            self._link(survivors, fin_n_entry)
            return self._sequence(stmt.finalbody, [fin_n_entry], exc=exc, brk=brk, cont=cont)
        return survivors


def _may_raise_expr(expr: Optional[ast.expr]) -> bool:
    if expr is None:
        return False
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            return True
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Lambda):
                continue
            stack.append(child)
    return False


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The control-flow graph of one function definition."""
    return _Builder().build(func)
