"""The on-disk incremental lint cache (``.repro-lint-cache``).

One JSON document, keyed by normalised relative path.  Each entry holds
the file's content hash, the per-file findings produced last time, the
serialised :class:`~repro.lint.flow.summaries.ModuleSummary` the
whole-program rules consume, and the file's suppression map.  A file is
reused only when

* its own sha256 is unchanged, **and**
* no module in its import closure was re-analysed this run (dependency
  closure invalidation — today's summaries are file-local, but the
  closure check means a future summary that peeks at callee facts can
  never serve stale data), **and**
* the active rule set matches the one the cache was written with.

Writes go through :func:`repro.utils.atomic_write` (without the fsync
barrier — a torn cache merely costs one warm-up run, and pre-commit
latency is the whole point of this file).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Mapping, Optional

from ..utils.fileio import atomic_write
from .finding import Finding, Severity

__all__ = ["LintCache", "file_digest"]

_VERSION = 1


def file_digest(source: str) -> str:
    """Content hash used as the cache key component."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _finding_to_raw(finding: Finding) -> Dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "code": finding.code,
        "message": finding.message,
        "severity": finding.severity.value,
    }


def _finding_from_raw(raw: Mapping[str, Any]) -> Finding:
    return Finding(
        path=str(raw["path"]),
        line=int(raw["line"]),
        col=int(raw["col"]),
        code=str(raw["code"]),
        message=str(raw["message"]),
        severity=Severity(raw["severity"]),
    )


class LintCache:
    """Load/store per-file analysis results keyed by content hash."""

    def __init__(self, path: Optional[Path], ruleset: str) -> None:
        self.path = path
        self.ruleset = ruleset
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        if path is not None and path.exists():
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                doc = {}
            if doc.get("version") == _VERSION and doc.get("ruleset") == ruleset:
                entries = doc.get("entries")
                if isinstance(entries, dict):
                    self._entries = entries

    # -- lookups -------------------------------------------------------------

    def lookup(self, rel_path: str, digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry for an unchanged file, or ``None``."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("hash") != digest:
            return None
        return entry

    def findings_of(self, entry: Mapping[str, Any]) -> List[Finding]:
        return [_finding_from_raw(raw) for raw in entry.get("findings", [])]

    @staticmethod
    def suppressed_of(entry: Mapping[str, Any]) -> Dict[int, FrozenSet[str]]:
        return {
            int(line): frozenset(codes)
            for line, codes in entry.get("suppressed", {}).items()
        }

    # -- stores --------------------------------------------------------------

    def store(
        self,
        rel_path: str,
        digest: str,
        *,
        findings: List[Finding],
        summary: Optional[Dict[str, Any]],
        suppressed: Dict[int, FrozenSet[str]],
    ) -> None:
        self._entries[rel_path] = {
            "hash": digest,
            "findings": [_finding_to_raw(f) for f in findings],
            "summary": summary,
            "suppressed": {str(line): sorted(codes) for line, codes in suppressed.items()},
        }
        self._dirty = True

    def invalidate(self, rel_path: str) -> None:
        if self._entries.pop(rel_path, None) is not None:
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        doc = {"version": _VERSION, "ruleset": self.ruleset, "entries": self._entries}
        try:
            atomic_write(self.path, json.dumps(doc, sort_keys=True), fsync=False)
        except OSError:  # pragma: no cover — a read-only tree just skips caching
            pass
