"""The rule registry: id → rule instance, with select/ignore filtering.

Rules self-register at import time via :func:`register_rule` (used as a
class decorator), mirroring how ``repro.algorithms.registry`` registers
schedulers.  :func:`all_rules` lazily imports the built-in rule modules,
so ``from repro.lint.registry import all_rules`` works without touching
the package ``__init__`` first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Type, TypeVar

from ..utils.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover — avoids a registry ↔ rules import cycle
    from .rules import Rule

__all__ = ["RuleRegistry", "register_rule", "all_rules", "get_rule"]

R = TypeVar("R", bound=type)


class RuleRegistry:
    """Ordered id → :class:`Rule` mapping with selection semantics."""

    def __init__(self) -> None:
        self._rules: Dict[str, "Rule"] = {}

    def register(self, rule_cls: Type["Rule"]) -> Type["Rule"]:
        code = rule_cls.code
        if not code:
            raise ValidationError(f"rule {rule_cls.__name__} has no code")
        if code in self._rules:
            raise ValidationError(f"duplicate rule code {code!r}")
        self._rules[code] = rule_cls()
        return rule_cls

    def rules(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> List["Rule"]:
        """Registered rules, filtered like ruff's ``--select``/``--ignore``.

        ``select``/``ignore`` entries are codes or prefixes (``RL01``
        matches every concurrency rule); unknown selectors raise so a CI
        typo fails loudly instead of silently checking nothing.
        """
        chosen = list(self._rules.values())
        if select is not None:
            prefixes = self._check_selectors(select)
            chosen = [r for r in chosen if r.code.startswith(prefixes)]
        if ignore is not None:
            prefixes = self._check_selectors(ignore)
            chosen = [r for r in chosen if not r.code.startswith(prefixes)]
        return chosen

    def get(self, code: str) -> "Rule":
        try:
            return self._rules[code.upper()]
        except KeyError:
            raise ValidationError(
                f"unknown rule {code!r}; known: {', '.join(sorted(self._rules))}"
            ) from None

    def codes(self) -> List[str]:
        return sorted(self._rules)

    def _check_selectors(self, selectors: Iterable[str]) -> Tuple[str, ...]:
        prefixes = tuple(s.strip().upper() for s in selectors if s.strip())
        known = self.codes()
        for prefix in prefixes:
            if not any(code.startswith(prefix) for code in known):
                raise ValidationError(
                    f"selector {prefix!r} matches no rule; known: {', '.join(known)}"
                )
        return prefixes


#: The process-wide registry the built-in rules land in.
_REGISTRY = RuleRegistry()


def register_rule(rule_cls: R) -> R:
    """Class decorator adding ``rule_cls`` to the global registry."""
    _REGISTRY.register(rule_cls)
    return rule_cls


def _ensure_builtins() -> None:
    # Importing the package pulls in rules/__init__, whose bottom imports
    # register every built-in rule exactly once.
    from . import rules  # noqa: F401


def all_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List["Rule"]:
    """Every registered rule, optionally filtered by code prefix."""
    _ensure_builtins()
    return _REGISTRY.rules(select, ignore)


def get_rule(code: str) -> "Rule":
    """Look one rule up by code (case-insensitive)."""
    _ensure_builtins()
    return _REGISTRY.get(code)
