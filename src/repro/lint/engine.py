"""The analysis engine: one AST walk per file, rules dispatched by node type.

:class:`LintEngine` owns the rule set (already select/ignore-filtered)
and turns paths into findings.  Per file it

1. reads and parses the source (a syntax error becomes a single
   ``RL000`` finding — a file the analyzer cannot parse must fail the
   gate, not silently pass it);
2. builds a :class:`LintContext` — parent links, enclosing-function
   lookup, source segments — shared by every rule;
3. walks the tree **once**, dispatching each node to the rules
   subscribed to its type, and drops findings suppressed by a
   ``# repro: noqa[...]`` comment on the flagged line.

Findings come back sorted by location, so output is deterministic.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type, Union

from .finding import Finding, Severity
from .registry import all_rules
from .suppress import SuppressionIndex

__all__ = ["LintContext", "LintEngine", "lint_source", "lint_file", "lint_paths"]

#: Directory names never descended into when expanding path arguments.
#: ``lint_fixtures`` holds the known-bad corpus the rule tests feed
#: through :func:`lint_source` — linting it directly would fail the gate
#: by design.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist", "lint_fixtures"}


class LintContext:
    """Per-file facts shared by every rule during one walk."""

    def __init__(self, source: str, tree: ast.Module, display_path: str, rel_path: str) -> None:
        self.source = source
        self.tree = tree
        #: Path as shown in findings (as the user spelled it).
        self.display_path = display_path
        #: Normalised posix path used for rule scoping (``applies_to``).
        self.rel_path = rel_path
        #: Scratch space rules may memoise per-file work in (namespaced keys).
        self.cache: Dict[str, object] = {}
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents from the immediate one up to the module, in order."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]]:
        """The innermost function/lambda containing ``node``, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return anc
        return None

    def segment(self, node: ast.AST) -> str:
        """Exact source text of ``node`` (empty when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class LintEngine:
    """Run a (filtered) rule set over sources, files and directory trees.

    ``whole_program=True`` adds a second phase after the per-file walks:
    every parsed file contributes a dataflow summary, the summaries are
    joined into a :class:`~repro.lint.flow.program.Program`, and the
    ``whole_program`` rules (RL016–RL019) run once over the join.  With
    ``cache_path`` set, per-file work (findings *and* summaries) is
    reused across runs for files whose content hash — and whose import
    closure — is unchanged.
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        *,
        whole_program: bool = False,
        cache_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.rules = all_rules(select, ignore)
        self.whole_program = whole_program
        self.cache_path = Path(cache_path) if cache_path is not None else None
        #: ``(reused, analysed)`` file counts of the last whole-program run.
        self.last_cache_stats: Optional[tuple[int, int]] = None

    # -- single sources --------------------------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Findings for one in-memory source (the test-fixture entry point)."""
        rel = _normalise(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="RL000",
                    message=f"syntax error: {exc.msg}",
                    severity=Severity.ERROR,
                )
            ]
        ctx = LintContext(source, tree, display_path=path, rel_path=rel)
        suppressions = SuppressionIndex.from_source(source)
        active = [rule for rule in self.rules if rule.applies_to(rel)]
        if not active:
            return []
        dispatch: Dict[Type[ast.AST], List] = {}
        for rule in active:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
        return sorted(
            f for f in findings if not suppressions.is_suppressed(f.line, f.code)
        )

    def lint_file(self, path: Union[str, Path]) -> List[Finding]:
        """Findings for one file; unreadable files surface as ``RL000``."""
        display = str(path)
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Finding(
                    path=display,
                    line=1,
                    col=0,
                    code="RL000",
                    message=f"cannot read file: {exc}",
                    severity=Severity.ERROR,
                )
            ]
        return self.lint_source(source, path=display)

    # -- trees -----------------------------------------------------------------

    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> List[Finding]:
        """Findings for files and/or directory trees, sorted by location."""
        if self.whole_program:
            return self._lint_whole_program(paths)
        findings: List[Finding] = []
        for path in _expand(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings)

    # -- whole-program mode ----------------------------------------------------

    def _lint_whole_program(self, paths: Sequence[Union[str, Path]]) -> List[Finding]:
        from .cache import LintCache, file_digest
        from .flow.program import Program
        from .flow.summaries import ModuleSummary, summarize_module

        ruleset = ",".join(sorted(rule.code for rule in self.rules))
        cache = LintCache(self.cache_path, ruleset)
        findings: List[Finding] = []
        summaries: Dict[str, ModuleSummary] = {}
        suppressions: Dict[str, SuppressionIndex] = {}
        reanalysed: set = set()  # module names summarised fresh this run
        pending_hits: List[tuple] = []  # (rel, display, source, entry, summary)

        def analyse(source: str, display: str, rel: str, digest: str) -> None:
            file_findings = self.lint_source(source, path=display)
            suppression = SuppressionIndex.from_source(source)
            summary: Optional[ModuleSummary] = None
            if not any(f.code == "RL000" for f in file_findings):
                tree = ast.parse(source, filename=display)
                summary = summarize_module(tree, rel, display)
                summaries[summary.decl.name] = summary
                reanalysed.add(summary.decl.name)
                cache.store(
                    rel,
                    digest,
                    findings=file_findings,
                    summary=summary.to_dict(),
                    suppressed=suppression.suppressed_lines,
                )
            findings.extend(file_findings)
            suppressions[display] = suppression

        for path in _expand(paths):
            display = str(path)
            try:
                source = Path(path).read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                findings.append(
                    Finding(
                        path=display,
                        line=1,
                        col=0,
                        code="RL000",
                        message=f"cannot read file: {exc}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            rel = _normalise(display)
            digest = file_digest(source)
            entry = cache.lookup(rel, digest) if self.cache_path is not None else None
            if entry is not None and entry.get("summary") is not None:
                summary = ModuleSummary.from_dict(entry["summary"])
                pending_hits.append((rel, display, source, entry, summary))
            else:
                cache.misses += 1
                analyse(source, display, rel, digest)

        # Dependency-closure invalidation: a cached file whose imports
        # reach a re-analysed module is re-analysed too.
        if pending_hits:
            from .flow.symbols import SymbolTable

            decls = [s.decl for s in summaries.values()]
            decls.extend(hit[4].decl for hit in pending_hits)
            symtab = SymbolTable(decls)
            for rel, display, source, entry, summary in pending_hits:
                closure = symtab.import_closure(summary.decl.name)
                if reanalysed.intersection(closure):
                    cache.misses += 1
                    analyse(source, display, rel, file_digest(source))
                    continue
                cache.hits += 1
                summaries[summary.decl.name] = summary
                findings.extend(cache.findings_of(entry))
                suppressions[display] = SuppressionIndex(cache.suppressed_of(entry))

        program = Program(summaries)
        for rule in self.rules:
            if not rule.whole_program:
                continue
            for finding in rule.visit_program(program):
                index = suppressions.get(finding.path)
                if index is not None and index.is_suppressed(finding.line, finding.code):
                    continue
                findings.append(finding)
        cache.save()
        self.last_cache_stats = (cache.hits, cache.misses)
        return sorted(findings)


def _normalise(path: str) -> str:
    """Posix-style path with leading ``./`` noise removed, for scoping."""
    rel = Path(path).as_posix()
    while rel.startswith("./"):
        rel = rel[2:]
    return rel


def _expand(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Arguments → ordered, de-duplicated ``.py`` files."""
    seen = set()
    for path in paths:
        p = Path(path)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(
                f
                for f in p.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in f.parts)
            )
        else:
            candidates = [p]
        for f in candidates:
            if f not in seen:
                seen.add(f)
                yield f


# -- module-level conveniences (the public API most callers want) --------------


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string with the (filtered) built-in rule set."""
    return LintEngine(select, ignore).lint_source(source, path)


def lint_file(
    path: Union[str, Path],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one file with the (filtered) built-in rule set."""
    return LintEngine(select, ignore).lint_file(path)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint files/trees with the (filtered) built-in rule set."""
    return LintEngine(select, ignore).lint_paths(paths)
