"""The ``repro lint`` command (also ``python -m repro.lint``).

Usage::

    repro lint src tests                 # lint trees with every rule
    repro lint src --select RL01         # concurrency rules only
    repro lint src --ignore RL002,RL005  # drop the warnings
    repro lint src --format json         # machine-readable output
    repro lint src --whole-program       # + call-graph/CFG rules RL016-RL019
    repro lint src --whole-program --cache .repro-lint-cache   # incremental
    repro lint src --format sarif        # SARIF 2.1.0 (PR annotations)
    repro lint --list-rules              # the rule catalog, one line each

Exit codes: 0 clean, 1 findings, 2 usage/configuration error — the same
contract as ruff, so CI gates compose.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..utils.errors import ValidationError
from .engine import LintEngine
from .registry import all_rules
from .reporters import render_json, render_sarif, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``lint`` arguments on ``parser`` (shared with repro.cli)."""
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes/prefixes to run (e.g. RL001,RL01)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes/prefixes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="run the cross-file rules (RL016-RL019) over a project-wide "
        "call graph and per-function CFGs",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="whole-program mode: reuse per-file analysis from this cache "
        "file (e.g. .repro-lint-cache); unchanged files are not re-analysed",
    )
    parser.add_argument(
        "--no-statistics",
        action="store_true",
        help="text format: omit the per-rule tally",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the (filtered) rule catalog and exit",
    )


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part for part in (p.strip() for p in raw.split(",")) if part]


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the process exit code."""
    try:
        select, ignore = _split(args.select), _split(args.ignore)
        if args.list_rules:
            for rule in sorted(all_rules(select, ignore), key=lambda r: r.code):
                print(f"{rule.code}  {rule.name} [{rule.severity}]")
            return 0
        engine = LintEngine(
            select,
            ignore,
            whole_program=bool(getattr(args, "whole_program", False)),
            cache_path=getattr(args, "cache", None),
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = engine.lint_paths(args.paths)
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings, engine.rules))
    else:
        print(render_text(findings, statistics=not args.no_statistics))
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="domain-aware static analysis for the DSCT-EA codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
