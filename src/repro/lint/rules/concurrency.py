"""Concurrency rules: lock hygiene and trace-context propagation.

The serving stack (server handler threads, deadline worker threads,
journal lock) grew across PRs 1–4; these rules encode the disciplines
those PRs converged on:

* a lock acquired outside ``with`` must be released in a ``finally``
  (RL010) — an exception between ``acquire`` and ``release`` deadlocks
  every other handler thread;
* blocking work (fsync, solver entry points, sleeps, network I/O) does
  not belong inside a ``with lock:`` body (RL011) — it turns a
  microsecond critical section into a convoy;
* a ``threading.Thread`` target must carry the ambient context (RL012)
  — ``ContextVar``\\ s do not cross thread starts, so a bare target
  silently drops the active trace id and telemetry collector (the PR 4
  worker-thread bug class);
* in the cluster data plane every cross-process wait must be bounded
  (RL013) — a ``queue.get()`` or ``process.join()`` without a timeout
  hangs the caller forever once the peer is SIGKILLed, which is exactly
  the failure mode :mod:`repro.chaos` injects on purpose;
* in the cluster/overload data plane every in-memory queue must be
  bounded by construction (RL014) — an unbounded ``queue.Queue()`` or
  ``deque()`` is where overload collapse hides: arrivals outpace
  service, the backlog grows without limit, and by the time anything
  sheds, every queued request is already doomed (the metastable-failure
  ingredient :mod:`repro.overload` exists to remove).
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from . import Rule
from ..finding import Severity
from ..registry import register_rule

if TYPE_CHECKING:
    from ..engine import LintContext
    from ..finding import Finding

__all__ = [
    "LockAcquireRule",
    "BlockingUnderLockRule",
    "ThreadContextRule",
    "UnboundedClusterWaitRule",
    "UnboundedQueueRule",
]

#: Receiver names treated as locks (``self._lock``, ``journal_lock`` ...).
_LOCK_NAME = re.compile(r"lock|mutex|semaphore|\bsem\b", re.IGNORECASE)


def _expr_text(node: ast.expr) -> str:
    """Canonical text of a receiver expression (for matching/reporting)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover — unparse is total on valid trees
        return "<expr>"


def _is_lock_expr(node: ast.expr) -> bool:
    """Heuristic: does this expression denote a lock?"""
    if isinstance(node, ast.Call):
        # Direct `with threading.Lock():` (anonymous lock) — still a lock.
        return _is_lock_expr(node.func)
    if isinstance(node, ast.Attribute):
        return bool(_LOCK_NAME.search(node.attr)) or _is_lock_expr(node.value)
    if isinstance(node, ast.Name):
        return bool(_LOCK_NAME.search(node.id))
    return False


# -- RL010: acquire without with / try-finally ---------------------------------


@register_rule
class LockAcquireRule(Rule):
    """RL010 — a bare ``.acquire()`` leaks the lock on the first exception."""

    code = "RL010"
    name = "lock-acquire-without-release-guard"
    rationale = (
        "lock.acquire() followed by code that can raise leaves the lock held "
        "forever — every other handler thread then blocks on its next "
        "request.  Use `with lock:` or put the release in a try/finally "
        "whose try begins immediately after the acquire."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
            return
        if not _is_lock_expr(func.value):
            return
        receiver = _expr_text(func.value)
        if self._guarded(node, ctx, receiver):
            return
        yield self.finding(
            ctx,
            node,
            f"{receiver}.acquire() without `with {receiver}:` or a "
            f"try/finally releasing it",
        )

    def _guarded(self, node: ast.Call, ctx: "LintContext", receiver: str) -> bool:
        """Accept ``with``-items and acquire-then-try/finally-release shapes."""
        statement: Optional[ast.stmt] = None
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.withitem):
                return True
            if statement is None and isinstance(anc, ast.stmt):
                statement = anc
            if isinstance(anc, ast.Try) and _releases(anc.finalbody, receiver):
                return True
        if statement is None:
            return False
        # The canonical `lock.acquire()` immediately followed by
        # `try: ... finally: lock.release()` as the *next* statement.
        parent = ctx.parent(statement)
        for field in ("body", "orelse", "finalbody"):
            siblings = getattr(parent, field, None)
            if siblings and statement in siblings:
                index = siblings.index(statement)
                if index + 1 < len(siblings):
                    nxt = siblings[index + 1]
                    if isinstance(nxt, ast.Try) and _releases(nxt.finalbody, receiver):
                        return True
        return False


def _releases(statements: Sequence[ast.stmt], receiver: str) -> bool:
    """Does any statement call ``<receiver>.release()``?"""
    for stmt in statements:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "release"
                and _expr_text(sub.func.value) == receiver
            ):
                return True
    return False


# -- RL011: blocking calls inside a lock body ----------------------------------

#: Dotted call names that block (I/O, sleeps, subprocesses, sockets).
_BLOCKING_DOTTED = {
    "os.fsync",
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
}

#: Bare function names that block (module-level helpers of this repo + stdlib).
_BLOCKING_NAMES = {
    "urlopen",
    "fsync_directory",
    "atomic_write",
    "solve_fractional",
    "solve_lp_relaxation",
    "solve_lp_with_duals",
    "solve_mip",
    "run_with_deadline",
    "sleep",
}

#: Method names that block on *any* receiver (solver entry points, fsync).
_BLOCKING_METHODS = {"fsync", "solve", "solve_with_info", "communicate"}

#: Durability-surface methods that fsync, matched with their receiver.
_DURABLE_RECEIVER = re.compile(r"journal|snapshot", re.IGNORECASE)
_DURABLE_METHODS = {"append", "save", "rotate", "sync", "close"}


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why a call counts as blocking, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in _BLOCKING_NAMES:
            return f"{func.id}()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    dotted = _expr_text(func)
    if dotted in _BLOCKING_DOTTED:
        return f"{dotted}()"
    if func.attr in _BLOCKING_METHODS:
        return f".{func.attr}()"
    if func.attr in _DURABLE_METHODS and _DURABLE_RECEIVER.search(_expr_text(func.value)):
        return f"{_expr_text(func.value)}.{func.attr}() (fsyncs)"
    return None


@register_rule
class BlockingUnderLockRule(Rule):
    """RL011 — fsync/solve/sleep/socket I/O inside ``with lock:`` convoys."""

    code = "RL011"
    name = "blocking-call-under-lock"
    rationale = (
        "A lock held across an fsync (~ms), a solver call (~s) or network "
        "I/O serialises every other thread behind the slowest disk flush — "
        "the classic lock convoy.  Compute outside, publish under the lock. "
        "When the serialisation IS the point (a strictly-ordered energy "
        "ledger), say so with `# repro: noqa[RL011]` and a comment."
    )
    severity = Severity.ERROR
    node_types = (ast.With,)

    def visit(self, node: ast.With, ctx: "LintContext") -> Iterator[Finding]:
        if not any(_is_lock_expr(item.context_expr) for item in node.items):
            return
        lock_text = next(
            _expr_text(item.context_expr)
            for item in node.items
            if _is_lock_expr(item.context_expr)
        )
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) and not _in_nested_scope(sub, node, ctx):
                    reason = _blocking_reason(sub)
                    if reason is not None:
                        yield self.finding(
                            ctx,
                            sub,
                            f"blocking call {reason} inside `with {lock_text}:`; "
                            f"move it outside the critical section",
                        )


def _in_nested_scope(node: ast.AST, stop: ast.AST, ctx: "LintContext") -> bool:
    """True when ``node`` sits in a def/lambda nested inside ``stop``.

    Such code merely gets *defined* under the lock; it runs later.
    """
    for anc in ctx.ancestors(node):
        if anc is stop:
            return False
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return True
    return False


# -- RL012: thread targets that drop the trace context -------------------------

#: Tokens proving the spawn site propagates context to the worker.
_CONTEXT_TOKENS = ("copy_context", "trace_scope", "ensure_trace")


@register_rule
class ThreadContextRule(Rule):
    """RL012 — ``ContextVar``\\ s do not cross ``Thread(target=...)``."""

    code = "RL012"
    name = "thread-target-drops-trace-context"
    rationale = (
        "The active telemetry collector and trace id live in ContextVars, "
        "which a new thread does NOT inherit — a bare Thread target records "
        "spans into the void and loses the request's trace id (the PR 4 "
        "worker-thread bug).  Run the target under "
        "contextvars.copy_context().run(...), or open trace_scope()/"
        "ensure_trace() inside the worker."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    include = ("*/repro/*", "repro/*")
    exclude = ("*/repro/telemetry/*",)

    def visit(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        func = node.func
        is_thread = (isinstance(func, ast.Name) and func.id == "Thread") or (
            isinstance(func, ast.Attribute)
            and func.attr == "Thread"
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        )
        if not is_thread:
            return
        if not any(kw.arg == "target" for kw in node.keywords):
            return
        enclosing = ctx.enclosing_function(node)
        haystack = ctx.segment(enclosing) if enclosing is not None else ctx.source
        if any(token in haystack for token in _CONTEXT_TOKENS):
            return
        yield self.finding(
            ctx,
            node,
            "Thread target drops the ambient trace/collector context; run it "
            "via contextvars.copy_context().run(...) or open trace_scope()/"
            "ensure_trace() in the worker",
        )


# -- RL013: unbounded cross-process waits in the cluster data plane ------------

#: Receivers that denote request/reply queues (mp.Queue plumbing).
_QUEUE_RECEIVER = re.compile(r"queue|requests|replies|inbox|mailbox|\bq$", re.IGNORECASE)

#: Receivers that denote worker processes or their dispatcher threads.
_PROCESS_RECEIVER = re.compile(r"process|proc$|worker|dispatcher|child", re.IGNORECASE)


def _bounded_wait(call: ast.Call, *, queue_get: bool) -> bool:
    """Does this ``.get``/``.join`` call carry an explicit bound?"""
    for kw in call.keywords:
        if kw.arg == "timeout":
            # ``timeout=None`` is spelled-out unboundedness, still flagged.
            return not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
    if queue_get:
        # Queue.get(block, timeout): 2 positionals bound it; get(False)
        # never blocks at all.
        if len(call.args) >= 2:
            return True
        return (
            len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is False
        )
    # join(timeout) positionally.
    return len(call.args) >= 1


@register_rule
class UnboundedClusterWaitRule(Rule):
    """RL013 — an unbounded wait on a dead peer hangs the cluster forever."""

    code = "RL013"
    name = "unbounded-cluster-wait"
    rationale = (
        "A worker SIGKILLed mid-window (the repro.chaos failure model) "
        "never puts a reply and never exits its queue feeder — so a "
        "`queue.get()` or `process.join()` without a timeout blocks its "
        "caller forever, turning one shard death into a hung front-end.  "
        "Every cross-process wait in repro.cluster must be bounded: pass "
        "timeout= (and loop if you must wait indefinitely) or use "
        "get_nowait() for opportunistic drains."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    include = ("*/repro/cluster/*", "repro/cluster/*")

    def visit(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = _expr_text(func.value)
        if func.attr == "get" and _QUEUE_RECEIVER.search(receiver):
            if not _bounded_wait(node, queue_get=True):
                yield self.finding(
                    ctx,
                    node,
                    f"unbounded {receiver}.get(); a SIGKILLed peer never "
                    f"replies — pass timeout= (loop to keep waiting) or use "
                    f"get_nowait()",
                )
        elif func.attr == "join" and _PROCESS_RECEIVER.search(receiver):
            if not _bounded_wait(node, queue_get=False):
                yield self.finding(
                    ctx,
                    node,
                    f"unbounded {receiver}.join(); a wedged worker never "
                    f"exits — pass timeout= and escalate (terminate/kill) "
                    f"on expiry",
                )


# -- RL014: unbounded in-memory queues in the overload data plane --------------

#: Thread-queue classes that accept (and default away) a maxsize bound.
_SIZED_QUEUE_CLASSES = {"Queue", "LifoQueue", "PriorityQueue"}

#: Module receivers whose queue classes this rule recognises.  An
#: ``mp_context.Queue()`` (pipe-backed, flow-controlled by the OS) is
#: deliberately NOT matched — only the in-process containers where an
#: unbounded backlog silently accumulates.
_QUEUE_MODULES = {"queue", "collections"}


def _positive_int_constant(node: ast.expr) -> Optional[bool]:
    """True/False for a constant bound, None for a runtime expression."""
    if not isinstance(node, ast.Constant):
        return None  # a computed bound gets the benefit of the doubt
    value = node.value
    return isinstance(value, int) and not isinstance(value, bool) and value > 0


def _queue_call_bounded(call: ast.Call) -> bool:
    """Does ``Queue(...)`` carry a positive maxsize (kw or positional)?"""
    for kw in call.keywords:
        if kw.arg == "maxsize":
            verdict = _positive_int_constant(kw.value)
            return True if verdict is None else verdict
    if call.args:
        verdict = _positive_int_constant(call.args[0])
        return True if verdict is None else verdict
    return False  # Queue() defaults to maxsize=0: unbounded


def _deque_call_bounded(call: ast.Call) -> bool:
    """Does ``deque(...)`` carry a positive maxlen (kw or 2nd positional)?"""
    for kw in call.keywords:
        if kw.arg == "maxlen":
            verdict = _positive_int_constant(kw.value)
            return True if verdict is None else verdict
    if len(call.args) >= 2:
        verdict = _positive_int_constant(call.args[1])
        return True if verdict is None else verdict
    return False


@register_rule
class UnboundedQueueRule(Rule):
    """RL014 — an unbounded in-memory queue is stored overload collapse."""

    code = "RL014"
    name = "unbounded-data-plane-queue"
    rationale = (
        "In the serving data plane an unbounded queue.Queue() or deque() "
        "converts overload into memory growth and stale work: arrivals "
        "outpace service, the backlog grows without limit, and every "
        "queued request is doomed long before it is dequeued — the "
        "metastable-failure ingredient the overload controllers exist to "
        "remove.  Bound it (Queue(maxsize=N) / deque(maxlen=N)) and shed "
        "at the bound, where the client can still be told 503."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    include = (
        "*/repro/cluster/*",
        "repro/cluster/*",
        "*/repro/overload/*",
        "repro/overload/*",
    )

    def visit(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _QUEUE_MODULES
        ):
            name = func.attr
        else:
            return
        if name == "SimpleQueue":
            yield self.finding(
                ctx,
                node,
                "SimpleQueue cannot be bounded; use Queue(maxsize=N) so the "
                "data plane sheds at a cap instead of accumulating backlog",
            )
        elif name in _SIZED_QUEUE_CLASSES and not _queue_call_bounded(node):
            yield self.finding(
                ctx,
                node,
                f"unbounded {name}(); pass a positive maxsize= and shed "
                f"(503) when full — backlog beyond the cap is doomed work",
            )
        elif name == "deque" and not _deque_call_bounded(node):
            yield self.finding(
                ctx,
                node,
                "unbounded deque(); pass a positive maxlen= so the window "
                "drops oldest entries instead of growing without limit",
            )
