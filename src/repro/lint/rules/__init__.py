"""Rule base class and the built-in rule imports.

A rule is a small visitor fragment: it declares the AST node types it
wants (``node_types``), the paths it applies to (``include``/
``exclude`` glob patterns over posix-style relative paths), and yields
:class:`~repro.lint.finding.Finding` objects from :meth:`Rule.visit`.
The engine walks each file's AST exactly once and dispatches every node
to the rules subscribed to its type — adding a rule never adds a walk.

Path scoping is part of a rule's *definition*, not ad-hoc config: RL003
only polices modules that persist state, RL004 only scheduling/timeout
paths, RL002 skips ``tests/`` (determinism suites assert exact float
equality on purpose).  The catalog in ``docs/static-analysis.md``
documents every scope with its rationale.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import TYPE_CHECKING, ClassVar, Iterator, Optional, Sequence, Tuple, Type

from ..finding import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from ..engine import LintContext
    from ..flow.program import Program

__all__ = ["Rule"]


class Rule:
    """Base class for lint rules; subclass and :func:`register_rule` it."""

    #: Unique id, ``RL`` + 3 digits (``RL00x`` domain, ``RL01x`` concurrency).
    code: ClassVar[str] = ""
    #: Short kebab-case name used in reports and docs.
    name: ClassVar[str] = ""
    #: One-paragraph why-this-matters (rendered into the rule catalog).
    rationale: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    #: AST node classes dispatched to :meth:`visit`.
    node_types: ClassVar[Tuple[Type[ast.AST], ...]] = ()
    #: Glob patterns (posix relative paths) the rule applies to; ``None`` = all.
    include: ClassVar[Optional[Sequence[str]]] = None
    #: Glob patterns the rule never applies to (wins over ``include``).
    exclude: ClassVar[Sequence[str]] = ()
    #: Whole-program rules run once per *run* (``visit_program``) instead
    #: of per node, and only under ``repro lint --whole-program``.
    whole_program: ClassVar[bool] = False

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on ``rel_path`` (posix, repo-relative)."""
        if any(fnmatch.fnmatch(rel_path, pat) for pat in self.exclude):
            return False
        if self.include is None:
            return True
        return any(fnmatch.fnmatch(rel_path, pat) for pat in self.include)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        return iter(())

    def visit_program(self, program: "Program") -> Iterator[Finding]:
        """Yield findings for the whole program (``whole_program`` rules)."""
        return iter(())

    def program_finding(self, path: str, line: int, col: int, message: str) -> Finding:
        """Build a finding at an explicit location (whole-program rules)."""
        return Finding(
            path=path,
            line=max(line, 1),
            col=max(col, 0),
            code=self.code,
            message=message,
            severity=self.severity,
        )

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` with this rule's identity."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
        )


# Imported for their registration side effects (must follow Rule's
# definition — all modules subclass it).
from . import concurrency, domain, observability, whole_program  # noqa: E402,F401
