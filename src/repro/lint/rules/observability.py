"""Observability rules: timing discipline in the solver/cluster paths.

The continuous-profiling stack (:mod:`repro.profile`) attributes wall
time to *phase spans*: ``phase_breakdown`` turns closed spans into the
per-phase CI budgets, the sampler attributes stacks to the innermost
open span, and exemplars link histogram buckets to traces.  A duration
measured with a bare ``time.perf_counter()`` pair and pushed straight
into a metric bypasses all of that — the seconds show up in a histogram
but in no phase split, no flamegraph attribution, no trace timeline.
RL015 keeps solver/cluster timing on the span path.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set

from . import Rule
from ..finding import Severity
from ..registry import register_rule

if TYPE_CHECKING:
    from ..engine import LintContext
    from ..finding import Finding

__all__ = ["UnattributedTimingRule"]

#: Metric-recording method names a duration could be pushed through.
_RECORD_METHODS = {"observe", "set", "add", "inc"}

#: Tokens in a ``with`` item that prove the recording is span-attributed.
_SPAN_TOKENS = ("span", "trace_scope")


def _is_perf_counter_call(node: ast.AST) -> bool:
    """``time.perf_counter()`` or a bare ``perf_counter()``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "perf_counter"
    return isinstance(func, ast.Attribute) and func.attr == "perf_counter"


def _is_perf_delta(node: ast.expr) -> bool:
    """A subtraction with a perf_counter() call on either side."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and (_is_perf_counter_call(node.left) or _is_perf_counter_call(node.right))
    )


def _delta_names(scope: Optional[ast.AST]) -> Set[str]:
    """Names the enclosing function binds to perf_counter() deltas.

    Matches ``x = time.perf_counter() - t0`` directly and one hop of
    arithmetic wrapping (``x = max(time.perf_counter() - t0, 0.0)``).
    """
    if scope is None:
        return set()
    names: Set[str] = set()
    for sub in ast.walk(scope):
        if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
            continue
        target = sub.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = sub.value
        candidates = [value]
        if isinstance(value, ast.Call):
            candidates.extend(value.args)
        if any(_is_perf_delta(c) for c in candidates):
            names.add(target.id)
    return names


@register_rule
class UnattributedTimingRule(Rule):
    """RL015 — a perf_counter delta in a metric bypasses phase attribution."""

    code = "RL015"
    name = "unattributed-timing-delta"
    rationale = (
        "Solver/cluster durations recorded as raw time.perf_counter() "
        "deltas are invisible to the phase-attribution stack: they appear "
        "in a histogram but in no per-phase budget, no flamegraph, no "
        "trace timeline — exactly the wall time a perf regression hides "
        "in.  Time the section with `with registry.span(...)` (spans "
        "observe their own duration and attribute profiler samples), or "
        "record the delta inside the span so the seconds land in a phase."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    include = (
        "*/repro/algorithms/*",
        "repro/algorithms/*",
        "*/repro/exact/*",
        "repro/exact/*",
        "*/repro/online/*",
        "repro/online/*",
        "*/repro/cluster/*",
        "repro/cluster/*",
    )

    def visit(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _RECORD_METHODS):
            return
        if not node.args:
            return
        argument = node.args[0]
        is_delta = _is_perf_delta(argument)
        if not is_delta:
            names = {n.id for n in ast.walk(argument) if isinstance(n, ast.Name)}
            is_delta = bool(names & _delta_names(ctx.enclosing_function(node)))
        if not is_delta:
            return
        if self._span_attributed(node, ctx):
            return
        yield self.finding(
            ctx,
            node,
            f"perf_counter delta recorded via .{func.attr}() outside any "
            f"phase span; wrap the timed section in `with registry.span(...)` "
            f"so the duration lands in the per-phase attribution",
        )

    @staticmethod
    def _span_attributed(node: ast.Call, ctx: "LintContext") -> bool:
        """Is the recording lexically inside a span/trace-scope ``with``?"""
        for anc in ctx.ancestors(node):
            if not isinstance(anc, ast.With):
                continue
            for item in anc.items:
                expr = item.context_expr
                call = expr if isinstance(expr, ast.Call) else None
                target = call.func if call is not None else expr
                try:
                    text = ast.unparse(target)
                except Exception:  # pragma: no cover — unparse is total
                    continue
                if any(token in text for token in _SPAN_TOKENS):
                    return True
        return False
