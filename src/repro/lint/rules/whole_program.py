"""Whole-program rules: lock cycles, grant leaks, units, transitive blocking.

These rules consume the :class:`~repro.lint.flow.program.Program` built
by ``repro lint --whole-program`` — they see every analysed file's
summaries at once, so they catch exactly the bug classes a one-file AST
walk cannot:

* **RL016** — a cycle in the cross-module lock-order graph.  Thread 1
  takes A then (through any call chain) B while thread 2 takes B then
  A: a deadlock that no single file contains.
* **RL017** — an ``EnergyLeaseLedger`` grant that can miss its
  ``commit()``/``release()`` on some CFG path.  Every leaked grant is
  headroom the ledger believes is still spoken for — the budget
  invariant Σ spent ≤ B survives, but the cluster serves ever less of
  B.  Exception edges are where these hide (a runtime test never takes
  them); the prover in :mod:`repro.lint.flow.summaries` walks them
  explicitly.
* **RL018** — a unit-dimension error *across* a call boundary: the
  caller passes seconds into a parameter named ``budget`` (joules).
  RL001 checks expressions; this rule checks signatures.
* **RL019** — blocking work reached *transitively* from a lock-held
  region.  RL011 flags ``fsync`` under ``with lock:`` in the same
  file; this rule flags ``with lock: self._flush()`` where ``_flush``
  (or anything it calls, bounded depth) fsyncs.

All four are scoped to production sources (``tests/`` excluded): tests
exercise the ledger API half-settled on purpose, and their helper
locks/queues model failures rather than serve requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from . import Rule
from ..finding import Severity
from ..registry import register_rule

if TYPE_CHECKING:
    from ..finding import Finding
    from ..flow.program import Program

__all__ = [
    "LockOrderCycleRule",
    "GrantLeakRule",
    "InterproceduralUnitsRule",
    "TransitiveBlockingRule",
]

_TEST_EXCLUDES = ("tests/*", "*/tests/*", "test_*", "*/test_*")


def _short(lock: str) -> str:
    """A readable lock label: last three dotted components."""
    return ".".join(lock.split(".")[-3:])


@register_rule
class LockOrderCycleRule(Rule):
    """RL016 — the program's lock-order graph must be acyclic."""

    code = "RL016"
    name = "lock-order-cycle"
    rationale = (
        "Two threads acquiring the same pair of locks in opposite orders "
        "deadlock the moment their critical sections overlap — and the two "
        "orders almost never sit in one file (frontend holds its handle "
        "lock while the ledger takes its own; a ledger callback reaching "
        "back into the frontend closes the loop).  The whole-program lock "
        "graph — nodes are canonical lock ids, an edge A→B means B is "
        "acquired (possibly through calls) while A is held — must stay "
        "acyclic; a reentrant self-loop on a non-reentrant Lock is the "
        "same bug with one thread."
    )
    severity = Severity.ERROR
    whole_program = True
    exclude = _TEST_EXCLUDES

    def visit_program(self, program: "Program") -> Iterator["Finding"]:
        for cycle in program.lock_cycles():
            witness = cycle.edges[0]
            display, rel = program.location(witness.function)
            if not self.applies_to(rel):
                continue
            order = " -> ".join(_short(lock) for lock in (*cycle.locks, cycle.locks[0]))
            sites = "; ".join(
                f"{_short(e.outer)} held while acquiring {_short(e.inner)} in "
                f"{e.function.rsplit('.', 1)[-1]}()"
                + (f" via {e.via.rsplit('.', 1)[-1]}()" if e.via else "")
                for e in cycle.edges
            )
            yield self.program_finding(
                display,
                witness.line,
                0,
                f"lock-order cycle {order}: {sites} — acquire these locks in "
                f"one global order (or merge the critical sections)",
            )


@register_rule
class GrantLeakRule(Rule):
    """RL017 — every reserved energy grant must settle on every path."""

    code = "RL017"
    name = "energy-grant-leak"
    rationale = (
        "The ledger's budget proof (sum spent <= B) counts a reservation "
        "as spoken-for until commit() or release() returns it; a grant "
        "variable that can reach function exit — especially via an "
        "exception edge no runtime test ever takes — leaks that headroom "
        "forever, and the cluster quietly serves less and less of B (the "
        "phantom-reservation failure repro.chaos hunts at runtime).  This "
        "rule is the static counterpart: the CFG prover must show every "
        "reserve()/_reserve_for() grant reaches a settle, an explicit "
        "hand-off, or a guarded release on *all* paths."
    )
    severity = Severity.ERROR
    whole_program = True
    exclude = _TEST_EXCLUDES

    def visit_program(self, program: "Program") -> Iterator["Finding"]:
        for func in program.functions():
            if not func.grant_leaks:
                continue
            display, rel = program.location(func.qualname)
            if not self.applies_to(rel):
                continue
            for leak in func.grant_leaks:
                if leak.path_kind == "discarded":
                    message = (
                        f"grant from {leak.reserve_text} is discarded — bind it "
                        f"and commit()/release() it on every path"
                    )
                else:
                    path = (
                        "an exception path (no runtime test takes it)"
                        if leak.path_kind == "exception"
                        else "a normal path"
                    )
                    message = (
                        f"energy grant {leak.variable!r} from {leak.reserve_text} "
                        f"can leak on {path}: reserved here but neither "
                        f"committed nor released after line {leak.leak_line} — "
                        f"settle it in a finally/except or hand it off explicitly"
                    )
                yield self.program_finding(display, leak.line, leak.col, message)


@register_rule
class InterproceduralUnitsRule(Rule):
    """RL018 — argument dimensions must match the callee's parameter names."""

    code = "RL018"
    name = "cross-call-unit-mismatch"
    rationale = (
        "RL001 catches `deadline + energy` inside one expression, but the "
        "same bug crossing a call boundary — passing a duration where the "
        "callee's parameter is named `budget` (joules) — is invisible to a "
        "per-file walk.  Parameter names in this codebase carry their unit "
        "(the RL001 name tables); when the caller's inferred argument "
        "dimension contradicts the callee parameter's named dimension, one "
        "side is wrong."
    )
    severity = Severity.ERROR
    whole_program = True
    exclude = _TEST_EXCLUDES

    def visit_program(self, program: "Program") -> Iterator["Finding"]:
        from .domain import dim_name

        for mismatch in program.dim_mismatches():
            display, rel = program.location(mismatch.caller)
            if not self.applies_to(rel):
                continue
            callee_name = mismatch.callee.rsplit(".", 1)[-1]
            yield self.program_finding(
                display,
                mismatch.record.line,
                mismatch.record.col,
                f"{mismatch.arg_label} of {callee_name}() is "
                f"{dim_name(mismatch.arg_dim)} but parameter "
                f"{mismatch.param!r} expects {dim_name(mismatch.param_dim)}",
            )


@register_rule
class TransitiveBlockingRule(Rule):
    """RL019 — a callee that blocks is still blocking under the caller's lock."""

    code = "RL019"
    name = "transitive-blocking-under-lock"
    rationale = (
        "Moving an fsync into a helper does not un-convoy the lock that is "
        "held while the helper runs — it just moves the blocking call out "
        "of RL011's single-file sight.  This rule follows the call graph "
        "(bounded depth) from every call made inside `with lock:` and "
        "flags lock-held call chains that end in fsync/solve/sleep/network "
        "I/O.  The fix is the same as RL011's: compute outside, publish "
        "under the lock — or justify the serialisation with a noqa."
    )
    severity = Severity.ERROR
    whole_program = True
    exclude = _TEST_EXCLUDES

    def visit_program(self, program: "Program") -> Iterator["Finding"]:
        for chain in program.blocking_under_lock():
            display, rel = program.location(chain.caller)
            if not self.applies_to(rel):
                continue
            path = " -> ".join(
                q.rsplit(".", 1)[-1] + "()" for q in (chain.caller, *chain.chain)
            )
            yield self.program_finding(
                display,
                chain.record.line,
                chain.record.col,
                f"call chain {path} blocks ({chain.reason}) while "
                f"{_short(chain.locks[-1])} is held — move the blocking work "
                f"outside the critical section",
            )
