"""Domain rules: unit dimensions, float equality, atomic writes, clocks.

The paper's quantities all live in plain ``float``\\ s (see
:mod:`repro.utils.units`): work in FLOP, energy in joules, time in
seconds, speed in FLOP/s, power in W, efficiency in FLOP/J, accuracy as
a fraction.  Python will happily add any of them together; the rules
here won't.

The dimension engine is deliberately conservative — a quantity is
tracked only when its dimension is *known* (constructed through a
``repro.utils.units`` helper, read from a curated attribute/parameter
table of the core API, or derived by multiplying/dividing known
quantities).  Unknown stays unknown and never flags; a lint rule that
cries wolf gets suppressed wholesale and protects nothing.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union

from . import Rule
from ..finding import Severity
from ..registry import register_rule

if TYPE_CHECKING:
    from ..engine import LintContext
    from ..finding import Finding

__all__ = [
    "Dim",
    "POLY",
    "DIM_WORK",
    "DIM_ENERGY",
    "DIM_TIME",
    "DIM_RATE",
    "DIM_POWER",
    "DIM_EFFICIENCY",
    "DIM_ACCURACY",
    "dim_name",
    "infer_dim",
    "build_env",
]

# -- the dimension algebra -----------------------------------------------------
#
# A dimension is a 4-tuple of exponents over the base quantities
# (FLOP, J, s, accuracy).  Derived units fall out of the arithmetic:
# FLOP/s = (1,0,-1,0), W = J/s = (0,1,-1,0), FLOP/J = (1,-1,0,0).

Dim = Tuple[int, int, int, int]

DIM_WORK: Dim = (1, 0, 0, 0)
DIM_ENERGY: Dim = (0, 1, 0, 0)
DIM_TIME: Dim = (0, 0, 1, 0)
DIM_ACCURACY: Dim = (0, 0, 0, 1)
DIM_RATE: Dim = (1, 0, -1, 0)
DIM_POWER: Dim = (0, 1, -1, 0)
DIM_EFFICIENCY: Dim = (1, -1, 0, 0)

#: Sentinel for numeric literals: compatible with every dimension
#: (``2 * energy`` scales joules; ``energy + 5`` adds joules).
POLY = "poly"

_DIM_NAMES = {
    DIM_WORK: "work [FLOP]",
    DIM_ENERGY: "energy [J]",
    DIM_TIME: "time [s]",
    DIM_ACCURACY: "accuracy [fraction]",
    DIM_RATE: "speed [FLOP/s]",
    DIM_POWER: "power [W]",
    DIM_EFFICIENCY: "efficiency [FLOP/J]",
    (0, 0, 0, 0): "dimensionless",
}


def dim_name(dim: Dim) -> str:
    """Human name for a dimension (exponent form for exotic products)."""
    known = _DIM_NAMES.get(dim)
    if known is not None:
        return known
    parts = []
    for exp, unit in zip(dim, ("FLOP", "J", "s", "acc")):
        if exp:
            parts.append(unit if exp == 1 else f"{unit}^{exp}")
    return "·".join(parts) if parts else "dimensionless"


#: ``repro.utils.units`` constructors → the dimension they *produce*.
_CONSTRUCTOR_DIMS: Dict[str, Dim] = {
    "tflop": DIM_WORK,
    "gflop": DIM_WORK,
    "tflops": DIM_RATE,
    "gflops": DIM_RATE,
    "gflops_per_watt": DIM_EFFICIENCY,
    "joules": DIM_ENERGY,
    "watt_hours": DIM_ENERGY,
}

#: Display converters → the dimension their argument must already have.
_DISPLAY_ARG_DIMS: Dict[str, Dim] = {
    "as_tflop": DIM_WORK,
    "as_gflop": DIM_WORK,
    "as_tflops": DIM_RATE,
    "as_gflops_per_watt": DIM_EFFICIENCY,
    "as_watt_hours": DIM_ENERGY,
}

#: Curated attribute dimensions of the core API (Task, Machine, Schedule,
#: ProblemInstance, DurableWindow, BurnRateMonitor ...).  Exact names only.
_ATTRIBUTE_DIMS: Dict[str, Dim] = {
    # energy
    "energy": DIM_ENERGY,
    "total_energy": DIM_ENERGY,
    "cum_energy": DIM_ENERGY,
    "budget": DIM_ENERGY,
    "energy_budget": DIM_ENERGY,
    "energy_spent": DIM_ENERGY,
    "energy_joules": DIM_ENERGY,
    "budget_joules": DIM_ENERGY,
    # time
    "deadline": DIM_TIME,
    "release": DIM_TIME,
    "window_seconds": DIM_TIME,
    "horizon": DIM_TIME,
    "duration": DIM_TIME,
    "elapsed": DIM_TIME,
    "runtime_seconds": DIM_TIME,
    "deadline_seconds": DIM_TIME,
    "solver_timeout": DIM_TIME,
    "retry_after_seconds": DIM_TIME,
    "backoff_seconds": DIM_TIME,
    # speed / power / work / efficiency
    "speed": DIM_RATE,
    "power": DIM_POWER,
    "total_power": DIM_POWER,
    "idle_power": DIM_POWER,
    "work": DIM_WORK,
    "efficiency": DIM_EFFICIENCY,
    # accuracy
    "accuracy": DIM_ACCURACY,
    "mean_accuracy": DIM_ACCURACY,
    "total_accuracy": DIM_ACCURACY,
    "accuracy_floor": DIM_ACCURACY,
    "theta": DIM_ACCURACY,
}

#: Bare-name fallback (parameters and locals named after their unit).
_NAME_DIMS: Dict[str, Dim] = {
    "energy": DIM_ENERGY,
    "energy_budget": DIM_ENERGY,
    "energy_spent": DIM_ENERGY,
    "cum_energy": DIM_ENERGY,
    "budget": DIM_ENERGY,
    "joules": DIM_ENERGY,
    "deadline": DIM_TIME,
    "horizon": DIM_TIME,
    "duration": DIM_TIME,
    "elapsed": DIM_TIME,
    "seconds": DIM_TIME,
    "window_seconds": DIM_TIME,
    "timeout": DIM_TIME,
    "speed": DIM_RATE,
    "power": DIM_POWER,
    "work": DIM_WORK,
    "efficiency": DIM_EFFICIENCY,
    "accuracy": DIM_ACCURACY,
    "theta": DIM_ACCURACY,
}

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

DimResult = Optional[Union[Dim, str]]  # a Dim, POLY, or None (unknown)
Env = Dict[str, Dim]


def _units_call_name(func: ast.expr) -> Optional[str]:
    """The units-helper name a call targets, if any (``tflops``/``u.tflops``)."""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    if name in _CONSTRUCTOR_DIMS or name in _DISPLAY_ARG_DIMS:
        return name
    return None


def infer_dim(node: ast.expr, env: Env) -> DimResult:
    """The dimension of an expression, or ``POLY``/``None``.

    ``POLY`` (numeric literals) unifies with anything; ``None`` means
    unknown and is never reported against.
    """
    if isinstance(node, ast.Constant):
        return POLY if isinstance(node.value, (int, float)) and not isinstance(node.value, bool) else None
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        return _NAME_DIMS.get(node.id)
    if isinstance(node, ast.Attribute):
        return _ATTRIBUTE_DIMS.get(node.attr)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return infer_dim(node.operand, env)
    if isinstance(node, ast.Call):
        name = _units_call_name(node.func)
        if name in _CONSTRUCTOR_DIMS:
            return _CONSTRUCTOR_DIMS[name]
        if name in _DISPLAY_ARG_DIMS:
            return None  # display floats leave the dimension system
        return None
    if isinstance(node, ast.BinOp):
        left = infer_dim(node.left, env)
        right = infer_dim(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left == POLY:
                return right
            if right == POLY:
                return left
            if left is None or right is None:
                return None
            return left if left == right else None
        if isinstance(node.op, ast.Mult):
            # A numeric literal in a product may be a *hidden* dimensioned
            # constant ("* 8.0" meaning 8 seconds), so POLY poisons the
            # product to unknown rather than acting as a pure scalar.
            if left == POLY or right == POLY or left is None or right is None:
                return None
            return _combine(left, right, +1)
        if isinstance(node.op, ast.Div):
            if left == POLY or right == POLY or left is None or right is None:
                return None
            return _combine(left, right, -1)
        return None
    if isinstance(node, ast.IfExp):
        body = infer_dim(node.body, env)
        orelse = infer_dim(node.orelse, env)
        return body if body == orelse else None
    return None


def _combine(a: Dim, b: Dim, sign: int) -> Dim:
    return tuple(x + sign * y for x, y in zip(a, b))  # type: ignore[return-value]


def _invert(d: Dim) -> Dim:
    return tuple(-x for x in d)  # type: ignore[return-value]


def build_env(scope: ast.AST) -> Env:
    """Name → dimension for one scope (module body or function body).

    Walks assignments in source order, skipping nested function/class
    scopes; parameters contribute through the bare-name table inside
    :func:`infer_dim`, so only explicit assignments land here.
    """
    env: Env = {}
    for stmt in _scope_statements(scope):
        targets: list = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        dim = infer_dim(value, env)
        for target in targets:
            if isinstance(target, ast.Name):
                if dim is not None and dim != POLY:
                    env[target.id] = dim  # type: ignore[assignment]
                else:
                    env.pop(target.id, None)
    return env


def _scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """All statements of ``scope``, not descending into nested scopes."""
    body = getattr(scope, "body", [])
    stack = list(body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield stmt
        for field in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, field, []):
                if isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif isinstance(child, ast.stmt):
                    stack.append(child)


def _env_for(node: ast.AST, ctx: "LintContext") -> Env:
    """The (cached) dimension environment of ``node``'s enclosing scope."""
    scope: ast.AST = ctx.tree
    for anc in ctx.ancestors(node):
        if isinstance(anc, _SCOPE_TYPES):
            scope = anc
            break
    cache = ctx.cache.setdefault("dim_envs", {})
    key = id(scope)
    if key not in cache:
        cache[key] = build_env(scope)
    return cache[key]


# -- RL001: unit-dimension mismatches ------------------------------------------


@register_rule
class UnitDimensionRule(Rule):
    """RL001 — adding seconds to joules (and friends) is always a bug."""

    code = "RL001"
    name = "unit-dimension-mismatch"
    rationale = (
        "All quantities are plain floats in SI units (see repro.utils.units); "
        "the type system cannot tell joules from seconds, so dimension errors "
        "survive until a feasibility audit fails at runtime.  Adding or "
        "comparing quantities of different dimensions, or re-converting an "
        "already-converted quantity, is flagged at parse time instead."
    )
    severity = Severity.ERROR
    node_types = (ast.BinOp, ast.Compare, ast.Call)

    def visit(self, node: ast.AST, ctx: "LintContext") -> Iterator[Finding]:
        if isinstance(node, ast.BinOp):
            yield from self._check_binop(node, ctx)
        elif isinstance(node, ast.Compare):
            yield from self._check_compare(node, ctx)
        elif isinstance(node, ast.Call):
            yield from self._check_conversion(node, ctx)

    def _check_binop(self, node: ast.BinOp, ctx: "LintContext") -> Iterator[Finding]:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        env = _env_for(node, ctx)
        left = infer_dim(node.left, env)
        right = infer_dim(node.right, env)
        if left in (None, POLY) or right in (None, POLY) or left == right:
            return
        op = "add" if isinstance(node.op, ast.Add) else "subtract"
        yield self.finding(
            ctx,
            node,
            f"cannot {op} {dim_name(right)} {'to' if op == 'add' else 'from'} "
            f"{dim_name(left)}; convert through repro.utils.units first",
        )

    def _check_compare(self, node: ast.Compare, ctx: "LintContext") -> Iterator[Finding]:
        if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
            return
        env = _env_for(node, ctx)
        left = infer_dim(node.left, env)
        right = infer_dim(node.comparators[0], env)
        if left in (None, POLY) or right in (None, POLY) or left == right:
            return
        yield self.finding(
            ctx,
            node,
            f"ordering comparison between {dim_name(left)} and {dim_name(right)} "
            f"can never be meaningful",
        )

    def _check_conversion(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        name = _units_call_name(node.func)
        if name is None or not node.args:
            return
        env = _env_for(node, ctx)
        arg = infer_dim(node.args[0], env)
        if arg in (None, POLY):
            return
        if name in _CONSTRUCTOR_DIMS:
            yield self.finding(
                ctx,
                node,
                f"{name}() expects a raw magnitude but was given "
                f"{dim_name(arg)} — double conversion",
            )
        elif name in _DISPLAY_ARG_DIMS and arg != _DISPLAY_ARG_DIMS[name]:
            yield self.finding(
                ctx,
                node,
                f"{name}() expects {dim_name(_DISPLAY_ARG_DIMS[name])} "
                f"but was given {dim_name(arg)}",
            )


# -- RL002: float equality on physical quantities ------------------------------

#: Identifier fragments marking a value as a continuous physical float.
_FLOAT_NAME_PATTERN = re.compile(
    r"energy|joule|watt|accurac|theta|latenc|deadline|budget|duration|elapsed|burn",
    re.IGNORECASE,
)


def _is_domain_float(node: ast.expr, env: Env) -> bool:
    dim = infer_dim(node, env)
    if dim not in (None, POLY) and dim != (0, 0, 0, 0):
        return True
    if isinstance(node, ast.Name):
        return bool(_FLOAT_NAME_PATTERN.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_FLOAT_NAME_PATTERN.search(node.attr))
    return False


def _is_zero_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) and node.value == 0


def _is_non_numeric_literal(node: ast.expr) -> bool:
    """Strings/None/bools: equality against them is a sentinel check."""
    return isinstance(node, ast.Constant) and (
        isinstance(node.value, (str, bytes, bool)) or node.value is None
    )


@register_rule
class FloatEqualityRule(Rule):
    """RL002 — ``==`` on energy/accuracy/time floats needs a tolerance."""

    code = "RL002"
    name = "float-equality"
    rationale = (
        "Energies, accuracies and times are accumulated floats; two "
        "mathematically equal computations rarely compare `==` after "
        "different summation orders.  Require math.isclose()/an explicit "
        "tolerance.  Comparisons against a literal 0 are exempt (a value "
        "*set* to zero compares exactly), as is tests/ — determinism "
        "suites assert bit-identical results on purpose."
    )
    severity = Severity.WARNING
    node_types = (ast.Compare,)
    exclude = ("tests/*", "*/tests/*")

    def visit(self, node: ast.Compare, ctx: "LintContext") -> Iterator[Finding]:
        if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            return
        left, right = node.left, node.comparators[0]
        if _is_zero_literal(left) or _is_zero_literal(right):
            return
        if _is_non_numeric_literal(left) or _is_non_numeric_literal(right):
            return
        env = _env_for(node, ctx)
        if _is_domain_float(left, env) or _is_domain_float(right, env):
            op = "==" if isinstance(node.ops[0], ast.Eq) else "!="
            yield self.finding(
                ctx,
                node,
                f"float {op} on a physical quantity; use math.isclose() or an "
                f"explicit tolerance",
            )


# -- RL003: non-atomic state-file writes ---------------------------------------

_WRITE_MODES = re.compile(r"w")


def _write_mode(call: ast.Call) -> Optional[str]:
    """The truncating write mode a call opens with, if any."""
    mode: Optional[ast.expr] = None
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        if len(call.args) >= 2:
            mode = call.args[1]
    elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        if call.args:
            mode = call.args[0]
    else:
        return None
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value if _WRITE_MODES.search(mode.value) else None
    return None


@register_rule
class AtomicWriteRule(Rule):
    """RL003 — state files must go through ``repro.utils.atomic_write``."""

    code = "RL003"
    name = "non-atomic-write"
    rationale = (
        "A process killed mid-write leaves a truncated file under the final "
        "name — corrupt snapshots, instances and metric exports.  Every "
        "truncating write of persistent state must go through "
        "repro.utils.atomic_write (temp file + fsync + rename).  Append-only "
        "journal segments ('a'/'x' modes) are exempt: appends are the WAL's "
        "own crash-safety mechanism."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    include = ("*/repro/*", "repro/*")
    exclude = ("*/repro/utils/fileio.py",)

    def visit(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("write_text", "write_bytes"):
            yield self.finding(
                ctx,
                node,
                f".{node.func.attr}() is not crash-safe; use repro.utils.atomic_write",
            )
            return
        mode = _write_mode(node)
        if mode is not None:
            yield self.finding(
                ctx,
                node,
                f"open(..., {mode!r}) truncates in place; use repro.utils.atomic_write",
            )


# -- RL004: wall clocks in scheduling paths ------------------------------------


@register_rule
class MonotonicClockRule(Rule):
    """RL004 — deadlines and timeouts must use a monotonic clock."""

    code = "RL004"
    name = "wall-clock-in-scheduling-path"
    rationale = (
        "time.time() jumps under NTP steps and DST; a deadline or timeout "
        "computed from it can fire years late or instantly.  Scheduling, "
        "timeout and serving paths must use time.monotonic() (or "
        "perf_counter for durations).  Telemetry is excluded: span "
        "wall_start is deliberately wall-clock for cross-host correlation."
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)
    include = (
        "*/repro/algorithms/*",
        "*/repro/exact/*",
        "*/repro/baselines/*",
        "*/repro/resilience/*",
        "*/repro/online/*",
        "*/repro/durability/*",
        "*/repro/simulator/*",
        "*/repro/observe/*",
        "*/repro/server.py",
    )

    def visit(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        func = node.func
        is_wall = (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
        if not is_wall and isinstance(func, ast.Name) and func.id == "time":
            is_wall = bool(re.search(r"from\s+time\s+import\s+[^\n]*\btime\b", ctx.source))
        if is_wall:
            yield self.finding(
                ctx,
                node,
                "wall-clock time.time() in a scheduling/timeout path; use "
                "time.monotonic() (time.perf_counter() for durations)",
            )


# -- RL005: raw FLOP-scale factors ---------------------------------------------

#: The scale factors repro.utils.units exists to encapsulate.
_SCALE_VALUES = {1e9, 1e12}
_SCALE_SPELLING = re.compile(r"^(1e\+?(9|12)|10\s*\*\*\s*(9|12))$", re.IGNORECASE)


@register_rule
class RawScaleFactorRule(Rule):
    """RL005 — ``x / 1e9`` hides a unit conversion; name it."""

    code = "RL005"
    name = "raw-scale-factor"
    rationale = (
        "Multiplying or dividing by a bare 1e9/1e12 is a unit conversion "
        "with the unit erased — the single source of the paper's "
        "TFLOPS/GFLOPS-per-watt conversions is repro.utils.units.  Use "
        "tflops()/gflops()/as_tflop()/as_gflop()/gflops_per_watt() so the "
        "conversion is named and greppable.  (1e3/1e6 second-display "
        "conversions are out of scope: ms/µs formatting is not a FLOP "
        "scale.)"
    )
    severity = Severity.WARNING
    node_types = (ast.BinOp,)
    include = ("*/repro/*", "repro/*")
    exclude = ("*/repro/utils/units.py",)

    def visit(self, node: ast.BinOp, ctx: "LintContext") -> Iterator[Finding]:
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        for operand in (node.left, node.right):
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, (int, float))
                and float(operand.value) in _SCALE_VALUES
                and _SCALE_SPELLING.match(ctx.segment(operand).strip())
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"raw scale factor {ctx.segment(operand).strip()}; use the "
                    f"repro.utils.units helpers so the conversion is named",
                )
