"""Finding reporters: compiler-style text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from .finding import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding], *, statistics: bool = True) -> str:
    """``path:line:col: CODE message`` lines plus a per-rule tally."""
    lines: List[str] = [f.format() for f in findings]
    if statistics and findings:
        tally = Counter(f.code for f in findings)
        lines.append("")
        for code, count in sorted(tally.items()):
            lines.append(f"{code}: {count} finding(s)")
        lines.append(f"total: {len(findings)} finding(s)")
    elif statistics:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document (``{"findings": [...], "summary": {...}}``)."""
    tally = Counter(f.code for f in findings)
    document = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(tally.items())),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
