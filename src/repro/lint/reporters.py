"""Finding reporters: compiler-style text, JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, List, Optional, Sequence

from .finding import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from .rules import Rule

__all__ = ["render_text", "render_json", "render_sarif", "SARIF_SCHEMA_URI"]

#: The schema the SARIF output conforms to (and is validated against in tests).
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding], *, statistics: bool = True) -> str:
    """``path:line:col: CODE message`` lines plus a per-rule tally."""
    lines: List[str] = [f.format() for f in findings]
    if statistics and findings:
        tally = Counter(f.code for f in findings)
        lines.append("")
        for code, count in sorted(tally.items()):
            lines.append(f"{code}: {count} finding(s)")
        lines.append(f"total: {len(findings)} finding(s)")
    elif statistics:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document (``{"findings": [...], "summary": {...}}``)."""
    tally = Counter(f.code for f in findings)
    document = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(tally.items())),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def render_sarif(
    findings: Sequence[Finding], rules: Optional[Sequence["Rule"]] = None
) -> str:
    """A SARIF 2.1.0 log (the format ``codeql-action/upload-sarif`` ingests).

    The tool component carries the full rule catalog (id, name,
    rationale, default level) so code-scanning UIs can render the
    why-this-matters text next to each annotation; results reference
    rules by index.  Paths are emitted as the repo-relative URIs the
    engine linted, which is what GitHub needs to place PR annotations.
    """
    catalog = sorted(rules or [], key=lambda r: r.code)
    rule_index = {rule.code: i for i, rule in enumerate(catalog)}
    descriptors = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name.replace("-", " ")},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": _sarif_level(rule.severity)},
        }
        for rule in catalog
    ]
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.code,
            "level": _sarif_level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
