"""Per-line suppression: ``# repro: noqa`` and ``# repro: noqa[RL001,RL010]``.

Suppressions are deliberate, auditable exceptions — the syntax is
namespaced (``repro:``) so it cannot collide with flake8/ruff ``noqa``
handling, and the bracketed form is preferred: a blanket ``# repro:
noqa`` silences *every* rule on the line and should be rare.

A suppression applies to the *logical* line the violation is reported
on.  For multi-line statements put the comment on the line the rule
flags (the line of the offending expression, which :mod:`ast` reports).
"""

from __future__ import annotations

import re
import tokenize
from io import StringIO
from typing import Dict, FrozenSet, Optional

__all__ = ["SuppressionIndex", "NOQA_PATTERN"]

#: Matches ``repro: noqa`` with an optional ``[RL001, RL002]`` rule list.
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<codes>[A-Z0-9,\s]+)\])?",
    re.IGNORECASE,
)

#: Sentinel rule-set meaning "every rule" (the blanket form).
_ALL: FrozenSet[str] = frozenset({"*"})


class SuppressionIndex:
    """Per-file map of line number → suppressed rule codes.

    Built once per file from the token stream (comments never reach the
    AST, so they must be collected separately).  Falling back to a
    regex scan keeps suppression working even for sources the tokenizer
    rejects in exotic ways.
    """

    def __init__(self, line_codes: Dict[int, FrozenSet[str]]) -> None:
        self._line_codes = line_codes

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        line_codes: Dict[int, FrozenSet[str]] = {}
        try:
            tokens = tokenize.generate_tokens(StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                codes = _parse_comment(tok.string)
                if codes is not None:
                    line_codes[tok.start[0]] = line_codes.get(tok.start[0], frozenset()) | codes
        except (tokenize.TokenError, IndentationError, SyntaxError):
            for lineno, line in enumerate(source.splitlines(), start=1):
                codes = _parse_comment(line)
                if codes is not None:
                    line_codes[lineno] = codes
        return cls(line_codes)

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when rule ``code`` is silenced on 1-based ``line``."""
        codes = self._line_codes.get(line)
        if codes is None:
            return False
        return codes is _ALL or "*" in codes or code.upper() in codes

    @property
    def suppressed_lines(self) -> Dict[int, FrozenSet[str]]:
        """The raw index (for the unused-suppression audit in tests)."""
        return dict(self._line_codes)


def _parse_comment(text: str) -> Optional[FrozenSet[str]]:
    """The rule codes a comment suppresses, or ``None`` for no directive."""
    match = NOQA_PATTERN.search(text)
    if match is None:
        return None
    raw = match.group("codes")
    if raw is None:
        return _ALL
    codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    return codes if codes else _ALL
