"""repro.lint — domain-aware static analysis for the DSCT-EA codebase.

Generic linters see Python; they do not see the *physics*.  DSCT-EA
correctness hinges on arithmetic Python cannot type-check — FLOPs,
joules, seconds and their ratios (s_r, P_r, E_r = s_r/P_r) flow through
every solver as plain ``float`` — and on serving-stack disciplines
(crash-safe writes, monotonic clocks, lock hygiene, trace propagation)
that are enforced only by convention.  This package encodes those
conventions as machine-checked AST rules:

Domain rules
    ========  =====================================================
    RL001     unit-dimension mismatch (adding seconds to joules,
              double-converting through :mod:`repro.utils.units`)
    RL002     float ``==``/``!=`` on energy/accuracy/time values
    RL003     non-atomic state-file write (use ``utils.atomic_write``)
    RL004     ``time.time()`` in scheduling/timeout paths
              (wall clocks jump; use ``time.monotonic()``)
    RL005     raw power-of-ten scale factor (use the units helpers)
    ========  =====================================================

Concurrency rules
    ========  =====================================================
    RL010     ``Lock.acquire()`` without ``with``/``try‑finally``
    RL011     blocking call (fsync, solve, sleep, network/file I/O)
              inside a ``with lock:`` body
    RL012     ``threading.Thread`` target that drops the ambient
              trace/collector context (silent trace-id loss)
    ========  =====================================================

Whole-program rules (``repro lint --whole-program``)
    ========  =====================================================
    RL016     cross-module lock-order cycle (deadlock by reversed
              acquisition order, joined over the call graph)
    RL017     energy-grant leak: a ``reserve()``/``_reserve_for()``
              grant that can miss ``commit()``/``release()`` on some
              CFG path — exception edges included
    RL018     unit-dimension mismatch across a call boundary
              (seconds passed into a ``budget`` parameter)
    RL019     blocking call reached transitively from a lock-held
              region (RL011 through the call graph)
    ========  =====================================================

The whole-program pass (:mod:`repro.lint.flow`) builds per-file
dataflow summaries — symbol tables, per-function CFGs with explicit
exception edges, lock regions, call records — and joins them into a
project-wide call graph; :mod:`repro.lint.cache` keeps unchanged
files' summaries across runs (content-hash keyed, import-closure
invalidation).

Any finding can be suppressed per line with ``# repro: noqa[RL001]``
(or blanket ``# repro: noqa``); see :mod:`repro.lint.suppress`.

Entry points: :func:`lint_paths` / :func:`lint_source` for programmatic
use, ``repro lint`` (see :mod:`repro.lint.cli`) for the command line.
"""

from __future__ import annotations

from .cache import LintCache
from .engine import LintEngine, lint_file, lint_paths, lint_source
from .finding import Finding, Severity
from .registry import RuleRegistry, all_rules, get_rule, register_rule
from .reporters import render_json, render_sarif, render_text
from .rules import Rule
from .suppress import SuppressionIndex

__all__ = [
    "Finding",
    "LintCache",
    "LintEngine",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SuppressionIndex",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
]
