"""Workload substrate: task-set generators, paper scenarios, arrival processes."""

from .arrivals import MMPPArrivals, PoissonArrivals, Request, window_batches
from .distributions import (
    DistributionalConfig,
    available_distributions,
    generate_distributional_tasks,
    sample_distribution,
)
from .generator import (
    PAPER_A_MAX,
    PAPER_A_MIN,
    TaskGenConfig,
    generate_instance,
    generate_tasks,
    tasks_from_thetas,
)
from .scenarios import (
    PAPER_THETA_MIN,
    budget_sweep_instance,
    earliest_high_efficiency_tasks,
    fig6_cluster,
    fig6_instance,
    heterogeneity_instance,
    runtime_instance,
    uniform_mix_tasks,
)
from .traces import DiurnalTraceConfig, generate_diurnal_trace, load_trace, save_trace

__all__ = [
    "TaskGenConfig",
    "generate_tasks",
    "generate_instance",
    "tasks_from_thetas",
    "PAPER_A_MIN",
    "PAPER_A_MAX",
    "PAPER_THETA_MIN",
    "heterogeneity_instance",
    "runtime_instance",
    "budget_sweep_instance",
    "fig6_cluster",
    "fig6_instance",
    "uniform_mix_tasks",
    "earliest_high_efficiency_tasks",
    "Request",
    "DiurnalTraceConfig",
    "generate_diurnal_trace",
    "save_trace",
    "load_trace",
    "DistributionalConfig",
    "available_distributions",
    "sample_distribution",
    "generate_distributional_tasks",
    "PoissonArrivals",
    "MMPPArrivals",
    "window_batches",
]
