"""Named workload scenarios from the paper's evaluation section.

* :func:`heterogeneity_instance` — Fig. 3's setup: n = 100, m = 5,
  ρ = 0.35, β = 0.5, θ ∈ [θ_min, μ·θ_min] with θ_min = 0.1.
* :func:`runtime_instance` — Fig. 4 / Table 1 instances (uniform tasks).
* :func:`budget_sweep_instance` — Fig. 5's setup: n = 100, m = 2,
  ρ = 1.0, every task θ = 0.1.
* :func:`fig6_cluster` and the two Fig. 6 task mixes
  (:func:`uniform_mix_tasks`, :func:`earliest_high_efficiency_tasks`) —
  machine 1 = 2 TFLOPS / 80 GFLOPS/W, machine 2 = 5 TFLOPS / 70 GFLOPS/W,
  ρ = 0.01 (very strict deadlines).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.machine import Cluster, Machine
from ..core.task import TaskSet
from ..hardware.sampling import sample_uniform_cluster
from ..utils.rng import SeedLike, ensure_rng, spawn
from ..utils.validation import require
from .generator import TaskGenConfig, generate_tasks

__all__ = [
    "PAPER_THETA_MIN",
    "heterogeneity_instance",
    "runtime_instance",
    "budget_sweep_instance",
    "fig6_cluster",
    "uniform_mix_tasks",
    "earliest_high_efficiency_tasks",
    "fig6_instance",
]

#: The paper fixes the minimum task efficiency at 0.1.
PAPER_THETA_MIN = 0.1


def heterogeneity_instance(
    mu: float,
    *,
    n: int = 100,
    m: int = 5,
    rho: float = 0.35,
    beta: float = 0.5,
    theta_min: float = PAPER_THETA_MIN,
    seed: SeedLike = None,
) -> ProblemInstance:
    """One Fig. 3 instance with task heterogeneity ratio μ = θ_max/θ_min."""
    require(mu >= 1.0, f"mu must be >= 1, got {mu}")
    rng_cluster, rng_tasks = spawn(seed, 2)
    cluster = sample_uniform_cluster(m, rng_cluster)
    config = TaskGenConfig(n=n, theta_range=(theta_min, theta_min * mu), rho=rho)
    tasks = generate_tasks(config, cluster, rng_tasks)
    return ProblemInstance.with_beta(tasks, cluster, beta)


def runtime_instance(
    n: int,
    m: int,
    *,
    rho: float = 0.5,
    beta: float = 0.5,
    theta_range: Tuple[float, float] = (PAPER_THETA_MIN, 1.0),
    seed: SeedLike = None,
) -> ProblemInstance:
    """One Fig. 4 / Table 1 instance of a given size."""
    rng_cluster, rng_tasks = spawn(seed, 2)
    cluster = sample_uniform_cluster(m, rng_cluster)
    config = TaskGenConfig(n=n, theta_range=theta_range, rho=rho)
    tasks = generate_tasks(config, cluster, rng_tasks)
    return ProblemInstance.with_beta(tasks, cluster, beta)


def budget_sweep_instance(
    beta: float,
    *,
    n: int = 100,
    m: int = 2,
    rho: float = 1.0,
    theta: float = PAPER_THETA_MIN,
    common_deadline: bool = True,
    seed: SeedLike = None,
) -> ProblemInstance:
    """One Fig. 5 instance: uniform tasks (θ = 0.1), varying budget ratio.

    ``common_deadline=True`` gives every task the same deadline d_max
    (deadline_floor = 1).  This reproduces the paper's Fig. 5 boundary
    behaviour exactly: at β = 1 the budget covers full processing and
    *all* methods — including EDF-NoCompression — converge to a_max,
    which is only possible when no individual early deadline binds.
    """
    rng_cluster, rng_tasks = spawn(seed, 2)
    cluster = sample_uniform_cluster(m, rng_cluster)
    config = TaskGenConfig(
        n=n,
        theta_range=(theta, theta),
        rho=rho,
        deadline_floor=1.0 if common_deadline else 0.05,
    )
    tasks = generate_tasks(config, cluster, rng_tasks)
    return ProblemInstance.with_beta(tasks, cluster, beta)


def fig6_cluster() -> Cluster:
    """Fig. 6's two machines: slower-but-efficient vs faster-but-hungrier.

    Machine 1: 2 TFLOPS at 80 GFLOPS/W; machine 2: 5 TFLOPS at
    70 GFLOPS/W (values from [7]).
    """
    return Cluster(
        [
            Machine.from_tflops(2.0, 80.0, name="machine-1 (efficient)"),
            Machine.from_tflops(5.0, 70.0, name="machine-2 (fast)"),
        ]
    )


def uniform_mix_tasks(
    cluster: Cluster,
    *,
    n: int = 100,
    rho: float = 0.01,
    theta_range: Tuple[float, float] = (0.1, 4.9),
    seed: SeedLike = None,
) -> TaskSet:
    """Fig. 6a's Uniform Tasks: θ ~ U(0.1, 4.9), very strict deadlines."""
    config = TaskGenConfig(n=n, theta_range=theta_range, rho=rho)
    return generate_tasks(config, cluster, seed)


def earliest_high_efficiency_tasks(
    cluster: Cluster,
    *,
    n: int = 100,
    rho: float = 0.01,
    early_fraction: float = 0.3,
    high_range: Tuple[float, float] = (4.0, 4.9),
    low_range: Tuple[float, float] = (0.1, 1.0),
    seed: SeedLike = None,
) -> TaskSet:
    """Fig. 6b's Earliest High Efficient Tasks.

    The earliest ``early_fraction`` of tasks (by deadline) have high
    efficiency θ ∈ high_range; the rest θ ∈ low_range.
    """
    require(0.0 < early_fraction < 1.0, "early_fraction must lie in (0, 1)")
    rng = ensure_rng(seed)
    n_early = max(int(round(early_fraction * n)), 1)

    # Draw both groups with a unified generator call so ρ is realised on
    # the merged set: generate θ first, then deadlines, then assign the
    # high θ to the earliest deadlines.
    thetas_high = rng.uniform(*high_range, size=n_early)
    thetas_low = rng.uniform(*low_range, size=n - n_early)
    thetas = np.concatenate([thetas_high, thetas_low])

    from ..core.accuracy import ExponentialAccuracy
    from ..utils import units as _units
    from .generator import PAPER_A_MAX, PAPER_A_MIN, tasks_from_thetas

    f_max = np.array(
        [ExponentialAccuracy(th / _units.TERA, a_min=PAPER_A_MIN, a_max=PAPER_A_MAX).f_max for th in thetas]
    )
    d_max = rho * float(f_max.sum()) / cluster.total_speed
    fractions = np.sort(rng.uniform(0.05, 1.0, size=n))
    fractions[-1] = 1.0
    # earliest deadlines → high-θ tasks (thetas already ordered high first)
    deadlines = fractions * d_max
    return tasks_from_thetas(thetas, deadlines)


def fig6_instance(
    beta: float,
    scenario: str,
    *,
    n: int = 100,
    seed: SeedLike = None,
) -> ProblemInstance:
    """A complete Fig. 6 instance; scenario is 'uniform' or 'earliest'."""
    cluster = fig6_cluster()
    if scenario == "uniform":
        tasks = uniform_mix_tasks(cluster, n=n, seed=seed)
    elif scenario == "earliest":
        tasks = earliest_high_efficiency_tasks(cluster, n=n, seed=seed)
    else:
        raise ValueError(f"unknown Fig. 6 scenario {scenario!r} (use 'uniform' or 'earliest')")
    return ProblemInstance.with_beta(tasks, cluster, beta)
