"""Pluggable distributions for workload generation.

The paper samples θ and deadlines uniformly; sensitivity to those
choices is part of a serious evaluation.  This module provides a small
registry of named distributions (uniform, log-normal, Pareto heavy-tail,
bimodal) usable for both task efficiencies and deadline fractions, and
a generator variant wired to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..core.machine import Cluster
from ..core.task import TaskSet
from ..utils.errors import ValidationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive, require
from .generator import tasks_from_thetas

__all__ = ["sample_distribution", "available_distributions", "DistributionalConfig", "generate_distributional_tasks"]

#: name → sampler(rng, size, lo, hi) returning values in [lo, hi].
_SAMPLERS: Dict[str, Callable] = {}


def _register(name: str):
    def deco(fn):
        _SAMPLERS[name] = fn
        return fn

    return deco


@_register("uniform")
def _uniform(rng: np.random.Generator, size: int, lo: float, hi: float) -> np.ndarray:
    return rng.uniform(lo, hi, size=size)


@_register("lognormal")
def _lognormal(rng: np.random.Generator, size: int, lo: float, hi: float) -> np.ndarray:
    # Log-normal shaped into [lo, hi]: most mass near lo, a long high tail.
    raw = rng.lognormal(mean=0.0, sigma=0.75, size=size)
    raw = raw / (raw.max() if raw.max() > 0 else 1.0)
    return lo + (hi - lo) * raw


@_register("pareto")
def _pareto(rng: np.random.Generator, size: int, lo: float, hi: float) -> np.ndarray:
    # Heavy tail clipped into range: many small values, few large ones.
    raw = rng.pareto(a=1.5, size=size)
    raw = np.clip(raw / 5.0, 0.0, 1.0)
    return lo + (hi - lo) * raw


@_register("bimodal")
def _bimodal(rng: np.random.Generator, size: int, lo: float, hi: float) -> np.ndarray:
    # Half near the bottom, half near the top (the Fig. 6b flavour).
    which = rng.random(size) < 0.5
    low = rng.uniform(lo, lo + 0.2 * (hi - lo), size=size)
    high = rng.uniform(hi - 0.2 * (hi - lo), hi, size=size)
    return np.where(which, low, high)


def available_distributions() -> list[str]:
    """Names accepted by :func:`sample_distribution`."""
    return sorted(_SAMPLERS)


def sample_distribution(
    name: str, rng: np.random.Generator, size: int, lo: float, hi: float
) -> np.ndarray:
    """Draw ``size`` values in ``[lo, hi]`` from a named distribution."""
    if name not in _SAMPLERS:
        raise ValidationError(f"unknown distribution {name!r}; known: {available_distributions()}")
    require(size >= 1, "size must be >= 1")
    require(0 < lo <= hi, "need 0 < lo <= hi")
    values = _SAMPLERS[name](rng, size, lo, hi)
    return np.clip(values, lo, hi)


@dataclass(frozen=True)
class DistributionalConfig:
    """Task generation with named θ and deadline distributions."""

    n: int = 100
    theta_distribution: str = "uniform"
    theta_range: Tuple[float, float] = (0.1, 1.0)
    deadline_distribution: str = "uniform"
    deadline_floor: float = 0.05
    rho: float = 1.0
    n_segments: int = 5

    def __post_init__(self) -> None:
        require(self.n >= 1, "n must be >= 1")
        check_positive(self.rho, "rho")
        require(0 < self.deadline_floor <= 1.0, "deadline_floor must lie in (0, 1]")
        for name in (self.theta_distribution, self.deadline_distribution):
            if name not in _SAMPLERS:
                raise ValidationError(f"unknown distribution {name!r}")


def generate_distributional_tasks(
    config: DistributionalConfig, cluster: Cluster, seed: SeedLike = None
) -> TaskSet:
    """Like ``generate_tasks`` but with pluggable distributions."""
    from ..core.accuracy import ExponentialAccuracy
    from ..utils import units
    from .generator import PAPER_A_MAX, PAPER_A_MIN

    rng = ensure_rng(seed)
    thetas = sample_distribution(config.theta_distribution, rng, config.n, *config.theta_range)
    f_max = np.array(
        [
            ExponentialAccuracy(th / units.TERA, a_min=PAPER_A_MIN, a_max=PAPER_A_MAX).f_max
            for th in thetas
        ]
    )
    d_max = config.rho * float(f_max.sum()) / cluster.total_speed
    fractions = sample_distribution(
        config.deadline_distribution, rng, config.n, config.deadline_floor, 1.0
    )
    if config.n > 1:
        fractions[int(rng.integers(config.n))] = 1.0  # pin ρ exactly
    else:
        fractions[:] = 1.0
    return tasks_from_thetas(thetas, fractions * d_max, n_segments=config.n_segments)
