"""Request traces: synthetic production-shaped streams and CSV I/O.

The paper's motivation (social-network-scale inference) implies
production request traces we do not have; this module synthesises the
standard shape — a diurnal rate curve with burst noise — and provides a
CSV interchange format so real traces can be dropped in when available.

CSV columns: ``arrival_time,slo_seconds,theta_per_tflop`` (header row
required), matching :class:`~repro.workloads.arrivals.Request` fields.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Union


from ..utils.errors import ValidationError
from ..utils.fileio import atomic_write
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive, require
from .arrivals import Request

__all__ = ["DiurnalTraceConfig", "generate_diurnal_trace", "save_trace", "load_trace"]


@dataclass(frozen=True)
class DiurnalTraceConfig:
    """Shape of a synthetic production trace.

    The arrival rate follows
    ``rate(t) = base_rate · (1 + amplitude·sin(2π(t/period − peak_phase)))``
    (non-homogeneous Poisson, thinned), the classic day/night pattern;
    ``burst_rate_boost`` adds short random bursts on top.
    """

    horizon_seconds: float = 3600.0
    base_rate: float = 2.0
    amplitude: float = 0.6
    period_seconds: float = 3600.0
    peak_phase: float = 0.25
    burst_rate_boost: float = 0.0
    burst_mean_length: float = 30.0
    slo_range: tuple[float, float] = (0.5, 2.0)
    theta_range: tuple[float, float] = (0.1, 1.0)

    def __post_init__(self) -> None:
        check_positive(self.horizon_seconds, "horizon_seconds")
        check_positive(self.base_rate, "base_rate")
        require(0.0 <= self.amplitude < 1.0, "amplitude must lie in [0, 1)")
        check_positive(self.period_seconds, "period_seconds")
        require(self.burst_rate_boost >= 0.0, "burst_rate_boost must be >= 0")
        check_positive(self.burst_mean_length, "burst_mean_length")
        require(0 < self.slo_range[0] <= self.slo_range[1], "slo_range must be positive/ordered")
        require(0 < self.theta_range[0] <= self.theta_range[1], "theta_range must be positive/ordered")


def generate_diurnal_trace(config: DiurnalTraceConfig, seed: SeedLike = None) -> List[Request]:
    """Sample a trace by thinning a homogeneous Poisson process."""
    rng = ensure_rng(seed)
    max_rate = config.base_rate * (1.0 + config.amplitude) + config.burst_rate_boost
    # Pre-draw burst windows.
    bursts: List[tuple[float, float]] = []
    if config.burst_rate_boost > 0:
        t = float(rng.exponential(config.horizon_seconds / 4))
        while t < config.horizon_seconds:
            length = float(rng.exponential(config.burst_mean_length))
            bursts.append((t, t + length))
            t += length + float(rng.exponential(config.horizon_seconds / 4))

    def rate_at(t: float) -> float:
        base = config.base_rate * (
            1.0 + config.amplitude * math.sin(2 * math.pi * (t / config.period_seconds - config.peak_phase))
        )
        boost = config.burst_rate_boost if any(a <= t < b for a, b in bursts) else 0.0
        return base + boost

    out: List[Request] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / max_rate))
        if t >= config.horizon_seconds:
            return out
        if rng.random() <= rate_at(t) / max_rate:  # thinning
            out.append(
                Request(
                    arrival_time=t,
                    slo_seconds=float(rng.uniform(*config.slo_range)),
                    theta_per_tflop=float(rng.uniform(*config.theta_range)),
                )
            )


_HEADER = ["arrival_time", "slo_seconds", "theta_per_tflop"]


def save_trace(requests: Sequence[Request], path: Union[str, Path]) -> None:
    """Write a trace as CSV (sorted by arrival time), crash-safely."""
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(_HEADER)
    for r in sorted(requests, key=lambda r: r.arrival_time):
        writer.writerow([repr(r.arrival_time), repr(r.slo_seconds), repr(r.theta_per_tflop)])
    atomic_write(path, buffer.getvalue())


def load_trace(path: Union[str, Path]) -> List[Request]:
    """Read a CSV trace written by :func:`save_trace` (or hand-made)."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise ValidationError(f"trace CSV must start with header {','.join(_HEADER)}, got {header}")
        out: List[Request] = []
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ValidationError(f"line {lineno}: expected 3 columns, got {len(row)}")
            try:
                arrival, slo, theta = (float(v) for v in row)
            except ValueError as exc:
                raise ValidationError(f"line {lineno}: non-numeric value ({exc})") from None
            if arrival < 0 or slo <= 0 or theta <= 0:
                raise ValidationError(f"line {lineno}: values out of range {row}")
            out.append(Request(arrival_time=arrival, slo_seconds=slo, theta_per_tflop=theta))
    return sorted(out, key=lambda r: r.arrival_time)
