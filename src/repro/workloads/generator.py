"""Synthetic task-set generation matching the paper's Sec. 6 setup.

Tasks are built from exponential accuracy curves with task efficiency
θ_j (the slope of the first fitted segment), ``a_min = 1/1000``,
``a_max = 0.82``, fitted by 5-segment concave piecewise-linear
regression.  ``f_j^max`` follows from θ_j (the work where the curve
saturates at a_max).

Deadlines are drawn uniformly and rescaled so the instance hits a
requested *deadline tolerance* ρ = d_max · Σ_r s_r / Σ_j f_j^max
(DESIGN.md §3 documents this reconstruction of the paper's garbled
formula); the largest draw is pinned to d_max so ρ is met exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.accuracy import ExponentialAccuracy, fit_piecewise
from ..core.instance import ProblemInstance
from ..core.machine import Cluster
from ..core.task import Task, TaskSet
from ..utils import units
from ..utils.errors import ValidationError
from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive, require

__all__ = ["TaskGenConfig", "generate_tasks", "tasks_from_thetas", "generate_instance"]

#: The paper's accuracy extremes: a random guess over ImageNet-1k's 1000
#: classes, and ofa-resnet's top accuracy.
PAPER_A_MIN = 0.001
PAPER_A_MAX = 0.82


@dataclass(frozen=True)
class TaskGenConfig:
    """Parameters of a synthetic task set.

    ``theta_range`` is in accuracy per TFLOP (the paper's θ unit: θ = 0.1
    means the first 10 TFLOP of work buy ≈1 accuracy point... per its
    scale); ``rho`` is the deadline tolerance the set should realise on a
    given cluster.
    """

    n: int = 100
    theta_range: Tuple[float, float] = (0.1, 0.1)
    rho: float = 1.0
    a_min: float = PAPER_A_MIN
    a_max: float = PAPER_A_MAX
    n_segments: int = 5
    deadline_floor: float = 0.05  # deadlines ≥ this fraction of d_max
    coverage: float = 0.99999

    def __post_init__(self) -> None:
        require(self.n >= 1, f"n must be >= 1, got {self.n}")
        lo, hi = self.theta_range
        require(0 < lo <= hi, f"theta_range must be positive and ordered, got {self.theta_range}")
        check_positive(self.rho, "rho")
        require(0 < self.deadline_floor <= 1.0, "deadline_floor must lie in (0, 1]")
        require(self.n_segments >= 1, "n_segments must be >= 1")


def tasks_from_thetas(
    thetas_per_tflop: Sequence[float],
    deadlines: Sequence[float],
    *,
    a_min: float = PAPER_A_MIN,
    a_max: float = PAPER_A_MAX,
    n_segments: int = 5,
    coverage: float = 0.99999,
) -> TaskSet:
    """Build a task set from explicit θ (per TFLOP) and deadline lists."""
    thetas = list(thetas_per_tflop)
    deadlines = list(deadlines)
    if len(thetas) != len(deadlines):
        raise ValidationError("thetas and deadlines must have equal length")
    tasks = []
    for theta, d in zip(thetas, deadlines):
        curve = ExponentialAccuracy(theta / units.TERA, a_min=a_min, a_max=a_max, coverage=coverage)
        tasks.append(Task(deadline=d, accuracy=fit_piecewise(curve, n_segments)))
    return TaskSet(tasks)


def generate_tasks(config: TaskGenConfig, cluster: Cluster, seed: SeedLike = None) -> TaskSet:
    """Sample a task set realising ``config`` on ``cluster``.

    θ_j ~ U(theta_range); deadlines ~ U(floor, 1)·d_max with the largest
    pinned at d_max, where d_max = ρ · Σ_j f_j^max / Σ_r s_r.
    """
    rng = ensure_rng(seed)
    lo, hi = config.theta_range
    thetas = rng.uniform(lo, hi, size=config.n) if hi > lo else np.full(config.n, lo)

    # f_max of each curve (before deadlines are known).
    f_max = np.array(
        [
            ExponentialAccuracy(
                th / units.TERA, a_min=config.a_min, a_max=config.a_max, coverage=config.coverage
            ).f_max
            for th in thetas
        ]
    )
    d_max = config.rho * float(f_max.sum()) / cluster.total_speed
    if config.n == 1:
        fractions = np.array([1.0])
    else:
        fractions = rng.uniform(config.deadline_floor, 1.0, size=config.n)
        fractions[int(rng.integers(config.n))] = 1.0  # pin ρ exactly
    deadlines = fractions * d_max
    return tasks_from_thetas(
        thetas,
        deadlines,
        a_min=config.a_min,
        a_max=config.a_max,
        n_segments=config.n_segments,
        coverage=config.coverage,
    )


def generate_instance(
    config: TaskGenConfig,
    cluster: Cluster,
    beta: float,
    seed: SeedLike = None,
) -> ProblemInstance:
    """Sample tasks and wrap them with a β-calibrated energy budget."""
    tasks = generate_tasks(config, cluster, seed)
    return ProblemInstance.with_beta(tasks, cluster, beta)
