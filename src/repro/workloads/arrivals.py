"""Request arrival processes for the online-serving example.

The paper schedules a static batch of tasks; real MLaaS front-ends see a
*stream* of requests.  The online example replans with DSCT-EA-APPROX on
a rolling window, and this module provides the arrival substrates:

* :class:`PoissonArrivals` — homogeneous Poisson process;
* :class:`MMPPArrivals` — a 2-state Markov-modulated Poisson process
  (bursty traffic, the standard MLaaS load model).

Each arrival is a :class:`Request` carrying a relative latency SLO
(deadline offset) and a task-efficiency θ drawn from a configurable
range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


from ..utils.rng import SeedLike, ensure_rng
from ..utils.validation import check_positive, require

__all__ = ["Request", "PoissonArrivals", "MMPPArrivals", "window_batches"]


@dataclass(frozen=True)
class Request:
    """One inference request in the online stream."""

    arrival_time: float
    slo_seconds: float  # relative deadline (deadline = arrival + slo)
    theta_per_tflop: float

    @property
    def deadline(self) -> float:
        return self.arrival_time + self.slo_seconds


class PoissonArrivals:
    """Homogeneous Poisson arrivals with i.i.d. SLOs and efficiencies."""

    def __init__(
        self,
        rate_per_second: float,
        *,
        slo_range: Tuple[float, float] = (0.5, 2.0),
        theta_range: Tuple[float, float] = (0.1, 1.0),
        seed: SeedLike = None,
    ):
        check_positive(rate_per_second, "rate_per_second")
        require(0 < slo_range[0] <= slo_range[1], "slo_range must be positive and ordered")
        require(0 < theta_range[0] <= theta_range[1], "theta_range must be positive and ordered")
        self.rate = float(rate_per_second)
        self.slo_range = slo_range
        self.theta_range = theta_range
        self._rng = ensure_rng(seed)

    def generate(self, horizon_seconds: float) -> List[Request]:
        """All requests arriving in ``[0, horizon_seconds)``."""
        check_positive(horizon_seconds, "horizon_seconds")
        out: List[Request] = []
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / self.rate))
            if t >= horizon_seconds:
                return out
            out.append(
                Request(
                    arrival_time=t,
                    slo_seconds=float(self._rng.uniform(*self.slo_range)),
                    theta_per_tflop=float(self._rng.uniform(*self.theta_range)),
                )
            )


class MMPPArrivals:
    """2-state Markov-modulated Poisson process (calm / burst phases)."""

    def __init__(
        self,
        calm_rate: float,
        burst_rate: float,
        *,
        mean_phase_seconds: float = 10.0,
        slo_range: Tuple[float, float] = (0.5, 2.0),
        theta_range: Tuple[float, float] = (0.1, 1.0),
        seed: SeedLike = None,
    ):
        check_positive(calm_rate, "calm_rate")
        check_positive(burst_rate, "burst_rate")
        check_positive(mean_phase_seconds, "mean_phase_seconds")
        self.rates = (float(calm_rate), float(burst_rate))
        self.mean_phase = float(mean_phase_seconds)
        self.slo_range = slo_range
        self.theta_range = theta_range
        self._rng = ensure_rng(seed)

    def generate(self, horizon_seconds: float) -> List[Request]:
        """All requests arriving in ``[0, horizon_seconds)``."""
        check_positive(horizon_seconds, "horizon_seconds")
        out: List[Request] = []
        t, phase = 0.0, 0
        phase_end = float(self._rng.exponential(self.mean_phase))
        while t < horizon_seconds:
            t += float(self._rng.exponential(1.0 / self.rates[phase]))
            while t >= phase_end:
                phase = 1 - phase
                phase_end += float(self._rng.exponential(self.mean_phase))
            if t >= horizon_seconds:
                break
            out.append(
                Request(
                    arrival_time=t,
                    slo_seconds=float(self._rng.uniform(*self.slo_range)),
                    theta_per_tflop=float(self._rng.uniform(*self.theta_range)),
                )
            )
        return out


def window_batches(requests: List[Request], window_seconds: float) -> Iterator[tuple[float, List[Request]]]:
    """Group a request stream into planning windows.

    Yields ``(window_start, requests_in_window)`` for each window from 0
    to the last arrival; empty windows are skipped.
    """
    check_positive(window_seconds, "window_seconds")
    if not requests:
        return
    horizon = max(r.arrival_time for r in requests)
    start = 0.0
    while start <= horizon:
        batch = [r for r in requests if start <= r.arrival_time < start + window_seconds]
        if batch:
            yield start, batch
        start += window_seconds
