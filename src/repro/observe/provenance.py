"""Decision provenance: *why* each task got the compression level it did.

A schedule answers "what"; provenance answers "why".  For every task the
solver made a three-way call — which machine(s), how much work, and
therefore which accuracy below its ceiling — and each of those calls was
forced by exactly one binding constraint of the LP (3a)–(3f).  This
module reconstructs that attribution:

* **work-cap-bound** — the task runs at ``f_j^max``; only Eq. (3d)
  stops it (its accuracy equals the ceiling ``a_max``);
* **deadline-bound** — growing the task is priced out by prefix-deadline
  multipliers (Eq. (3c)): there is no runway left before ``d_j``;
* **energy-bound** — growing it is priced out by the budget multiplier
  λ (Eq. (3e)): the joules are worth more elsewhere;
* **unconstrained** — extra work would gain (effectively) nothing; the
  task sits on a plateau of its accuracy curve.

When LP duals are available (:func:`repro.exact.lp.solve_lp_with_duals`)
the attribution uses the actual shadow prices; otherwise a primal
heuristic (deadline slack vs. budget slack) stands in.  The report also
surfaces the **marginal values** operators ask for: accuracy per +1 J of
budget and per +1 s of machine time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..exact.duals import LPDuals

__all__ = [
    "REGIMES",
    "TaskDecision",
    "MarginalValues",
    "ProvenanceReport",
    "explain_schedule",
    "explain_instance",
]

#: The four mutually exclusive constraint regimes.
REGIMES = ("work-cap-bound", "deadline-bound", "energy-bound", "unconstrained")

#: Relative tolerance for "at the cap" / "at the deadline" / "budget spent".
_TIGHT = 1e-6


@dataclass(frozen=True)
class TaskDecision:
    """Provenance record for one task's compression decision."""

    task: int
    machines: Tuple[int, ...]  # machines granting it time, busiest first
    flops: float
    accuracy: float
    accuracy_ceiling: float  # a_max — what full execution would score
    regime: str  # one of REGIMES
    marginal_gain: float  # accuracy per +1 FLOP at the granted work
    deadline_price: float  # accuracy cost of the binding deadlines (per s)
    energy_price: float  # accuracy cost of the budget (per s, λ·P_r)

    @property
    def accuracy_gap(self) -> float:
        """Accuracy left on the table relative to full execution."""
        return self.accuracy_ceiling - self.accuracy

    def __post_init__(self) -> None:
        if self.regime not in REGIMES:
            raise ValueError(f"unknown regime {self.regime!r}; expected one of {REGIMES}")


@dataclass(frozen=True)
class MarginalValues:
    """What one more unit of each resource would buy, in accuracy.

    ``energy`` is total accuracy per **+1 J** of budget; ``machine_time``
    maps machine index → accuracy per **+1 s** granted to every deadline
    on that machine (relaxing the whole prefix chain — "one more second
    of runway on machine r").  Zeros when duals are unavailable.
    """

    energy: float
    machine_time: Tuple[float, ...]

    @classmethod
    def from_duals(cls, duals: LPDuals) -> "MarginalValues":
        return cls(
            energy=float(duals.budget),
            machine_time=tuple(float(v) for v in duals.machine_time_value),
        )

    @classmethod
    def unknown(cls, n_machines: int) -> "MarginalValues":
        return cls(energy=0.0, machine_time=(0.0,) * n_machines)


@dataclass(frozen=True)
class ProvenanceReport:
    """Full decision provenance for one schedule."""

    decisions: Tuple[TaskDecision, ...]
    marginal: MarginalValues
    total_accuracy: float
    total_energy: float
    budget: float
    from_duals: bool = True
    duals: Optional[LPDuals] = field(default=None, repr=False, compare=False)

    def counts(self) -> dict:
        """Number of tasks in each regime (all four keys always present)."""
        out = {regime: 0 for regime in REGIMES}
        for decision in self.decisions:
            out[decision.regime] += 1
        return out

    def by_regime(self, regime: str) -> List[TaskDecision]:
        if regime not in REGIMES:
            raise ValueError(f"unknown regime {regime!r}; expected one of {REGIMES}")
        return [d for d in self.decisions if d.regime == regime]

    def to_dict(self) -> dict:
        """JSON-ready rendering (what ``repro explain --json`` emits)."""
        return {
            "total_accuracy": self.total_accuracy,
            "total_energy": self.total_energy,
            "budget": self.budget if math.isfinite(self.budget) else None,
            "from_duals": self.from_duals,
            "marginal_value": {
                "accuracy_per_joule": self.marginal.energy,
                "accuracy_per_machine_second": list(self.marginal.machine_time),
            },
            "regimes": self.counts(),
            "tasks": [
                {
                    "task": d.task,
                    "machines": list(d.machines),
                    "flops": d.flops,
                    "accuracy": d.accuracy,
                    "accuracy_ceiling": d.accuracy_ceiling,
                    "accuracy_gap": d.accuracy_gap,
                    "regime": d.regime,
                    "marginal_gain": d.marginal_gain,
                    "deadline_price": d.deadline_price,
                    "energy_price": d.energy_price,
                }
                for d in self.decisions
            ],
        }

    def summary(self) -> str:
        """Human-readable multi-line report (what ``repro explain`` prints)."""
        counts = self.counts()
        lines = [
            f"total accuracy {self.total_accuracy:.4f}; "
            f"energy {self.total_energy:.4g} J"
            + (f" of {self.budget:.4g} J budget" if math.isfinite(self.budget) else " (no budget)"),
            "regimes: " + ", ".join(f"{counts[r]} {r}" for r in REGIMES),
        ]
        if self.from_duals:
            lines.append(f"marginal value of +1 J: {self.marginal.energy:.4g} accuracy")
            for r, v in enumerate(self.marginal.machine_time):
                lines.append(f"marginal value of +1 s on machine {r}: {v:.4g} accuracy")
        else:
            lines.append("(heuristic attribution — no LP duals available)")
        for d in self.decisions:
            used = ",".join(str(r) for r in d.machines) or "-"
            lines.append(
                f"  task {d.task}: acc {d.accuracy:.4f}/{d.accuracy_ceiling:.4f} "
                f"(gap {d.accuracy_gap:.4f}) on machine(s) {used} — {d.regime}"
            )
        return "\n".join(lines)


def _used_machines(times_row: np.ndarray) -> Tuple[int, ...]:
    """Machines granting this task time, ordered busiest-first."""
    used = np.nonzero(times_row > 0.0)[0]
    return tuple(int(r) for r in used[np.argsort(-times_row[used], kind="stable")])


def _classify_with_duals(
    j: int,
    schedule: Schedule,
    duals: LPDuals,
    gain: float,
    candidate_machines: Tuple[int, ...],
) -> Tuple[str, float, float]:
    """Regime plus (deadline price, energy price), both in accuracy/s.

    LP stationarity: for any machine ``r``, one more second of ``t_jr``
    gains ``s_r·a'_j(f_j)`` and costs the prefix-deadline multipliers
    ``Σ_{i≥j} μ_ri`` plus the budget price ``λ·P_r``.  A funded task
    sits where gain ≤ cost on every machine; the component carrying the
    cost on the *cheapest* machine (the one the solver would grow first)
    names the binding constraint.
    """
    inst = schedule.instance
    speeds = inst.cluster.speeds
    powers = inst.cluster.powers
    machines = candidate_machines or tuple(range(inst.n_machines))
    best: Optional[Tuple[float, float, float]] = None  # (total, deadline, energy)
    for r in machines:
        d_price = duals.deadline_price(j, r)
        e_price = duals.budget * powers[r]
        total = d_price + e_price
        # Normalise by speed so machines are compared per unit of work.
        keyed = total / max(speeds[r], 1e-300)
        if best is None or keyed < best[0]:
            best = (keyed, d_price, e_price)
    assert best is not None
    _, d_price, e_price = best
    if d_price <= 0.0 and e_price <= 0.0:
        # No positive price anywhere yet positive gain: degenerate duals
        # (e.g. a tie) — the task is not paying for anything measurable.
        return "unconstrained", d_price, e_price
    regime = "deadline-bound" if d_price >= e_price else "energy-bound"
    return regime, d_price, e_price


def _classify_heuristic(
    j: int, schedule: Schedule, candidate_machines: Tuple[int, ...]
) -> Tuple[str, float, float]:
    """Primal stand-in when no duals exist: look at which slack is gone."""
    inst = schedule.instance
    deadlines = inst.tasks.deadlines
    completion = schedule.completion_times
    budget_tight = (
        math.isfinite(inst.budget)
        and schedule.total_energy >= inst.budget * (1.0 - _TIGHT) - 1e-12
    )
    machines = candidate_machines or tuple(range(inst.n_machines))
    deadline_tight = any(
        completion[j, r] >= deadlines[j] * (1.0 - _TIGHT) - 1e-12 for r in machines
    )
    if deadline_tight and not budget_tight:
        return "deadline-bound", 1.0, 0.0
    if budget_tight and not deadline_tight:
        return "energy-bound", 0.0, 1.0
    if deadline_tight and budget_tight:
        # Both bind; charge the deadline (the machine-local constraint).
        return "deadline-bound", 1.0, 1.0
    return "unconstrained", 0.0, 0.0


def explain_schedule(
    schedule: Schedule,
    duals: Optional[LPDuals] = None,
    *,
    gain_floor: float = 1e-9,
) -> ProvenanceReport:
    """Attribute every task's compression level to its binding constraint.

    ``duals`` enables exact shadow-price attribution; without them a
    primal slack heuristic is used (``from_duals=False`` on the report).
    ``gain_floor`` is *relative*: extra work is considered worthless
    (→ *unconstrained*) when the marginal gain has fallen below
    ``gain_floor`` times the task's initial slope — absolute accuracy
    per FLOP is meaningless across FLOP scales.
    """
    inst = schedule.instance
    tasks = inst.tasks
    flops = schedule.task_flops
    accuracies = schedule.task_accuracies
    times = schedule.times

    decisions: List[TaskDecision] = []
    for j, task in enumerate(tasks):
        acc_fn = task.accuracy
        f = float(flops[j])
        gain = acc_fn.marginal_gain(f)
        initial_slope = acc_fn.marginal_gain(0.0)
        machines = _used_machines(times[j])
        d_price = e_price = 0.0
        if f >= acc_fn.f_max * (1.0 - _TIGHT):
            regime = "work-cap-bound"
        elif gain <= gain_floor * max(initial_slope, 1e-300):
            regime = "unconstrained"
        elif duals is not None:
            regime, d_price, e_price = _classify_with_duals(j, schedule, duals, gain, machines)
        else:
            regime, d_price, e_price = _classify_heuristic(j, schedule, machines)
        decisions.append(
            TaskDecision(
                task=j,
                machines=machines,
                flops=f,
                accuracy=float(accuracies[j]),
                accuracy_ceiling=float(acc_fn.a_max),
                regime=regime,
                marginal_gain=float(gain),
                deadline_price=float(d_price),
                energy_price=float(e_price),
            )
        )

    marginal = (
        MarginalValues.from_duals(duals)
        if duals is not None
        else MarginalValues.unknown(inst.n_machines)
    )
    return ProvenanceReport(
        decisions=tuple(decisions),
        marginal=marginal,
        total_accuracy=float(schedule.total_accuracy),
        total_energy=float(schedule.total_energy),
        budget=float(inst.budget),
        from_duals=duals is not None,
        duals=duals,
    )


def explain_instance(instance: ProblemInstance) -> ProvenanceReport:
    """Solve the LP relaxation with duals and explain the result."""
    from ..exact.lp import solve_lp_with_duals

    schedule, _objective, duals = solve_lp_with_duals(instance)
    return explain_schedule(schedule, duals)
