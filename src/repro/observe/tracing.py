"""End-to-end request tracing over the telemetry span substrate.

The telemetry registry already records nested
:class:`~repro.telemetry.SpanRecord` phases; this module adds the
*identity* layer that turns those spans into request traces:

* :func:`start_trace` opens a trace scope (a context-local trace id,
  :func:`repro.telemetry.trace_scope`) plus a root span — every span
  opened inside, including across the resilience layer's deadline worker
  threads, carries the same trace id;
* :func:`trace_spans` / :func:`trace_ids` extract one trace (or the
  trace inventory) from a live registry or an exported snapshot;
* :func:`to_trace_events` renders a trace in the Chrome/Perfetto
  ``trace_event`` JSON format — load the file at ``chrome://tracing`` or
  https://ui.perfetto.dev to see the request flame graph.

Trace ids propagate across process boundaries through the
``X-Repro-Trace-Id`` HTTP header (see :mod:`repro.server`) and into the
durability journal (``trace_id`` on journaled records), so a served
request, its solver phases and its write-ahead-log entries all correlate
post hoc.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..telemetry import MetricsRegistry, current_trace_id, ensure_trace, new_trace_id, trace_scope
from ..telemetry.context import get_collector
from ..utils.fileio import atomic_write

__all__ = [
    "new_trace_id",
    "current_trace_id",
    "trace_scope",
    "ensure_trace",
    "start_trace",
    "valid_trace_id",
    "trace_ids",
    "trace_spans",
    "to_trace_events",
    "write_trace_events",
    "iter_trace_trees",
]

Snapshot = Dict[str, list]

#: Accepted wire format for externally supplied trace ids (header values).
_TRACE_ID_RE = re.compile(r"^[0-9a-fA-F-]{4,64}$")


def valid_trace_id(candidate: Optional[str]) -> Optional[str]:
    """``candidate`` if it is a well-formed trace id, else ``None``.

    Used to sanitise inbound ``X-Repro-Trace-Id`` headers — a malformed
    id is ignored (a fresh one is generated) rather than echoed back.
    """
    if candidate and _TRACE_ID_RE.match(candidate):
        return candidate
    return None


class start_trace:  # noqa: N801 — context-manager used like a function
    """Open a trace: a fresh (or given) trace id plus a root span.

    ::

        with start_trace("serve.request") as trace_id:
            scheduler.solve(instance)

    Every span opened in the block — in this thread and in any worker
    that runs under a copied context — is stamped with ``trace_id``.
    Reentrant: when ``trace_id`` is omitted and a trace is already
    active, the active id is reused (the new span nests inside it).
    """

    def __init__(self, name: str = "trace", *, trace_id: Optional[str] = None, **labels):
        self.name = name
        self.trace_id = trace_id
        self.labels = labels
        self._scope = None
        self._span = None

    def __enter__(self) -> str:
        if self.trace_id is None:
            self._scope = ensure_trace()
        else:
            self._scope = trace_scope(self.trace_id)
        tid = self._scope.__enter__()
        self._span = get_collector().span(self.name, **self.labels)
        self._span.__enter__()
        return tid

    def __exit__(self, *exc) -> None:
        try:
            self._span.__exit__(*exc)
        finally:
            self._scope.__exit__(*exc)


# -- extraction --------------------------------------------------------------------


def _span_dicts(source: Union[MetricsRegistry, Snapshot]) -> List[dict]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()["spans"]
    return list(source.get("spans", []))


def trace_ids(source: Union[MetricsRegistry, Snapshot]) -> List[str]:
    """Distinct trace ids present in ``source``, in first-seen order."""
    seen: List[str] = []
    for span in _span_dicts(source):
        tid = span.get("trace_id")
        if tid and tid not in seen:
            seen.append(tid)
    return seen


def trace_spans(
    source: Union[MetricsRegistry, Snapshot], trace_id: Optional[str] = None
) -> List[dict]:
    """Spans of one trace (or every traced span), ordered by start time.

    ``trace_id=None`` returns all spans that belong to *some* trace.
    """
    spans = [
        s
        for s in _span_dicts(source)
        if (s.get("trace_id") == trace_id if trace_id is not None else s.get("trace_id"))
    ]
    spans.sort(key=lambda s: (s["start"], s["span_id"]))
    return spans


# -- Chrome/Perfetto trace_event export --------------------------------------------


def to_trace_events(
    spans: List[dict], *, process_name: str = "repro", trace_id: Optional[str] = None
) -> dict:
    """Render spans as a Chrome ``trace_event`` JSON document.

    Each closed span becomes a complete (``"ph": "X"``) event whose
    ``ts``/``dur`` are microseconds on the registry's monotonic clock;
    open spans are exported with zero duration and an ``unfinished``
    marker.  Parent/child nesting is carried both positionally (Perfetto
    nests complete events by containment per track) and explicitly in
    ``args.parent_id``.  The result is ``json.dump``-able as-is.
    """
    events: List[dict] = []
    for span in spans:
        duration = span.get("duration")
        args = {
            "span_id": span["span_id"],
            "parent_id": span.get("parent_id"),
            "depth": span.get("depth", 0),
            **{str(k): str(v) for k, v in (span.get("labels") or {}).items()},
        }
        tid = span.get("trace_id")
        if tid:
            args["trace_id"] = tid
        if duration is None:
            args["unfinished"] = True
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round(span["start"] * 1e6, 3),
                "dur": round((duration or 0.0) * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    metadata = {"source": "repro.observe.tracing"}
    if trace_id is not None:
        metadata["trace_id"] = trace_id
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": metadata,
    }


def write_trace_events(
    spans: List[dict],
    path: Union[str, Path],
    *,
    trace_id: Optional[str] = None,
) -> Path:
    """Write :func:`to_trace_events` output to ``path`` atomically."""
    document = to_trace_events(spans, trace_id=trace_id)
    return atomic_write(path, json.dumps(document, indent=1) + "\n")


def iter_trace_trees(spans: List[dict]) -> Iterator[tuple]:
    """Yield ``(span, children)`` pairs for the trace's root spans.

    ``children`` maps recursively — a simple helper for printers that
    want the tree without rebuilding parent links themselves.
    """
    by_parent: Dict[Optional[int], List[dict]] = {}
    ids = {s["span_id"] for s in spans}
    for span in spans:
        parent = span.get("parent_id")
        # A span whose parent is outside the filtered set roots its subtree.
        key = parent if parent in ids else None
        by_parent.setdefault(key, []).append(span)

    def subtree(span: dict):
        children = by_parent.get(span["span_id"], [])
        return span, [subtree(c) for c in children]

    for root in by_parent.get(None, []):
        yield subtree(root)
