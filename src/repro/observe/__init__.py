"""Observability: request tracing, decision provenance and SLO monitoring.

Builds on :mod:`repro.telemetry` (the raw metric/span store) to answer
the three operational questions the raw store cannot:

* *what happened to this request?* — :mod:`repro.observe.tracing`
  threads a trace id from the HTTP header through admission, the
  fallback chain, the solver spans and the durability journal, and
  exports Chrome/Perfetto ``trace_event`` JSON plus a self-contained
  HTML timeline (:mod:`repro.observe.report`);
* *why did this task get compressed?* — :mod:`repro.observe.provenance`
  attributes every task's accuracy to its binding constraint
  (deadline / energy / work cap / none) using LP shadow prices, and
  prices +1 J and +1 s of slack;
* *are we still healthy?* — :mod:`repro.observe.slo` checks p99 solve
  latency, accuracy floor and deadline-miss-rate targets, and raises
  fast/slow burn-rate alerts over the energy budget.
"""

from .provenance import (
    REGIMES,
    MarginalValues,
    ProvenanceReport,
    TaskDecision,
    explain_instance,
    explain_schedule,
)
from .report import html_timeline, write_html_timeline
from .slo import (
    BurnAlert,
    BurnRateMonitor,
    SLOReport,
    SLOSpec,
    SLOStatus,
    evaluate,
    histogram_quantile,
)
from .tracing import (
    current_trace_id,
    ensure_trace,
    iter_trace_trees,
    new_trace_id,
    start_trace,
    to_trace_events,
    trace_ids,
    trace_scope,
    trace_spans,
    valid_trace_id,
    write_trace_events,
)

__all__ = [
    # tracing
    "new_trace_id",
    "current_trace_id",
    "trace_scope",
    "ensure_trace",
    "start_trace",
    "valid_trace_id",
    "trace_ids",
    "trace_spans",
    "to_trace_events",
    "write_trace_events",
    "iter_trace_trees",
    # provenance
    "REGIMES",
    "TaskDecision",
    "MarginalValues",
    "ProvenanceReport",
    "explain_schedule",
    "explain_instance",
    # SLOs
    "SLOSpec",
    "SLOStatus",
    "SLOReport",
    "evaluate",
    "histogram_quantile",
    "BurnAlert",
    "BurnRateMonitor",
    # reports
    "html_timeline",
    "write_html_timeline",
]
