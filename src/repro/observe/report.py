"""Self-contained HTML timeline reports for traces.

:func:`html_timeline` renders a list of span dicts (the registry
snapshot format, see :func:`repro.observe.tracing.trace_spans`) into a
single HTML document with zero external assets — inline CSS, no
JavaScript dependencies — so the file can be attached to a ticket or CI
artifact and opened anywhere.  Each span is a horizontal bar positioned
on the trace's time axis, indented by nesting depth, with its duration
and labels in the hover title.

For interactive exploration prefer the Perfetto export
(:func:`repro.observe.tracing.write_trace_events`); this report is the
"no tooling required" fallback.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Optional, Union

from ..utils.fileio import atomic_write

__all__ = ["html_timeline", "write_html_timeline"]

#: Bar colours cycled by span name (hashed), chosen for contrast on white.
_PALETTE = (
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
)

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.2em; } .meta { color: #666; font-size: 0.85em; margin-bottom: 1em; }
.lane { position: relative; height: 22px; margin: 2px 0; }
.lane .name { position: absolute; left: 0; width: 16em; overflow: hidden;
  white-space: nowrap; text-overflow: ellipsis; font-size: 0.8em; line-height: 22px; }
.lane .track { position: absolute; left: 17em; right: 0; top: 0; bottom: 0;
  background: #f4f4f4; border-radius: 3px; }
.bar { position: absolute; top: 3px; height: 16px; border-radius: 3px; min-width: 2px; }
.bar.open { opacity: 0.45; border: 1px dashed #333; }
.axis { position: relative; height: 18px; margin: 4px 0 8px 0; }
.axis .track { position: absolute; left: 17em; right: 0; color: #888; font-size: 0.75em; }
table { border-collapse: collapse; margin-top: 1.5em; font-size: 0.85em; }
td, th { border: 1px solid #ddd; padding: 2px 8px; text-align: left; }
""".strip()


def _colour(name: str) -> str:
    return _PALETTE[sum(ord(c) for c in name) % len(_PALETTE)]


def html_timeline(
    spans: List[dict],
    *,
    title: str = "repro trace",
    trace_id: Optional[str] = None,
) -> str:
    """Render spans as a self-contained HTML timeline document."""
    spans = sorted(spans, key=lambda s: (s["start"], s["span_id"]))
    if spans:
        t0 = min(s["start"] for s in spans)
        t1 = max(s["start"] + (s.get("duration") or 0.0) for s in spans)
    else:
        t0, t1 = 0.0, 0.0
    extent = max(t1 - t0, 1e-9)

    rows: List[str] = []
    for span in spans:
        duration = span.get("duration")
        left = 100.0 * (span["start"] - t0) / extent
        width = 100.0 * ((duration or 0.0)) / extent
        depth = int(span.get("depth", 0))
        labels = span.get("labels") or {}
        label_text = " ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        dur_text = "open" if duration is None else f"{duration * 1e3:.3f} ms"
        tooltip = html.escape(
            f"{span['name']} — {dur_text}"
            + (f" [{label_text}]" if label_text else "")
            + f" (span {span['span_id']}, parent {span.get('parent_id')})"
        )
        name = html.escape((" " * 2 * depth) + span["name"])
        classes = "bar open" if duration is None else "bar"
        rows.append(
            f'<div class="lane"><span class="name" title="{tooltip}">{name}</span>'
            f'<span class="track"><span class="{classes}" title="{tooltip}" '
            f'style="left:{left:.4f}%;width:{max(width, 0.15):.4f}%;'
            f'background:{_colour(span["name"])}"></span></span></div>'
        )

    by_name: dict = {}
    for span in spans:
        if span.get("duration") is not None:
            entry = by_name.setdefault(span["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += span["duration"]
    table = ["<table><tr><th>span</th><th>count</th><th>total</th><th>mean</th></tr>"]
    for name, (count, total) in sorted(by_name.items(), key=lambda kv: -kv[1][1]):
        table.append(
            f"<tr><td>{html.escape(name)}</td><td>{count}</td>"
            f"<td>{total * 1e3:.3f} ms</td><td>{total / count * 1e3:.3f} ms</td></tr>"
        )
    table.append("</table>")

    meta_bits = [f"{len(spans)} span(s)", f"extent {extent * 1e3:.3f} ms"]
    if trace_id:
        meta_bits.insert(0, f"trace <code>{html.escape(trace_id)}</code>")
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<div class='meta'>{' · '.join(meta_bits)}</div>"
        + "".join(rows)
        + "".join(table)
        + "</body></html>\n"
    )


def write_html_timeline(
    spans: List[dict],
    path: Union[str, Path],
    *,
    title: str = "repro trace",
    trace_id: Optional[str] = None,
) -> Path:
    """Write :func:`html_timeline` output to ``path`` atomically."""
    return atomic_write(path, html_timeline(spans, title=title, trace_id=trace_id))
